//! Checkpoint-aware drivers for the long-running workload experiments.
//!
//! The `repro` binary's `--checkpoint <path>`, `--checkpoint-every N`
//! and `--resume <path>` flags land here: the two chip-scale
//! experiments (`noc-campaign`, `droop-mitigation`) run through the
//! supervised, resumable workload entry points instead of the plain
//! ones. A run that trips a cooperative interrupt — cancellation, a
//! deadline, a budget, or a harness `CancelAt`/`DeadlineTrip` fault —
//! returns an *interrupted* report naming the checkpoint to resume
//! from; rerunning with `--resume` continues it and renders a report
//! bit-identical to one that was never interrupted.
//!
//! `droop-mitigation` is a sweep of several mitigated runs. Its
//! checkpoint is the in-flight run's [`MitigatedCheckpoint`] plus a
//! `<path>.meta` sidecar recording which run of the sweep it was; on
//! resume the sweep re-runs the completed arms (each re-arms the seed,
//! so they reproduce bit-identically), restores the interrupted arm
//! from the snapshot, and finishes the rest normally.

use std::fs;
use std::path::{Path, PathBuf};

use psnt_analysis::report::{fmt_v, Table};
use psnt_cells::units::{Time, Voltage};
use psnt_control::{PiBoost, SupplyBoost, ThresholdStretch, ThresholdThrottle};
use psnt_core::system::SensorSystem;
use psnt_ctx::RunCtx;
use psnt_scan::campaign::{SiteOutcome, StreamRecord};
use psnt_workload::checkpoint::CheckpointPolicy;
use psnt_workload::{
    MitigatedCheckpoint, MitigatedNocResult, NocWorkload, NocWorkloadConfig, WorkloadCheckpoint,
    WorkloadError,
};

/// The `repro` binary's checkpoint flags, parsed.
#[derive(Debug, Clone, Default)]
pub struct CheckpointOptions {
    /// `--checkpoint <path>`: where snapshots are written (atomically,
    /// on interrupt and at every cadence boundary).
    pub checkpoint: Option<PathBuf>,
    /// `--checkpoint-every <N>`: snapshot cadence in cycles; `None`
    /// falls back to the supervisor budget's cadence, if any.
    pub every: Option<u64>,
    /// `--resume <path>`: continue from a previously written
    /// checkpoint.
    pub resume: Option<PathBuf>,
}

impl CheckpointOptions {
    /// No checkpointing and no resume — the plain run.
    pub fn none() -> CheckpointOptions {
        CheckpointOptions::default()
    }

    /// Whether any checkpoint flag was given.
    pub fn is_active(&self) -> bool {
        self.checkpoint.is_some() || self.every.is_some() || self.resume.is_some()
    }

    fn policy(&self) -> CheckpointPolicy {
        CheckpointPolicy {
            path: self.checkpoint.clone(),
            every: self.every,
        }
    }
}

/// The outcome of a checkpoint-aware experiment run.
#[derive(Debug, Clone)]
pub struct CheckpointedRun {
    /// The rendered report: the experiment's full table when the run
    /// completed, or an interrupted notice naming the checkpoint.
    pub report: String,
    /// `true` when the run tripped a cooperative interrupt and stopped
    /// early; the report then describes how to resume.
    pub interrupted: bool,
}

impl CheckpointedRun {
    fn completed(report: String) -> CheckpointedRun {
        CheckpointedRun {
            report,
            interrupted: false,
        }
    }
}

/// The `.meta` sidecar of a `droop-mitigation` checkpoint: records
/// which run of the sweep the snapshot belongs to.
fn meta_path(ckpt: &Path) -> PathBuf {
    let mut s = ckpt.as_os_str().to_owned();
    s.push(".meta");
    PathBuf::from(s)
}

fn meta_err(path: &Path, reason: impl std::fmt::Display) -> WorkloadError {
    WorkloadError::Checkpoint {
        path: path.display().to_string(),
        reason: reason.to_string(),
    }
}

/// XP-NOC under a checkpoint policy. See
/// [`figures::noc_campaign`](crate::figures::noc_campaign) for the
/// experiment itself.
///
/// # Errors
///
/// [`WorkloadError`] on configuration or I/O failure; a cooperative
/// interrupt is **not** an error — it returns an interrupted
/// [`CheckpointedRun`].
pub fn noc_campaign_checkpointed(
    ctx: &mut RunCtx<'_>,
    opts: &CheckpointOptions,
) -> Result<CheckpointedRun, WorkloadError> {
    let resume = opts
        .resume
        .as_deref()
        .map(WorkloadCheckpoint::load)
        .transpose()?;

    let workload = NocWorkload::new(NocWorkloadConfig::chip_8x8())?;
    let policy = opts.policy();
    let mut sites = 0usize;
    let mut degraded = 0usize;
    let mut deepest_level: Option<usize> = None;
    let out = workload.run_streamed_checkpointed(
        ctx,
        psnt_engine::RetryPolicy::none(),
        &policy,
        resume.as_ref(),
        |record| {
            if let StreamRecord::Site {
                series, outcome, ..
            } = &record
            {
                sites += 1;
                match outcome {
                    SiteOutcome::Degraded { .. } => degraded += 1,
                    SiteOutcome::Measured => {
                        let lvl = series.worst_level();
                        deepest_level = Some(deepest_level.map_or(lvl, |d: usize| d.min(lvl)));
                    }
                }
            }
            Ok(())
        },
    );
    let out = match out {
        Ok(out) => out,
        Err(WorkloadError::Interrupted(reason)) => {
            let mut s = String::from("== XP-NOC — INTERRUPTED ==\n");
            s.push_str(&format!("{reason}\n"));
            match opts.checkpoint.as_deref() {
                Some(path) if path.exists() => {
                    let cycle = WorkloadCheckpoint::load(path).map(|c| c.cycle()).ok();
                    s.push_str(&format!(
                        "checkpoint: {} (cycle {} of {})\n",
                        path.display(),
                        cycle.map_or_else(|| "?".into(), |c| c.to_string()),
                        workload.config().cycles,
                    ));
                    s.push_str(&format!(
                        "resume with: repro --noc-campaign --resume {}\n",
                        path.display()
                    ));
                }
                _ => s.push_str("no checkpoint on disk — rerun from the start\n"),
            }
            return Ok(CheckpointedRun {
                report: s,
                interrupted: true,
            });
        }
        Err(e) => return Err(e),
    };

    let profile = &out.profile;
    let mut t = Table::new(
        "XP-NOC — cycle-wise noise profile (8×8 mesh, 256 sites, 40×40 grid, uniform 0.25)",
        &[
            "window",
            "cycles",
            "events",
            "I mean",
            "V mean",
            "V min",
            "droop",
            "worst node",
        ],
    );
    for w in &profile.windows {
        t.row([
            w.window.to_string(),
            format!(
                "{}-{}",
                w.start_cycle,
                w.start_cycle + workload.config().measure_every - 1
            ),
            w.events.to_string(),
            format!("{:.2} A", w.mean_current),
            fmt_v(w.mean_v),
            fmt_v(w.min_v),
            format!("{:.1} mV", (profile.v_nom - w.min_v) * 1e3),
            format!(
                "r{}c{}",
                w.worst_node / workload.campaign().floorplan().grid().cols(),
                w.worst_node % workload.campaign().floorplan().grid().cols()
            ),
        ]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "flits injected: {} | worst droop: {:.1} mV | sites streamed: {sites} \
         ({degraded} degraded) | deepest site level: {} | chain: {} FFs\n",
        profile.flits,
        profile.worst_droop() * 1e3,
        deepest_level.map_or_else(|| "-".into(), |l| l.to_string()),
        workload.campaign().chain().len(),
    ));
    s.push_str(&format!(
        "summary: {:?} (streamed path; bit-identical to the in-memory campaign at any job count)\n",
        out.summary
    ));
    Ok(CheckpointedRun::completed(s))
}

/// The `droop-mitigation` sweep order: `(policy name, code latency)`
/// per run index. Index 0 is the open-loop base, 1–4 the four policy
/// arms at latency 1, 5–13 the supply-boost latency sweep (0–8).
const DROOP_RUNS: usize = 14;

fn droop_run_shape(k: usize) -> (&'static str, usize) {
    match k {
        0 => ("open-loop", 0),
        1 => ("threshold-stretch", 1),
        2 => ("threshold-throttle", 1),
        3 => ("supply-boost", 1),
        4 => ("pi-boost", 1),
        k => ("supply-boost", k - 5),
    }
}

/// XP-DROOP under a checkpoint policy. See
/// [`figures::droop_mitigation`](crate::figures::droop_mitigation) for
/// the experiment itself.
///
/// # Errors
///
/// [`WorkloadError`] on configuration or I/O failure (including a
/// missing or mismatched `.meta` sidecar on resume); a cooperative
/// interrupt returns an interrupted [`CheckpointedRun`] instead.
pub fn droop_mitigation_checkpointed(
    ctx: &mut RunCtx<'_>,
    opts: &CheckpointOptions,
) -> Result<CheckpointedRun, WorkloadError> {
    let resume: Option<(usize, MitigatedCheckpoint)> = match opts.resume.as_deref() {
        Some(path) => {
            let ckpt = MitigatedCheckpoint::load(path)?;
            let meta = meta_path(path);
            let text = fs::read_to_string(&meta)
                .map_err(|e| meta_err(&meta, format!("cannot read sweep sidecar: {e}")))?;
            let k = text
                .strip_prefix("droop-mitigation ")
                .and_then(|rest| rest.trim().parse::<usize>().ok())
                .filter(|&k| k < DROOP_RUNS)
                .ok_or_else(|| meta_err(&meta, "not a droop-mitigation sweep sidecar"))?;
            let (policy, _) = droop_run_shape(k);
            if ckpt.policy != policy {
                return Err(meta_err(
                    &meta,
                    format!(
                        "sidecar names run {k} ({policy}) but the checkpoint holds {:?}",
                        ckpt.policy
                    ),
                ));
            }
            Some((k, ckpt))
        }
        None => None,
    };

    let cfg = crate::figures::droop_chip();
    let tiles = cfg.mesh_rows * cfg.mesh_cols;
    let workload = NocWorkload::new(cfg.clone())?;
    // Self-calibrating thresholds: engage when the droop costs at
    // least one thermometer level off the healthy code.
    let sensor = SensorSystem::new(cfg.sensor.clone())?;
    let healthy = sensor
        .measure_value(cfg.v_pad, Voltage::from_v(0.0), Time::ZERO)?
        .hs_word
        .level
        .max(1);
    let (engage, release) = (healthy - 1, healthy);
    let hold = 16;
    let seed = 2009;
    let ckpt_policy = opts.policy();

    let mut results: Vec<MitigatedNocResult> = Vec::with_capacity(DROOP_RUNS);
    for k in 0..DROOP_RUNS {
        // Every run re-arms the context at the same seed, so all
        // policies see bit-identical traffic — which is also what
        // makes re-running the pre-interrupt arms on resume exact.
        ctx.set_seed(seed);
        if let Some(path) = opts.checkpoint.as_deref() {
            // A stale sidecar must not pair with this run's cadence
            // snapshots; it is rewritten only when an interrupt trips.
            let _ = fs::remove_file(meta_path(path));
        }
        let this_resume = match &resume {
            Some((idx, ckpt)) if *idx == k => Some(ckpt),
            _ => None,
        };
        let (_, latency) = droop_run_shape(k);
        let out = match k {
            0 => workload.run_mitigated_checkpointed(ctx, None, 0, &ckpt_policy, this_resume),
            1 => {
                let mut m = ThresholdStretch::new(tiles, engage, release, 0.25)?.with_hold(hold);
                workload.run_mitigated_checkpointed(ctx, Some(&mut m), 1, &ckpt_policy, this_resume)
            }
            2 => {
                let mut m = ThresholdThrottle::new(tiles, engage, release)?.with_hold(hold);
                workload.run_mitigated_checkpointed(ctx, Some(&mut m), 1, &ckpt_policy, this_resume)
            }
            4 => {
                let mut m = PiBoost::new(tiles, release as f64, 0.02, 0.01)?;
                workload.run_mitigated_checkpointed(ctx, Some(&mut m), 1, &ckpt_policy, this_resume)
            }
            _ => {
                let mut m = SupplyBoost::new(tiles, engage, release, Voltage::from_v(0.06))?
                    .with_hold(hold);
                workload.run_mitigated_checkpointed(
                    ctx,
                    Some(&mut m),
                    latency,
                    &ckpt_policy,
                    this_resume,
                )
            }
        };
        match out {
            Ok(r) => results.push(r),
            Err(WorkloadError::Interrupted(reason)) => {
                let (policy, latency) = droop_run_shape(k);
                let mut s = String::from("== XP-DROOP — INTERRUPTED ==\n");
                s.push_str(&format!("{reason}\n"));
                s.push_str(&format!(
                    "run {}/{DROOP_RUNS}: policy {policy}, latency {latency} cy\n",
                    k + 1
                ));
                match opts.checkpoint.as_deref() {
                    Some(path) if path.exists() => {
                        fs::write(meta_path(path), format!("droop-mitigation {k}\n"))
                            .map_err(|e| meta_err(&meta_path(path), e))?;
                        let cycle = MitigatedCheckpoint::load(path).map(|c| c.cycle()).ok();
                        s.push_str(&format!(
                            "checkpoint: {} (cycle {} of {}) + sidecar {}\n",
                            path.display(),
                            cycle.map_or_else(|| "?".into(), |c| c.to_string()),
                            cfg.cycles,
                            meta_path(path).display(),
                        ));
                        s.push_str(&format!(
                            "resume with: repro --droop-mitigation --resume {}\n",
                            path.display()
                        ));
                    }
                    _ => s.push_str("no checkpoint on disk — rerun from the start\n"),
                }
                return Ok(CheckpointedRun {
                    report: s,
                    interrupted: true,
                });
            }
            Err(e) => return Err(e),
        }
    }

    Ok(CheckpointedRun::completed(render_droop_report(
        &results, healthy, engage, release,
    )))
}

/// Renders the XP-DROOP tables from the sweep's 14 results, in the
/// same shape the experiment has always printed.
fn render_droop_report(
    results: &[MitigatedNocResult],
    healthy: usize,
    engage: usize,
    release: usize,
) -> String {
    let base = &results[0];
    let duration_floor = base.worst_droop * 0.5;
    let mut t = Table::new(
        "XP-DROOP — droop mitigation under bursty traffic (8×8 mesh, 24×24 grid, \
         0.9 × 12-on/20-off, codes at latency 1)",
        &[
            "policy",
            "worst droop",
            "mean droop",
            "cycles > 50% base",
            "engaged",
            "toggles",
            "deferred peak",
            "reduction",
        ],
    );
    let mut render_arm = |out: &MitigatedNocResult| {
        let reduction = (1.0 - out.worst_droop / base.worst_droop) * 100.0;
        t.row([
            out.policy.clone(),
            format!("{:.1} mV", out.worst_droop * 1e3),
            format!("{:.1} mV", out.mean_droop() * 1e3),
            out.cycles_deeper_than(duration_floor).to_string(),
            format!("{} cy", out.engaged_cycles),
            out.actuation_toggles().to_string(),
            out.deferred_peak.to_string(),
            format!("{reduction:.1}%"),
        ]);
        reduction
    };
    render_arm(base);
    let mut best: Option<(String, f64)> = None;
    for out in &results[1..5] {
        let reduction = render_arm(out);
        if best.as_ref().is_none_or(|(_, b)| reduction > *b) {
            best = Some((out.policy.clone(), reduction));
        }
    }
    let mut s = t.render();

    // Response-latency sweep: the same supply-boost policy with its
    // codes delayed 0–8 cycles on the way to the controller.
    let mut lt = Table::new(
        "XP-DROOP — supply-boost vs code-distribution latency",
        &[
            "latency",
            "worst droop",
            "mean droop",
            "engaged",
            "toggles",
            "reduction",
        ],
    );
    for (latency, out) in results[5..].iter().enumerate() {
        lt.row([
            format!("{latency} cy"),
            format!("{:.1} mV", out.worst_droop * 1e3),
            format!("{:.1} mV", out.mean_droop() * 1e3),
            format!("{} cy", out.engaged_cycles),
            out.actuation_toggles().to_string(),
            format!("{:.1}%", (1.0 - out.worst_droop / base.worst_droop) * 100.0),
        ]);
    }
    s.push_str(&lt.render());

    let (best_name, best_pct) = best.expect("at least one arm");
    s.push_str(&format!(
        "healthy level: {healthy}/7 (engage ≤ {engage}, release ≥ {release}) | \
         open-loop worst droop: {:.1} mV\n",
        base.worst_droop * 1e3
    ));
    s.push_str(&format!(
        "best-arm worst-droop reduction: {best_pct:.1}% ({best_name})\n"
    ));
    s.push_str(
        "stability: threshold hysteresis + PI anti-windup — actuation toggles stay bounded \
         by burst edges at every latency (pinned by tests/control_loop.rs)\n",
    );
    s
}
