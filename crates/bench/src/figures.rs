//! One reproduction function per paper figure/table.
//!
//! Each function computes the artifact's data and renders it in the
//! paper's own terms; the `repro` binary prints them and the Criterion
//! benches time them. `EXPERIMENTS.md` records the printed values
//! against the published ones.

use psnt_analysis::report::{fmt_ps, fmt_v, Table};
use psnt_cells::process::{ProcessCorner, Pvt};
use psnt_cells::units::{Capacitance, Current, Resistance, Temperature, Time, Voltage};
use psnt_core::baseline::{
    ErrorProbabilityMonitor, RazorOutcome, RazorStage, RingOscillatorSensor,
};
use psnt_core::calibration::{array_characteristic, sensitivity_characteristic, trim_for_corner};
use psnt_core::control::{build_control_netlist, Controller, CtrlInputs, CtrlNetlistConfig};
use psnt_core::element::{RailMode, SenseElement};
use psnt_core::pulsegen::{DelayCode, PulseGenerator};
use psnt_core::system::{SensorConfig, SensorSystem};
use psnt_core::thermometer::ThermometerArray;
use psnt_ctx::RunCtx;
use psnt_netlist::sta::{analyze, StaConfig};
use psnt_pdn::sources::{supply_step, SupplyNoiseBuilder};
use psnt_pdn::waveform::Waveform;
use psnt_scan::campaign::Campaign;
use psnt_scan::floorplan::{Floorplan, Placement};
use psnt_scan::sampler::EquivalentTimeSampler;

/// One experiment registry row: stable id, one-line description, and
/// the runner. Every runner takes the session's [`RunCtx`]; pure
/// experiments simply ignore it.
pub type Experiment = (&'static str, &'static str, fn(&mut RunCtx<'_>) -> String);

/// The experiment registry, in paper order: every figure/table
/// reproduction and every ablation as `(id, description, runner)`.
/// `repro --list` prints the ids and descriptions verbatim.
pub fn registry() -> Vec<Experiment> {
    use crate::ablations;
    vec![
        (
            "fig2",
            "DS delay growth and OUT sampling across four VDD-n cases",
            (|_| fig2()) as fn(&mut RunCtx<'_>) -> String,
        ),
        (
            "fig3",
            "two PREPARE/SENSE sequences at 1.00 V then 0.95 V",
            |_| fig3(),
        ),
        (
            "fig4",
            "failure-threshold voltage vs load capacitance",
            |_| fig4(),
        ),
        (
            "fig5",
            "7-bit array characteristic for three delay codes",
            fig5,
        ),
        (
            "tab1",
            "pulse-generator delay-code table with matched-MUX check",
            |_| tab1(),
        ),
        (
            "fig6",
            "assembled system measuring both rails under composite noise",
            fig6,
        ),
        (
            "fig8",
            "control FSM walk and gate-level critical path",
            |_| fig8(),
        ),
        (
            "fig9",
            "full two-measure system run (1.0 V then 0.9 V)",
            fig9,
        ),
        ("gnd", "LOW-SENSE (ground-bounce) array characteristic", gnd),
        (
            "pv",
            "per-corner delay-code trim across process corners",
            pv,
        ),
        (
            "baseline",
            "thermometer vs related-work sensors on droop/bounce",
            |_| baseline(),
        ),
        (
            "scan",
            "multi-site PSN scan over a loaded grid + equivalent-time capture",
            scan,
        ),
        (
            "gate-level",
            "event-driven netlist twin vs behavioural array + STA droop",
            |_| gate_level(),
        ),
        (
            "overhead",
            "area/power cost of the sensor vs representative CUTs",
            |_| overhead(),
        ),
        (
            "delay-model",
            "analytic alpha-power model vs NLDM table lookup",
            |_| ablations::delay_model(),
        ),
        (
            "ladder",
            "paper capacitor ladder vs uniform ladder linearity",
            |_| ablations::ladder(),
        ),
        (
            "encoding",
            "encoder bubble policy under stochastic metastability",
            |_| ablations::encoding(),
        ),
        (
            "sampling",
            "synchronous vs equivalent-time capture of a resonance",
            |_| ablations::sampling(),
        ),
        (
            "mismatch",
            "thermometer yield under local-variation Monte-Carlo",
            ablations::mismatch,
        ),
        (
            "impedance",
            "|Z(f)| profile vs time-domain worst rail droop",
            ablations::impedance,
        ),
        (
            "temperature",
            "characteristic drift with junction temperature",
            ablations::temperature,
        ),
        (
            "code-density",
            "code widths from a voltage ramp vs thresholds",
            |_| ablations::code_density(),
        ),
        (
            "oversampling",
            "sub-LSB decoding via metastability dithering",
            |_| ablations::oversampling(),
        ),
        (
            "fault-coverage",
            "1,016-plan fault universe over the gate-level array, 64 plans/word",
            fault_coverage,
        ),
        (
            "noc-campaign",
            "chip-scale NoC workload: 1,600-node sparse PDN chain + streamed 256-site campaign",
            noc_campaign,
        ),
        (
            "droop-mitigation",
            "closed-loop droop mitigation: four policies vs open loop + 0-8-cycle code-latency sweep",
            droop_mitigation,
        ),
    ]
}

fn code011() -> DelayCode {
    DelayCode::new(3).expect("static code")
}

fn skew(code: DelayCode) -> Time {
    PulseGenerator::paper_table().skew(code, &Pvt::typical())
}

/// Fig. 2 — DS delay growth and OUT sampling across four linearly spaced
/// VDD-n cases.
pub fn fig2() -> String {
    // C = 2.03 pF puts the element threshold at ≈ 0.950 V, so cases 1–3
    // sample correctly (with visibly growing OUT delay) and case 4 fails,
    // exactly as the figure shows.
    let elem = SenseElement::paper(Capacitance::from_pf(2.03), RailMode::Supply);
    let pvt = Pvt::typical();
    let sk = skew(code011());
    let mut t = Table::new(
        "Fig. 2 — noise sensor detail (C = 2.03 pF, delay code 011)",
        &["case", "VDD-n", "DS delay", "OUT delay", "OUT sample"],
    );
    for (i, mv) in [1000.0, 980.0, 960.0, 940.0].into_iter().enumerate() {
        let r = elem.measure(Voltage::from_mv(mv), sk, &pvt);
        t.row([
            format!("{}", i + 1),
            fmt_v(mv / 1000.0),
            fmt_ps(r.ds_delay.picoseconds()),
            fmt_ps(r.out_delay.picoseconds()),
            if r.passed {
                "correct (1)".into()
            } else {
                "WRONG (0)".to_string()
            },
        ]);
    }
    t.render()
}

/// Fig. 3 — two PREPARE/SENSE sequences: nominal 1.00 V then 0.95 V.
pub fn fig3() -> String {
    // C = 2.1 pF puts the threshold at ≈ 0.983 V: the nominal 1.00 V
    // measure samples correctly, the 0.95 V one violates setup — the
    // figure's two outcomes.
    let elem = SenseElement::paper(Capacitance::from_pf(2.1), RailMode::Supply);
    let pvt = Pvt::typical();
    let sk = skew(code011());
    let mut t = Table::new(
        "Fig. 3 — PREPARE/SENSE sequence (C = 2.1 pF, delay code 011)",
        &["measure", "phase", "P", "DS", "OUT"],
    );
    for (i, v) in [1.00, 0.95].into_iter().enumerate() {
        t.row([
            format!("{}", i + 1),
            "PREPARE".into(),
            "1".into(),
            "forced low".into(),
            "0".into(),
        ]);
        let r = elem.measure(Voltage::from_v(v), sk, &pvt);
        t.row([
            format!("{}", i + 1),
            format!("SENSE @ {}", fmt_v(v)),
            "0".into(),
            format!("rises after {}", fmt_ps(r.ds_delay.picoseconds())),
            if r.passed {
                "1 (set-up met)".into()
            } else {
                "0 (set-up violated)".to_string()
            },
        ]);
    }
    t.render()
}

/// Fig. 4 — failure-threshold voltage vs load capacitance.
pub fn fig4() -> String {
    let sk = skew(code011());
    let loads: Vec<Capacitance> = (2..=16)
        .map(|i| Capacitance::from_pf(i as f64 * 0.25))
        .collect();
    let points = sensitivity_characteristic(RailMode::Supply, sk, &Pvt::typical(), loads)
        .expect("thresholds in range");
    let mut t = Table::new(
        "Fig. 4 — sensor sensitivity: VDD threshold vs capacitance at DS (code 011)",
        &["C [pF]", "threshold"],
    );
    for p in &points {
        t.row([
            format!("{:.2}", p.load.picofarads()),
            fmt_v(p.threshold.volts()),
        ]);
    }
    let mut s = t.render();
    let at_2pf = points
        .iter()
        .find(|p| (p.load.picofarads() - 2.0).abs() < 1e-9)
        .expect("2 pF in sweep");
    s.push_str(&format!(
        "paper @ 2 pF: 0.9360 V | measured: {}\n",
        fmt_v(at_2pf.threshold.volts())
    ));
    s
}

/// Fig. 5 — 7-bit array characteristic for three delay codes.
pub fn fig5(ctx: &mut RunCtx<'_>) -> String {
    let array = ThermometerArray::paper(RailMode::Supply);
    let pg = PulseGenerator::paper_table();
    let pvt = Pvt::typical();
    let mut t = Table::new(
        "Fig. 5 — multibit characteristic (per-element thresholds and dynamic range)",
        &["delay code", "T1..T7 [V]", "range"],
    );
    for code_val in [1u8, 2, 3] {
        let code = DelayCode::new(code_val).expect("static");
        let ch = array_characteristic(ctx, &array, &pg, code, &pvt).expect("in range");
        let ths = ch
            .thresholds
            .iter()
            .map(|v| format!("{:.3}", v.volts()))
            .collect::<Vec<_>>()
            .join(" ");
        t.row([
            code.to_string(),
            ths,
            format!(
                "{} – {}",
                fmt_v(ch.range.0.volts()),
                fmt_v(ch.range.1.volts())
            ),
        ]);
    }
    let mut s = t.render();
    s.push_str("paper: code 011 range 0.827–1.053 V; code 010 range 0.951–1.237 V\n");
    s.push_str("paper: code 011, 0011111 ⇔ 0.992–1.021 V; 0000011 ⇔ 0.896–0.929 V\n");
    s
}

/// Table 1 — the delay-code table of the pulse generator (with Fig. 7's
/// matched-MUX skew check).
pub fn tab1() -> String {
    let pg = PulseGenerator::paper_table();
    let pvt = Pvt::typical();
    let mut s = String::from("== Table 1 — pulse generator delay codes ==\n");
    s.push_str(&pg.table_report());
    s.push('\n');
    let t = pg.emit(code011(), &pvt);
    s.push_str(&format!(
        "matched-MUX check (Fig. 7): P→CP skew for 011 = {} (insertion {} + tap {})\n",
        fmt_ps(t.skew().picoseconds()),
        fmt_ps(pg.insertion_at(&pvt).picoseconds()),
        fmt_ps(pg.cp_delay(code011()).picoseconds()),
    ));
    s
}

/// Fig. 6 — the assembled system measuring both rails under composite
/// noise. Telemetry, if any, flows through the context's observer.
pub fn fig6(ctx: &mut RunCtx<'_>) -> String {
    let mut system = SensorSystem::new(SensorConfig::default()).expect("default config");
    let vdd = SupplyNoiseBuilder::new(Voltage::from_v(0.98))
        .span(Time::ZERO, Time::from_us(2.0))
        .resolution(Time::from_ps(250.0))
        .resonance(
            psnt_cells::units::Frequency::from_mhz(50.0),
            Voltage::from_mv(30.0),
            0.0,
        )
        .build()
        .expect("valid noise");
    let gnd = psnt_pdn::sources::ground_bounce(
        Time::from_us(2.0),
        psnt_cells::units::Frequency::from_mhz(50.0),
        Voltage::from_mv(25.0),
        7,
    )
    .expect("valid bounce");
    let measures = system
        .run(ctx, &vdd, &gnd, Time::ZERO, 10)
        .expect("measures");
    let mut t = Table::new(
        "Fig. 6 — system measuring VDD-n (HS) and GND-n (LS) independently",
        &["t [ns]", "HS code", "VDD-n est.", "LS code", "GND-n est."],
    );
    for m in &measures {
        t.row([
            format!("{:.1}", m.at.nanoseconds()),
            m.hs_code.to_string(),
            m.hs_interval
                .midpoint()
                .map_or("saturated".into(), |v| fmt_v(v.volts())),
            m.ls_code.to_string(),
            m.ls_interval
                .midpoint()
                .map_or("saturated".into(), |v| fmt_v(v.volts())),
        ]);
    }
    t.render()
}

/// Fig. 8 — the control FSM walk and the gate-level critical path (the
/// paper's 1.22 ns claim).
pub fn fig8() -> String {
    let mut ctrl = Controller::new(None);
    let mut t = Table::new(
        "Fig. 8 — control FSM sequence",
        &["cycle", "state", "P", "CP", "capture"],
    );
    for cycle in 0..7 {
        let out = ctrl.step(CtrlInputs {
            enable: true,
            start: true,
        });
        t.row([
            cycle.to_string(),
            format!("{:?}", ctrl.state()),
            out.p.to_string(),
            out.cp.to_string(),
            out.capture.to_string(),
        ]);
    }
    let mut s = t.render();
    let netlist = build_control_netlist(&CtrlNetlistConfig::default());
    let report = analyze(&netlist, &StaConfig::default()).expect("valid netlist");
    s.push_str(&format!(
        "gate-level CNTR ({}): critical path {} (paper: 1.22 ns), max clock {:.0} MHz\n",
        netlist.summary(),
        fmt_ps(report.critical_delay().picoseconds()),
        report.max_frequency().hertz() / 1e6,
    ));
    s
}

/// Fig. 9 — the full two-measure system run (1.0 V then 0.9 V).
/// Telemetry, if any, flows through the context's observer.
pub fn fig9(ctx: &mut RunCtx<'_>) -> String {
    let mut system = SensorSystem::new(SensorConfig::default()).expect("default config");
    let vdd = supply_step(
        Voltage::from_v(1.0),
        Voltage::from_v(0.9),
        Time::from_ns(15.0),
        Time::from_us(1.0),
    )
    .expect("valid step");
    let gnd = Waveform::constant(0.0);
    let measures = system
        .run(ctx, &vdd, &gnd, Time::ZERO, 2)
        .expect("measures");
    let mut t = Table::new(
        "Fig. 9 — two measures, delay code 011",
        &["phase", "t [ns]", "sensor output", "decoded VDD-n"],
    );
    t.row([
        "PREPARE".to_string(),
        "-".into(),
        system.hs_prepare_code().to_string(),
        "(forced)".into(),
    ]);
    for m in &measures {
        let interval = match (m.hs_interval.lower, m.hs_interval.upper) {
            (Some(lo), Some(hi)) => format!("{} – {}", fmt_v(lo.volts()), fmt_v(hi.volts())),
            _ => "saturated".into(),
        };
        t.row([
            "SENSE".to_string(),
            format!("{:.2}", m.at.nanoseconds()),
            m.hs_code.to_string(),
            interval,
        ]);
    }
    let mut s = t.render();
    s.push_str("paper: 0011111 ⇔ 0.992–1.021 V, then 0000011 ⇔ 0.896–0.929 V\n");
    s
}

/// XP-GND — the LOW-SENSE (ground) characteristic the paper generated
/// "but not reported for sake of brevity".
pub fn gnd(ctx: &mut RunCtx<'_>) -> String {
    let array = ThermometerArray::paper(RailMode::Ground);
    let pg = PulseGenerator::paper_table();
    let pvt = Pvt::typical();
    let mut t = Table::new(
        "XP-GND — LOW-SENSE array: ground-bounce thresholds per delay code",
        &["delay code", "G1..G7 [mV bounce]", "measurable bounce"],
    );
    for code_val in [3u8, 4, 5] {
        let code = DelayCode::new(code_val).expect("static");
        let ch = array_characteristic(ctx, &array, &pg, code, &pvt).expect("in range");
        let ths = ch
            .thresholds
            .iter()
            .map(|v| format!("{:.0}", v.millivolts()))
            .collect::<Vec<_>>()
            .join(" ");
        t.row([
            code.to_string(),
            ths,
            format!(
                "{:.0} – {:.0} mV",
                ch.range.0.millivolts().max(0.0),
                ch.range.1.millivolts()
            ),
        ]);
    }
    t.render()
}

/// XP-PV — process-variation trim: per-corner delay-code choice. The
/// per-corner trims run on the context's engine; the report is
/// bit-identical at any worker count.
pub fn pv(ctx: &mut RunCtx<'_>) -> String {
    let array = ThermometerArray::paper(RailMode::Supply);
    let pg = PulseGenerator::paper_table();
    let reference = Pvt::typical();
    let mut t = Table::new(
        "XP-PV — delay-code trim across process corners (reference: TT, code 011)",
        &[
            "corner",
            "untrimmed midpoint error",
            "trimmed code",
            "residual error",
        ],
    );
    for corner in ProcessCorner::ALL {
        let pvt = Pvt::new(
            corner,
            Voltage::from_v(1.0),
            Temperature::from_celsius(25.0),
        );
        let trim =
            trim_for_corner(ctx, &array, &pg, code011(), &reference, &pvt).expect("in range");
        t.row([
            corner.to_string(),
            format!("{:.1} mV", trim.untrimmed_residual.millivolts()),
            trim.code.to_string(),
            format!("{:.1} mV", trim.residual.millivolts()),
        ]);
    }
    t.render()
}

/// XP-BASE — thermometer vs the related-work baselines on the
/// droop-vs-bounce discrimination task.
pub fn baseline() -> String {
    let pvt = Pvt::typical();
    let system = SensorSystem::new(SensorConfig::default()).expect("default config");
    let ro = RingOscillatorSensor::paper_31_stage();
    let razor = RazorStage::typical_pipeline();
    let monitor = ErrorProbabilityMonitor::typical();
    let window = Time::from_us(1.0);
    let period = Time::from_ns(2.0);

    let scenarios: [(&str, f64, f64); 3] = [
        ("quiet", 1.00, 0.0),
        ("60 mV VDD droop", 0.94, 0.0),
        ("60 mV GND bounce", 1.00, 0.06),
    ];
    let mut t = Table::new(
        "XP-BASE — what each sensor reports (droop vs bounce discrimination)",
        &[
            "scenario",
            "thermometer HS/LS",
            "RO count",
            "Razor",
            "err-rate",
        ],
    );
    for (name, v, g) in scenarios {
        let vdd = Waveform::constant(v);
        let gnd = Waveform::constant(g);
        let m = system
            .measure_at(&vdd, &gnd, Time::from_ns(100.0))
            .expect("in range");
        let count = ro.count(&vdd, &gnd, Time::ZERO, window, &pvt);
        let rz = match razor.evaluate(Voltage::from_v(v - g), true, period) {
            RazorOutcome::NoError => "no error",
            RazorOutcome::Detected => "error detected",
            RazorOutcome::Missed => "SILENT CORRUPTION",
            RazorOutcome::NotExercised => "blind",
        };
        let rate = monitor.expected_rate(&[Voltage::from_v(v - g)]);
        t.row([
            name.to_string(),
            format!("{}/{}", m.hs_code, m.ls_code),
            count.to_string(),
            rz.to_string(),
            format!("{rate:.3}"),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "note: the RO count is identical for droop and bounce (paper's critique of ref. [7]);\n\
         the thermometer's HS/LS pair separates them.\n",
    );
    s
}

/// The XP-SCAN campaign workload: the 4×4 corner-fed grid with the
/// four centre tiles pulsing, every tile instrumented. Shared by the
/// `scan` figure and the `xp_parallel_scaling` bench so both time the
/// same campaign.
pub fn scan_campaign() -> (Campaign, Vec<Waveform>) {
    let grid = psnt_pdn::grid::PowerGrid::corner_fed(
        4,
        Voltage::from_v(1.05),
        psnt_cells::units::Resistance::from_milliohms(60.0),
        psnt_cells::units::Resistance::from_milliohms(20.0),
    )
    .expect("valid grid");
    let fp = Floorplan::new(grid, Placement::EveryTile).expect("valid placement");
    let campaign = Campaign::new(fp, SensorConfig::default()).expect("valid config");
    let mut loads = vec![Waveform::constant(0.03); 16];
    for hot in [5usize, 6, 9, 10] {
        loads[hot] = Waveform::from_points(vec![
            (Time::ZERO, 0.1),
            (Time::from_ns(100.0), 0.5),
            (Time::from_ns(200.0), 0.25),
        ])
        .expect("valid load");
    }
    (campaign, loads)
}

/// XP-SCAN — the PSN scan chain over a loaded power grid, plus an
/// equivalent-time capture of a resonance. The site sweep runs on the
/// context's engine and telemetry flows through its observer; the
/// rendered report is bit-identical at any worker count.
pub fn scan(ctx: &mut RunCtx<'_>) -> String {
    // Spatial noise map. The resilient runner is bit-identical to
    // `run_dual` when the context carries no fault plan, and completes
    // with a partial map (degraded sites called out below) when it does.
    let (campaign, loads) = scan_campaign();
    let resilient = campaign
        .run_resilient(
            ctx,
            &loads,
            None,
            Time::from_ns(10.0),
            Time::from_ns(25.0),
            8,
            psnt_engine::RetryPolicy::none(),
        )
        .expect("campaign");
    let result = &resilient.result;
    let mut t = Table::new(
        "XP-SCAN — spatial noise map (4×4 grid, centre loaded)",
        &[
            "tile",
            "site",
            "worst level",
            "mean level",
            "worst VDD est.",
        ],
    );
    for s in &result.sites {
        t.row([
            s.tile.to_string(),
            s.name.clone(),
            s.worst_level().to_string(),
            format!("{:.2}", s.mean_level()),
            s.worst_voltage()
                .map_or("saturated".into(), |v| fmt_v(v.volts())),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "scan chain: {} sites × 7 bits = {} shift cycles per frame\n",
        result.sites.len(),
        campaign.chain().shift_cycles()
    ));
    if resilient.summary.sites_degraded > 0 {
        out.push_str(&format!(
            "DEGRADED: {} of {} sites failed (dead elements: {}, worst code error: {} level(s)); map above is partial\n",
            resilient.summary.sites_degraded,
            result.sites.len(),
            resilient.summary.dead_elements,
            resilient.summary.worst_code_error,
        ));
    }

    // Equivalent-time capture.
    let system = SensorSystem::new(SensorConfig::default()).expect("default config");
    let f = psnt_cells::units::Frequency::from_mhz(50.0);
    let vdd = SupplyNoiseBuilder::new(Voltage::from_v(0.94))
        .span(Time::ZERO, Time::from_us(10.0))
        .resolution(Time::from_ps(250.0))
        .resonance(f, Voltage::from_mv(35.0), 0.0)
        .build()
        .expect("valid noise");
    let sampler = EquivalentTimeSampler::new(Time::period_of(f), 20).expect("valid sampler");
    let recon = sampler
        .capture_periodic(
            &system,
            &vdd,
            &Waveform::constant(0.0),
            Time::from_ns(100.0),
            400,
        )
        .expect("capture");
    out.push_str(&format!(
        "equivalent-time capture of 50 MHz resonance: coverage {:.0}%, p2p {} (true 70 mV)\n",
        recon.coverage() * 100.0,
        recon
            .peak_to_peak()
            .map_or("n/a".into(), |v| format!("{:.0} mV", v.millivolts())),
    ));
    out
}

/// XP-GATE — the gate-level twin: netlist measures vs the behavioural
/// array, and the noisy-domain droop seen by STA.
pub fn gate_level() -> String {
    use psnt_core::gate_level::GateLevelArray;
    use psnt_netlist::sta::{analyze_with_domain_supplies, StaConfig};

    let gate = GateLevelArray::paper().expect("valid netlist");
    let behavioural = ThermometerArray::paper(RailMode::Supply);
    let pvt = Pvt::typical();
    let sk = skew(code011());

    let mut t = Table::new(
        "XP-GATE — event-driven netlist twin vs behavioural model (delay code 011)",
        &["VDD-n", "gate-level code", "behavioural code", "agree"],
    );
    let mut all_agree = true;
    // A local context: its pool keeps one reusable simulator alive
    // across the sweep (the PR 3 `make_sim` + `reset()` fast path).
    let mut ctx = RunCtx::serial();
    for mv in (820..=1080).step_by(40) {
        let v = Voltage::from_mv(mv as f64 + 3.0);
        let a = gate.measure(&mut ctx, v, sk).expect("simulates");
        let b = behavioural.measure(v, sk, &pvt);
        let agree = a == b;
        all_agree &= agree;
        t.row([
            fmt_v(v.volts()),
            a.to_string(),
            b.to_string(),
            if agree {
                "yes".to_string()
            } else {
                "NO".into()
            },
        ]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "bit-exact agreement across the sweep: {}\n",
        if all_agree { "yes" } else { "NO" }
    ));

    let cfg = StaConfig::default();
    let nominal = analyze_with_domain_supplies(gate.netlist(), &cfg, &[]).expect("sta");
    let droop = analyze_with_domain_supplies(
        gate.netlist(),
        &cfg,
        &[(gate.noisy_domain(), Voltage::from_v(0.9))],
    )
    .expect("sta");
    s.push_str(&format!(
        "per-domain STA: worst DS path {} at nominal, {} with the noisy rail at 0.90 V\n",
        fmt_ps(nominal.critical_delay().picoseconds()),
        fmt_ps(droop.critical_delay().picoseconds()),
    ));

    // The flattened CNTR + PG + array system running Fig. 9 in gates.
    let sys = psnt_core::gate_level::GateLevelSystem::paper().expect("system composes");
    let measures = sys
        .run_measures(
            &mut RunCtx::serial(),
            code011(),
            &[Voltage::from_v(1.0), Voltage::from_v(0.9)],
        )
        .expect("system runs");
    s.push_str(&format!(
        "full gate-level system ({}): measures {} then {} at pin skew {} — Fig. 9 in gates\n",
        sys.netlist().summary(),
        measures[0].code,
        measures[1].code,
        fmt_ps(measures[0].skew().picoseconds()),
    ));
    s
}

/// XP-OVERHEAD — the paper's "very low overhead in terms of power and
/// area" claim, quantified from the gate-level netlists.
pub fn overhead() -> String {
    use psnt_cells::gates::GE_AREA_90NM_UM2;
    use psnt_core::gate_level::GateLevelSystem;
    use psnt_netlist::sim::Simulator;

    let sys = GateLevelSystem::paper().expect("system composes");
    let one_array_system = sys.netlist();

    // Area: the composed netlist carries one HS array; the paper's full
    // system adds the LS array and the ENC (≈ one more array plus ~15 GE
    // of encoder logic).
    let array = psnt_core::gate_level::GateLevelArray::paper().expect("array");
    let array_ge = array.netlist().area_ge();
    let system_ge = one_array_system.area_ge() + array_ge + 15.0;
    let system_um2 = system_ge * GE_AREA_90NM_UM2;
    let leakage_nw = one_array_system.leakage_nw()
        + array.netlist().leakage_nw()
        + 15.0 * psnt_cells::gates::LEAKAGE_NW_PER_GE;

    // Dynamic power: run the gate-level system flat out (one measure per
    // five 4 ns cycles) and read the accumulated switching energy.
    let mut sim = Simulator::new(one_array_system, Voltage::from_v(1.0)).expect("valid");
    let clk = one_array_system.net_by_name("clk").expect("clk");
    let enable = one_array_system.net_by_name("enable").expect("enable");
    let start = one_array_system.net_by_name("start").expect("start");
    sim.drive(enable, psnt_cells::logic::Logic::One, Time::ZERO)
        .expect("drive");
    sim.drive(start, psnt_cells::logic::Logic::One, Time::ZERO)
        .expect("drive");
    for i in 0..3u8 {
        let sel = one_array_system
            .net_by_name(&format!("sel{i}"))
            .expect("sel");
        sim.drive(
            sel,
            psnt_cells::logic::Logic::from(3 >> i & 1 == 1),
            Time::ZERO,
        )
        .expect("drive");
    }
    sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(4.0), 50)
        .expect("clock");
    sim.run_until(Time::from_ns(202.0));
    // Both arrays switch: double the array share ≈ double total (the
    // arrays dominate the switched capacitance through the big DS caps).
    let dyn_uw = 2.0 * sim.dynamic_power_watts() * 1e6;
    let total_uw = dyn_uw + leakage_nw * 1e-3;

    let mut t = Table::new(
        "XP-OVERHEAD — sensor cost vs representative CUTs (90 nm)",
        &["quantity", "value"],
    );
    t.row([
        "sensor system area".to_string(),
        format!("{system_ge:.0} GE ≈ {system_um2:.0} µm²"),
    ]);
    t.row([
        "  of which one 7-bit array".to_string(),
        format!("{array_ge:.0} GE"),
    ]);
    t.row([
        "leakage".to_string(),
        format!("{:.2} µW", leakage_nw * 1e-3),
    ]);
    t.row([
        "dynamic power (continuous measures, 4 ns clock)".to_string(),
        format!("{dyn_uw:.1} µW"),
    ]);
    t.row(["total power".to_string(), format!("{total_uw:.1} µW")]);
    for cut_kge in [50.0, 200.0, 1000.0] {
        t.row([
            format!("area overhead vs a {cut_kge:.0}k-GE CUT"),
            format!("{:.3} %", system_ge / (cut_kge * 1000.0) * 100.0),
        ]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "dynamic power is dominated by the pF-scale DS capacitors the paper specifies; duty-cycled\n\
         measurement (e.g. one burst per 100 clock cycles) reduces it to {:.0} µW.\n\
         per extra measure point only one more array (+ its share of the scan chain) is added;\n\
         the CNTR, PG and ENC are shared — the paper's \"only a control system is required\".\n",
        dyn_uw / 100.0 + leakage_nw * 1e-3,
    ));
    s
}

/// XP-FAULT — fault coverage of the 7-element gate-level array over a
/// 1,016-plan universe (single and double stuck-ats on every net,
/// delay scaling on every sense inverter, and stuck-at × delay
/// crosses), measured at three rail levels against the healthy
/// (golden) codes. The sweep runs through the 64-lane batch kernel —
/// one word evaluates 64 fault plans per pass, so 48 batched measures
/// replace the 3,048 scalar ones the same campaign would otherwise
/// cost. A fault is *detected* when any rail's thermometer code
/// differs from golden (or the measure errors out); the residual is
/// the worst bubble-corrected level error a detected fault leaves
/// behind. Fully deterministic — same table on every run at any
/// worker count.
pub fn fault_coverage(ctx: &mut RunCtx<'_>) -> String {
    use psnt_cells::logic::Logic;
    use psnt_core::gate_level::GateLevelArray;
    use psnt_fault::{Fault, FaultPlan};
    use psnt_netlist::LANES;

    let array = GateLevelArray::paper().expect("paper array builds");
    let sk = skew(code011());
    let rails = [1.0, 0.96, 0.9].map(Voltage::from_v);

    // One local context pools one scalar simulator (golden pass) and
    // one batch kernel (the whole faulted sweep).
    let mut lctx = RunCtx::new(ctx.engine().clone());
    let golden: Vec<_> = rails
        .iter()
        .map(|&v| array.measure(&mut lctx, v, sk).expect("healthy measure"))
        .collect();

    let names: Vec<String> = array
        .netlist()
        .nets()
        .map(|(_, n)| n.name().to_string())
        .collect();
    let gate_names: Vec<String> = array
        .netlist()
        .gates()
        .iter()
        .map(|g| g.name().to_string())
        .collect();

    // The fault universe, one class id per plan. Delay factors span
    // 4× fast to 6× slow; 8 distinct factors per gate keeps the batch
    // kernel's delay banding exact (no quantisation).
    const CLASSES: [&str; 4] = [
        "single stuck-at (SA0+SA1, every net)",
        "double stuck-at (every net pair x 4 values)",
        "delay scale (every sense inverter x 8 factors)",
        "stuck-at x delay cross",
    ];
    const FACTORS: [f64; 8] = [0.25, 0.5, 0.75, 1.5, 2.0, 3.0, 4.0, 6.0];
    let mut class_of: Vec<usize> = Vec::new();
    let mut plans: Vec<FaultPlan> = Vec::new();
    let push =
        |class: usize, plan: FaultPlan, class_of: &mut Vec<usize>, plans: &mut Vec<FaultPlan>| {
            debug_assert!(plan.batch_supported());
            class_of.push(class);
            plans.push(plan);
        };
    for name in &names {
        for value in [Logic::Zero, Logic::One] {
            push(
                0,
                FaultPlan::new().with(Fault::stuck_at(name.clone(), value)),
                &mut class_of,
                &mut plans,
            );
        }
    }
    for i in 0..names.len() {
        for j in (i + 1)..names.len() {
            for va in [Logic::Zero, Logic::One] {
                for vb in [Logic::Zero, Logic::One] {
                    push(
                        1,
                        FaultPlan::new()
                            .with(Fault::stuck_at(names[i].clone(), va))
                            .with(Fault::stuck_at(names[j].clone(), vb)),
                        &mut class_of,
                        &mut plans,
                    );
                }
            }
        }
    }
    for g in &gate_names {
        for f in FACTORS {
            push(
                2,
                FaultPlan::new().with(Fault::delay_scale(g.clone(), f)),
                &mut class_of,
                &mut plans,
            );
        }
    }
    // Cross class: 8 deterministic stuck-at anchors (every other net,
    // alternating polarity) x the 56 delay faults.
    let anchors: Vec<(String, Logic)> = names
        .iter()
        .step_by(2)
        .enumerate()
        .map(|(k, n)| (n.clone(), if k % 2 == 0 { Logic::Zero } else { Logic::One }))
        .collect();
    for (an, av) in &anchors {
        for g in &gate_names {
            for f in FACTORS {
                push(
                    3,
                    FaultPlan::new()
                        .with(Fault::stuck_at(an.clone(), *av))
                        .with(Fault::delay_scale(g.clone(), f)),
                    &mut class_of,
                    &mut plans,
                );
            }
        }
    }

    // Sweep 64 plans per word: each chunk costs one batched measure per
    // rail, lane `l` carrying plan `chunk_base + l`.
    let mut totals = [0u32; 4];
    let mut detects = [0u32; 4];
    let mut errors = [0u32; 4];
    let mut worst = [0usize; 4];
    let mut batched_measures = 0usize;
    for (ci, chunk) in plans.chunks(LANES).enumerate() {
        let per_rail: Vec<_> = rails
            .iter()
            .map(|&v| {
                batched_measures += 1;
                array
                    .measure_batch(&mut lctx, v, sk, chunk)
                    .expect("batched faulted measure")
            })
            .collect();
        for l in 0..chunk.len() {
            let k = class_of[ci * LANES + l];
            totals[k] += 1;
            let mut detected = false;
            let mut residual = 0usize;
            for (lane_results, gold) in per_rail.iter().zip(&golden) {
                match &lane_results[l] {
                    Ok((sense, _prepare)) => {
                        if sense != gold {
                            detected = true;
                        }
                        residual = residual.max(
                            sense
                                .correct_bubbles()
                                .level()
                                .abs_diff(gold.correct_bubbles().level()),
                        );
                    }
                    Err(_) => {
                        detected = true;
                        errors[k] += 1;
                    }
                }
            }
            if detected {
                detects[k] += 1;
                worst[k] = worst[k].max(residual);
            }
        }
    }

    let mut t = Table::new(
        "XP-FAULT — fault coverage, 7-element HIGH-SENSE array (code 011), 64 plans/word",
        &[
            "fault class",
            "plans",
            "detected",
            "coverage",
            "worst residual",
        ],
    );
    for (k, class) in CLASSES.iter().enumerate() {
        t.row([
            (*class).to_string(),
            totals[k].to_string(),
            detects[k].to_string(),
            format!(
                "{:.1} %",
                f64::from(detects[k]) / f64::from(totals[k]) * 100.0
            ),
            format!("{} level(s)", worst[k]),
        ]);
    }
    let total: u32 = totals.iter().sum();
    let detected_n: u32 = detects.iter().sum();
    let worst_residual = worst.iter().copied().max().unwrap_or(0);
    let mut s = t.render();
    s.push_str(&format!(
        "faults injected: {total} | detected: {detected_n} | detection rate: {rate:.1} % | \
         worst residual among detected: {worst_residual} level(s)\n\
         (three-rail signature: 1.00 V / 0.96 V / 0.90 V; a fault is silent only if every\n\
         rail reproduces the golden thermometer code)\n\
         batch kernel: {} plans swept as {} word-chunks x {} rails = {batched_measures} batched\n\
         measures, versus {} scalar measures for the same campaign serially\n",
        plans.len(),
        plans.len().div_ceil(LANES),
        rails.len(),
        plans.len() * rails.len(),
        rate = f64::from(detected_n) / f64::from(total) * 100.0,
    ));
    s
}

/// XP-NOC — the chip-scale workload campaign: an 8×8-mesh NoC's
/// traffic drives 1,000 cycle-by-cycle incremental solves of a
/// 1,600-node power grid, and all 256 sensor sites are measured at
/// every window centre through the streamed campaign path (flat
/// memory; per-site records counted as they pass the sink). With a
/// `--fault-plan` carrying `SitePanic` faults, degraded sites stream
/// through the same sink and the map stays partial instead of the run
/// aborting.
pub fn noc_campaign(ctx: &mut RunCtx<'_>) -> String {
    // No checkpoint flags: the plain supervised run. A cooperative
    // interrupt (e.g. a `CancelAt` harness fault) renders its notice
    // instead of aborting the whole repro session.
    crate::checkpointed::noc_campaign_checkpointed(
        ctx,
        &crate::checkpointed::CheckpointOptions::none(),
    )
    .expect("noc campaign")
    .report
}

/// The bursty chip the droop-mitigation experiment runs: rails at
/// 1.00 V (the centre of the sensor's dynamic range, so thermometer
/// levels track the droop), heavy per-flit current, 12-on/20-off
/// bursts.
pub(crate) fn droop_chip() -> psnt_workload::NocWorkloadConfig {
    use psnt_workload::{NocWorkloadConfig, TrafficPattern};
    NocWorkloadConfig {
        mesh_rows: 8,
        mesh_cols: 8,
        sites_per_tile: 1,
        grid_rows: 24,
        grid_cols: 24,
        v_pad: Voltage::from_v(1.0),
        r_mesh: Resistance::from_milliohms(120.0),
        r_pad: Resistance::from_milliohms(20.0),
        pads: vec![(0, 0), (0, 23), (23, 0), (23, 23)],
        pattern: TrafficPattern::Bursty {
            injection_rate: 0.9,
            on_cycles: 12,
            off_cycles: 20,
        },
        cycles: 400,
        cycle_time: Time::from_ns(1.0),
        idle_current: Current::from_ma(3.0),
        flit_current: Current::from_ma(7.0),
        measure_every: 50,
        sensor: SensorConfig::default(),
    }
}

/// XP-DROOP — closed-loop droop mitigation over the cycle-stepped
/// co-simulation core: droop depth/duration with each built-in policy
/// vs the open loop under bursty traffic, then a response-latency
/// sweep (thermometer codes delayed 0–8 cycles before the controller).
pub fn droop_mitigation(ctx: &mut RunCtx<'_>) -> String {
    // No checkpoint flags: the plain supervised sweep. A cooperative
    // interrupt (e.g. a `CancelAt` harness fault) renders its notice
    // instead of aborting the whole repro session.
    crate::checkpointed::droop_mitigation_checkpointed(
        ctx,
        &crate::checkpointed::CheckpointOptions::none(),
    )
    .expect("droop sweep")
    .report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_shows_failure_at_case_4() {
        let s = fig2();
        assert!(s.contains("WRONG (0)"));
        assert_eq!(s.matches("correct (1)").count(), 3);
    }

    #[test]
    fn fig3_report_shows_both_outcomes() {
        let s = fig3();
        assert!(s.contains("1 (set-up met)"));
        assert!(s.contains("0 (set-up violated)"));
    }

    #[test]
    fn fig4_report_contains_published_point() {
        let s = fig4();
        assert!(s.contains("paper @ 2 pF: 0.9360 V"));
        assert!(s.contains("0.93"), "{s}");
    }

    #[test]
    fn fig5_report_contains_ranges() {
        let s = fig5(&mut RunCtx::serial());
        assert!(s.contains("011"));
        assert!(s.contains("0.827"));
    }

    #[test]
    fn tab1_report_contains_taps() {
        let s = tab1();
        assert!(s.contains("107"));
        assert!(s.contains("149.0 ps"));
    }

    #[test]
    fn fig6_report_has_ten_measures() {
        let s = fig6(&mut RunCtx::serial());
        assert!(s.matches("0.9").count() >= 1);
        assert!(s.lines().count() >= 13, "{s}");
    }

    #[test]
    fn fig8_report_contains_critical_path() {
        let s = fig8();
        assert!(s.contains("critical path"));
        assert!(s.contains("Sense"));
    }

    #[test]
    fn fig9_report_matches_paper_codes() {
        let s = fig9(&mut RunCtx::serial());
        assert!(s.contains("0011111"));
        assert!(s.contains("0000011"));
        assert!(s.contains("0000000"));
    }

    #[test]
    fn gate_level_report_agrees() {
        let s = gate_level();
        assert!(
            s.contains("bit-exact agreement across the sweep: yes"),
            "{s}"
        );
        assert!(s.contains("per-domain STA"));
    }

    #[test]
    fn overhead_report_quantifies_the_claim() {
        let s = overhead();
        assert!(s.contains("GE"), "{s}");
        assert!(s.contains("area overhead vs a 200k-GE CUT"));
        assert!(s.contains("dynamic power"));
    }

    #[test]
    fn gnd_pv_baseline_scan_render() {
        assert!(gnd(&mut RunCtx::serial()).contains("LOW-SENSE"));
        assert!(pv(&mut RunCtx::serial()).contains("SS"));
        let b = baseline();
        assert!(b.contains("60 mV VDD droop"));
        let sc = scan(&mut RunCtx::serial());
        assert!(sc.contains("shift cycles"));
        assert!(sc.contains("equivalent-time"));
    }

    #[test]
    fn registry_ids_are_unique_and_described() {
        let reg = registry();
        let mut seen = std::collections::HashSet::new();
        for (id, desc, _) in &reg {
            assert!(seen.insert(*id), "duplicate experiment id {id}");
            assert!(!desc.is_empty(), "{id} has no description");
        }
        assert_eq!(reg.len(), 26, "experiment registry lost an entry");
    }

    #[test]
    fn noc_campaign_streams_every_site() {
        let out = noc_campaign(&mut RunCtx::serial());
        assert!(out.contains("XP-NOC"));
        assert!(out.contains("sites streamed: 256 (0 degraded)"));
        assert!(out.contains("flits injected:"));
        assert!(out.contains("chain: 1792 FFs"));
        // Ten 100-cycle windows.
        assert!(out.contains("900-999"));
    }

    #[test]
    fn droop_mitigation_cuts_worst_droop_by_a_third() {
        let out = droop_mitigation(&mut RunCtx::serial());
        assert!(out.contains("XP-DROOP"), "{out}");
        assert!(out.contains("open-loop"));
        for policy in [
            "threshold-stretch",
            "threshold-throttle",
            "supply-boost",
            "pi-boost",
        ] {
            assert!(out.contains(policy), "missing arm {policy}:\n{out}");
        }
        // Nine latency rows, 0 through 8.
        assert!(out.contains("8 cy"));
        // The acceptance bar: the best arm shallows the worst droop by
        // at least 30%.
        let pct: f64 = out
            .split("best-arm worst-droop reduction: ")
            .nth(1)
            .and_then(|rest| rest.split('%').next())
            .expect("reduction line")
            .parse()
            .expect("reduction percentage");
        assert!(pct >= 30.0, "best reduction only {pct}%:\n{out}");
        // Deterministic end to end.
        assert_eq!(out, droop_mitigation(&mut RunCtx::serial()));
    }

    #[test]
    fn fault_coverage_reports_full_detection_stats() {
        let out = fault_coverage(&mut RunCtx::serial());
        assert!(out.contains("XP-FAULT"));
        assert!(out.contains("detection rate"));
        assert!(out.contains("SA0"));
        assert!(out.contains("SA1"));
        // The scaled campaign: ≥1,000 plans, swept 64 per word.
        assert!(out.contains("faults injected: 1016"), "{out}");
        assert!(out.contains("64 plans/word"));
        // The sweep is deterministic, so the rendered table is too.
        assert_eq!(out, fault_coverage(&mut RunCtx::serial()));
    }
}
