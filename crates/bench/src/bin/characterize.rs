//! Dumps the sensor's characterisation datasets as CSV for external
//! plotting — the data behind Figs. 4 and 5, the LS (ground) mirror, the
//! PDN impedance profile, and the per-corner trim table.
//!
//! ```text
//! characterize <out-dir>
//! ```
//!
//! Writes `fig4_sensitivity.csv`, `fig5_characteristic.csv`,
//! `gnd_characteristic.csv`, `impedance.csv` and `trim.csv`.

use std::fmt::Write as _;
use std::path::Path;

use psnt_cells::process::{ProcessCorner, Pvt};
use psnt_cells::units::{Capacitance, Frequency, Temperature, Voltage};
use psnt_core::calibration::{array_characteristic, sensitivity_characteristic, trim_for_corner};
use psnt_core::element::RailMode;
use psnt_core::pulsegen::{DelayCode, PulseGenerator};
use psnt_core::thermometer::ThermometerArray;
use psnt_pdn::impedance::impedance_profile;
use psnt_pdn::rlc::LumpedPdn;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: characterize <out-dir>");
        std::process::exit(2);
    });
    let out = Path::new(&out);
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let pvt = Pvt::typical();
    let pg = PulseGenerator::paper_table();
    let code011 = DelayCode::new(3).expect("static code");

    // Fig. 4: threshold vs load.
    let mut csv = String::from("load_pf,threshold_v\n");
    let loads: Vec<Capacitance> = (20..=400)
        .map(|i| Capacitance::from_ff(i as f64 * 10.0))
        .collect();
    let points = sensitivity_characteristic(
        RailMode::Supply,
        pg.skew(code011, &pvt),
        &pvt,
        loads,
    )
    .expect("thresholds in range");
    for p in points {
        let _ = writeln!(csv, "{},{}", p.load.picofarads(), p.threshold.volts());
    }
    write(out, "fig4_sensitivity.csv", &csv);

    // Fig. 5: per-code thresholds (HS).
    let array = ThermometerArray::paper(RailMode::Supply);
    let mut csv = String::from("delay_code,element,threshold_v\n");
    for code in DelayCode::all() {
        let ch = array_characteristic(&array, &pg, code, &pvt).expect("in range");
        for (i, t) in ch.thresholds.iter().enumerate() {
            let _ = writeln!(csv, "{code},{},{}", i + 1, t.volts());
        }
    }
    write(out, "fig5_characteristic.csv", &csv);

    // Ground mirror (LS).
    let ls = ThermometerArray::paper(RailMode::Ground);
    let mut csv = String::from("delay_code,element,bounce_threshold_v\n");
    for code in DelayCode::all() {
        let ch = array_characteristic(&ls, &pg, code, &pvt).expect("in range");
        for (i, t) in ch.thresholds.iter().enumerate() {
            let _ = writeln!(csv, "{code},{},{}", i + 1, t.volts());
        }
    }
    write(out, "gnd_characteristic.csv", &csv);

    // PDN impedance profile.
    let pdn = LumpedPdn::typical_90nm_package();
    let mut csv = String::from("frequency_hz,impedance_ohm\n");
    for p in impedance_profile(
        &pdn,
        Frequency::from_mhz(1.0),
        Frequency::from_ghz(1.0),
        181,
    ) {
        let _ = writeln!(csv, "{},{}", p.frequency.hertz(), p.magnitude.ohms());
    }
    write(out, "impedance.csv", &csv);

    // Per-corner trim table.
    let mut csv =
        String::from("corner,untrimmed_error_mv,trimmed_code,residual_mv\n");
    for corner in ProcessCorner::ALL {
        let corner_pvt = Pvt::new(corner, Voltage::from_v(1.0), Temperature::from_celsius(25.0));
        let trim = trim_for_corner(&array, &pg, code011, &pvt, &corner_pvt).expect("in range");
        let _ = writeln!(
            csv,
            "{corner},{:.2},{},{:.2}",
            trim.untrimmed_residual.millivolts(),
            trim.code,
            trim.residual.millivolts()
        );
    }
    write(out, "trim.csv", &csv);

    println!("wrote 5 CSV datasets to {}", out.display());
}

fn write(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "  {} ({} rows)",
        path.display(),
        content.lines().count().saturating_sub(1)
    );
}
