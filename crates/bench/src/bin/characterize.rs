//! Dumps the sensor's characterisation datasets as CSV for external
//! plotting — the data behind Figs. 4 and 5, the LS (ground) mirror, the
//! PDN impedance profile, and the per-corner trim table.
//!
//! ```text
//! characterize <out-dir> [--jobs N] [--seed S]
//! ```
//!
//! Writes `fig4_sensitivity.csv`, `fig5_characteristic.csv`,
//! `gnd_characteristic.csv`, `impedance.csv` and `trim.csv`. The
//! per-code characteristics and the per-corner trim table run on the
//! worker pool of one shared [`RunCtx`] (`--jobs N`, default
//! `PSNT_JOBS` else available parallelism); the CSVs are bit-identical
//! at any worker count.

use std::fmt::Write as _;
use std::path::Path;

use psnt_cells::process::{ProcessCorner, Pvt};
use psnt_cells::units::{Capacitance, Frequency, Temperature, Voltage};
use psnt_core::calibration::{array_characteristic, sensitivity_characteristic, trim_for_corner};
use psnt_core::element::RailMode;
use psnt_core::pulsegen::{DelayCode, PulseGenerator};
use psnt_core::thermometer::ThermometerArray;
use psnt_ctx::RunCtx;
use psnt_engine::Engine;
use psnt_obs::{MetricsSnapshot, Observer, RunManifest, Span};
use psnt_pdn::impedance::impedance_profile;
use psnt_pdn::rlc::LumpedPdn;

fn main() {
    let mut out_dir: Option<String> = None;
    let mut engine = Engine::from_env();
    let mut seed = 0u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--jobs" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => engine = Engine::new(n),
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--seed" => match iter.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a non-negative integer argument");
                    std::process::exit(2);
                }
            },
            dir if out_dir.is_none() && !dir.starts_with("--") => out_dir = Some(dir.to_owned()),
            other => {
                eprintln!("unrecognised argument {other:?}");
                eprintln!("usage: characterize <out-dir> [--jobs N] [--seed S]");
                std::process::exit(2);
            }
        }
    }
    let out = out_dir.unwrap_or_else(|| {
        eprintln!("usage: characterize <out-dir> [--jobs N] [--seed S]");
        std::process::exit(2);
    });
    let out = Path::new(&out);
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let pvt = Pvt::typical();
    let pg = PulseGenerator::paper_table();
    let code011 = DelayCode::new(3).expect("static code");

    // In-memory telemetry: per-dataset spans and counters feed the
    // summary footer below.
    let mut obs = Observer::ring(64);
    obs.manifest(
        &RunManifest::new("characterize")
            .delay_codes(3, 3)
            .pvt("Typical")
            .with_git_describe(),
    );
    // The pre-run snapshot the footer diffs the final registry against.
    let baseline = obs.metrics.snapshot();

    // The one context carrying the worker pool, the observer and the
    // seed policy through every dataset.
    let mut ctx = RunCtx::new(engine).with_seed(seed).with_observer(&mut obs);

    // Fig. 4: threshold vs load.
    let span = Span::begin("fig4_sensitivity");
    let mut csv = String::from("load_pf,threshold_v\n");
    let loads: Vec<Capacitance> = (20..=400)
        .map(|i| Capacitance::from_ff(i as f64 * 10.0))
        .collect();
    let points = sensitivity_characteristic(RailMode::Supply, pg.skew(code011, &pvt), &pvt, loads)
        .expect("thresholds in range");
    for p in points {
        let _ = writeln!(csv, "{},{}", p.load.picofarads(), p.threshold.volts());
    }
    write(out, "fig4_sensitivity.csv", &csv, &mut ctx);
    end_span(&mut ctx, span);

    // Fig. 5: per-code thresholds (HS). One engine job per delay code;
    // results come back in code order so the CSV is stable.
    let span = Span::begin("fig5_characteristic");
    let array = ThermometerArray::paper(RailMode::Supply);
    let codes = DelayCode::all();
    let mut csv = String::from("delay_code,element,threshold_v\n");
    let chars = ctx
        .engine()
        .try_map(codes.len(), |i| {
            array_characteristic(&mut RunCtx::serial(), &array, &pg, codes[i], &pvt)
        })
        .expect("in range");
    for (code, ch) in codes.iter().zip(&chars) {
        for (i, t) in ch.thresholds.iter().enumerate() {
            let _ = writeln!(csv, "{code},{},{}", i + 1, t.volts());
        }
    }
    write(out, "fig5_characteristic.csv", &csv, &mut ctx);
    end_span(&mut ctx, span);

    // Ground mirror (LS).
    let span = Span::begin("gnd_characteristic");
    let ls = ThermometerArray::paper(RailMode::Ground);
    let mut csv = String::from("delay_code,element,bounce_threshold_v\n");
    let chars = ctx
        .engine()
        .try_map(codes.len(), |i| {
            array_characteristic(&mut RunCtx::serial(), &ls, &pg, codes[i], &pvt)
        })
        .expect("in range");
    for (code, ch) in codes.iter().zip(&chars) {
        for (i, t) in ch.thresholds.iter().enumerate() {
            let _ = writeln!(csv, "{code},{},{}", i + 1, t.volts());
        }
    }
    write(out, "gnd_characteristic.csv", &csv, &mut ctx);
    end_span(&mut ctx, span);

    // PDN impedance profile.
    let span = Span::begin("impedance");
    let pdn = LumpedPdn::typical_90nm_package();
    let mut csv = String::from("frequency_hz,impedance_ohm\n");
    for p in impedance_profile(
        &pdn,
        Frequency::from_mhz(1.0),
        Frequency::from_ghz(1.0),
        181,
    ) {
        let _ = writeln!(csv, "{},{}", p.frequency.hertz(), p.magnitude.ohms());
    }
    write(out, "impedance.csv", &csv, &mut ctx);
    end_span(&mut ctx, span);

    // Per-corner trim table: one engine job per process corner.
    let span = Span::begin("trim");
    let mut csv = String::from("corner,untrimmed_error_mv,trimmed_code,residual_mv\n");
    let corners = ProcessCorner::ALL;
    let trims = ctx
        .engine()
        .try_map(corners.len(), |i| {
            let corner_pvt = Pvt::new(
                corners[i],
                Voltage::from_v(1.0),
                Temperature::from_celsius(25.0),
            );
            trim_for_corner(
                &mut RunCtx::serial(),
                &array,
                &pg,
                code011,
                &pvt,
                &corner_pvt,
            )
        })
        .expect("in range");
    for (corner, trim) in corners.iter().zip(&trims) {
        let _ = writeln!(
            csv,
            "{corner},{:.2},{},{:.2}",
            trim.untrimmed_residual.millivolts(),
            trim.code,
            trim.residual.millivolts()
        );
    }
    write(out, "trim.csv", &csv, &mut ctx);
    end_span(&mut ctx, span);

    println!("wrote 5 CSV datasets to {}", out.display());
    ctx.observer().expect("observer attached").finish();
    drop(ctx);
    print!("{}", telemetry_footer(&obs, &baseline));
}

/// The summary footer: totals from the registry, per-dataset wall
/// times from the span histograms, and the metrics delta over the run
/// — every counter, gauge and histogram the run touched, rendered by
/// [`psnt_obs::MetricsDiff`]'s table (degradation counters such as
/// `encoder.bubbles_corrected` or `campaign.sites_degraded` surface
/// here automatically when nonzero).
fn telemetry_footer(obs: &Observer, baseline: &MetricsSnapshot) -> String {
    let mut s = format!(
        "telemetry: {} datasets, {} rows\n",
        obs.metrics.counter_value("characterize.datasets"),
        obs.metrics.counter_value("characterize.rows"),
    );
    for name in [
        "fig4_sensitivity",
        "fig5_characteristic",
        "gnd_characteristic",
        "impedance",
        "trim",
    ] {
        if let Some(h) = obs.metrics.histogram_value(&format!("span.{name}_us")) {
            let _ = writeln!(s, "  span {name}: {:.0} µs", h.sum());
        }
    }
    let _ = writeln!(s, "metrics delta over the run:");
    let _ = write!(s, "{}", obs.metrics.snapshot().diff(baseline));
    s
}

fn end_span(ctx: &mut RunCtx<'_>, span: Span) {
    ctx.observer().expect("observer attached").end_span(span);
}

fn write(dir: &Path, name: &str, content: &str, ctx: &mut RunCtx<'_>) {
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let rows = content.lines().count().saturating_sub(1);
    let obs = ctx.observer().expect("observer attached");
    obs.metrics.counter_add("characterize.datasets", 1);
    obs.metrics.counter_add("characterize.rows", rows as u64);
    println!("  {} ({rows} rows)", path.display());
}
