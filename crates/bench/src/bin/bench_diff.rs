//! Compares two `BENCH_*.json` snapshots and fails on perf
//! regressions — the CI perf gate.
//!
//! ```text
//! bench-diff <baseline.json> <current.json> [--threshold <pct>[%]]
//! ```
//!
//! Prints the full regression table (before / after / delta per
//! bench), then exits:
//!
//! * `0` — no bench slowed down past the threshold (default 25%);
//! * `1` — at least one bench regressed past the threshold;
//! * `2` — a snapshot could not be read or parsed, or bad usage.

use psnt_bench::diff::{BenchDiff, BenchSnapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut threshold_pct = 25.0f64;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--threshold" => {
                let parsed = iter
                    .next()
                    .and_then(|t| t.trim_end_matches('%').parse::<f64>().ok());
                match parsed {
                    Some(t) if t >= 0.0 => threshold_pct = t,
                    _ => {
                        eprintln!("--threshold needs a non-negative percentage (e.g. 25%)");
                        std::process::exit(2);
                    }
                }
            }
            other if !other.starts_with("--") => files.push(other.to_owned()),
            other => {
                eprintln!("unrecognised argument {other:?}");
                eprintln!("usage: bench-diff <baseline.json> <current.json> [--threshold <pct>%]");
                std::process::exit(2);
            }
        }
    }
    let [before_path, after_path] = files.as_slice() else {
        eprintln!("usage: bench-diff <baseline.json> <current.json> [--threshold <pct>%]");
        std::process::exit(2);
    };

    let load = |path: &str| -> BenchSnapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        BenchSnapshot::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let before = load(before_path);
    let after = load(after_path);

    let diff = BenchDiff::between(&before, &after, threshold_pct);
    print!("{diff}");
    let regressions = diff.regressions();
    if regressions.is_empty() {
        println!("no regressions past {threshold_pct}%");
    } else {
        println!(
            "{} bench(es) regressed past {threshold_pct}%",
            regressions.len()
        );
        std::process::exit(1);
    }
}
