//! Prints the reproduction of every figure/table in the paper (or a
//! selected subset).
//!
//! ```text
//! repro [--<id> ...] [--xp <id> ...] [--jobs N] [--seed S] [--fault-plan <file.json>]
//!       [--checkpoint <path>] [--checkpoint-every N] [--resume <path>]
//!       [--out <dir>] [--telemetry <path.jsonl>] [--trace <path.json>] [--list]
//! ```
//!
//! * `--<id>` — run one experiment (e.g. `--fig5 --tab1`); no ids runs
//!   everything;
//! * `--xp <id>` — the same selection by explicit flag (e.g.
//!   `--xp fault-coverage`), for ids that read awkwardly as flags;
//!   `scan-chain` is accepted as an alias for `scan`;
//! * `--fault-plan <file.json>` — install a `psnt_fault::FaultPlan`
//!   (JSON) on the context; fault-aware experiments then run degraded;
//! * `--jobs N` — worker threads for the engine-parallel experiments
//!   (default: `PSNT_JOBS`, else the machine's available parallelism).
//!   Reports are bit-identical at any `N`;
//! * `--seed S` — base seed of the context's SplitMix64 seed policy
//!   (experiments that pin a published seed keep it regardless);
//! * `--checkpoint <path>` / `--checkpoint-every N` / `--resume <path>`
//!   — supervised checkpoint/resume for the long-running workload
//!   experiments (`--noc-campaign` or `--droop-mitigation`, exactly
//!   one of which must be selected): snapshots are written to `<path>`
//!   atomically every `N` cycles and again the moment a cooperative
//!   interrupt (cancellation, deadline, budget, or a harness
//!   `CancelAt`/`DeadlineTrip` fault) trips; an interrupted run prints
//!   a notice and exits with status 3; `--resume <path>` continues it,
//!   and the resumed report is bit-identical, record for record, to an
//!   uninterrupted one;
//! * `--out <dir>` — additionally write each report to `<dir>/<id>.txt`;
//! * `--telemetry <path>` — write a JSON-Lines telemetry stream: a run
//!   manifest, structured events from the observer-aware experiments,
//!   one span per experiment, and a final metrics snapshot;
//! * `--trace <path>` — export the run's span tree (experiment →
//!   campaign → site → measure, with wall-clock and sim-time
//!   intervals) as a Chrome trace-event JSON file loadable in
//!   Perfetto / `chrome://tracing`, plus `<path>.folded` in
//!   folded-stack format for flamegraph tooling. Works with or
//!   without `--telemetry`;
//! * `--list` — print the known ids with one-line descriptions and
//!   exit.
//!
//! All three execution axes meet in a single [`RunCtx`] built from the
//! flags; every experiment runner receives it.

use std::path::PathBuf;

use psnt_ctx::RunCtx;
use psnt_engine::Engine;
use psnt_obs::{Observer, RunManifest};

/// Folds the accepted spellings of an experiment id onto the
/// registry's canonical one.
fn canonical_id(id: &str) -> &str {
    match id {
        "scan-chain" | "scan_chain" | "xp_scan_chain" => "scan",
        "noc" | "noc_campaign" | "xp_noc_campaign" => "noc-campaign",
        "droop" | "droop_mitigation" | "xp_droop" | "mitigation" => "droop-mitigation",
        other => other,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut telemetry: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut engine = Engine::from_env();
    let mut seed = 0u64;
    let mut fault_plan: Option<psnt_fault::FaultPlan> = None;
    let mut ckpt = psnt_bench::CheckpointOptions::none();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--list" => {
                let width = psnt_bench::all_experiments()
                    .iter()
                    .map(|(id, _, _)| id.len())
                    .max()
                    .unwrap_or(0);
                for (id, desc, _) in psnt_bench::all_experiments() {
                    println!("--{id:<width$}  {desc}");
                }
                return;
            }
            "--jobs" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => engine = Engine::new(n),
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--seed" => match iter.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a non-negative integer argument");
                    std::process::exit(2);
                }
            },
            "--xp" => match iter.next() {
                Some(id) => wanted.push(canonical_id(id.trim_start_matches("--")).to_owned()),
                None => {
                    eprintln!("--xp needs an experiment id argument (see --list)");
                    std::process::exit(2);
                }
            },
            "--fault-plan" => match iter.next() {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(json) => match psnt_fault::FaultPlan::from_json(&json) {
                        Ok(plan) => fault_plan = Some(plan),
                        Err(e) => {
                            eprintln!("invalid fault plan {path}: {e}");
                            std::process::exit(2);
                        }
                    },
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("--fault-plan needs a JSON file argument");
                    std::process::exit(2);
                }
            },
            "--checkpoint" => match iter.next() {
                Some(path) => ckpt.checkpoint = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--checkpoint needs a file argument");
                    std::process::exit(2);
                }
            },
            "--checkpoint-every" => match iter.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => ckpt.every = Some(n),
                _ => {
                    eprintln!("--checkpoint-every needs a positive cycle count");
                    std::process::exit(2);
                }
            },
            "--resume" => match iter.next() {
                Some(path) => ckpt.resume = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--resume needs a checkpoint file argument");
                    std::process::exit(2);
                }
            },
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--telemetry" => match iter.next() {
                Some(path) => telemetry = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--telemetry needs a file argument");
                    std::process::exit(2);
                }
            },
            "--trace" => match iter.next() {
                Some(path) => trace = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace needs a file argument");
                    std::process::exit(2);
                }
            },
            other => match other.strip_prefix("--") {
                Some(id) => wanted.push(canonical_id(id).to_owned()),
                None => {
                    eprintln!("unrecognised argument {other:?} (ids start with --)");
                    std::process::exit(2);
                }
            },
        }
    }

    if ckpt.is_active()
        && !(wanted.len() == 1 && matches!(wanted[0].as_str(), "noc-campaign" | "droop-mitigation"))
    {
        eprintln!(
            "--checkpoint/--checkpoint-every/--resume apply to exactly one selected \
             experiment, either --noc-campaign or --droop-mitigation"
        );
        std::process::exit(2);
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    // `--telemetry` streams records to a file; `--trace` alone still
    // needs an observer to build the span tree, so it gets one with a
    // null sink (spans and metrics are recorded, nothing is streamed).
    let mut observer = match (&telemetry, &trace) {
        (None, None) => None,
        (path, _) => {
            let mut obs = match path {
                Some(path) => match Observer::jsonl(path) {
                    Ok(obs) => obs,
                    Err(e) => {
                        eprintln!("cannot open {}: {e}", path.display());
                        std::process::exit(1);
                    }
                },
                None => Observer::null(),
            };
            let experiment = if wanted.is_empty() {
                "all".to_string()
            } else {
                wanted.join("+")
            };
            // Every experiment runs the paper's delay code 011 at
            // the typical corner unless it sweeps those itself.
            obs.manifest(
                &RunManifest::new(experiment)
                    .delay_codes(3, 3)
                    .pvt("Typical")
                    .with_git_describe(),
            );
            Some(obs)
        }
    };

    // The one context every experiment receives.
    let mut ctx = RunCtx::new(engine)
        .with_seed(seed)
        .with_observer_opt(observer.as_mut());
    ctx.set_fault_plan(fault_plan);

    let mut matched = false;
    let mut exit_code = 0;
    for (id, _desc, run) in psnt_bench::all_experiments() {
        if wanted.is_empty() || wanted.iter().any(|w| w == id) {
            matched = true;
            // A stack-parented span per experiment: everything the
            // runner traces (campaign, grid solve, sites) nests
            // underneath it in the exported tree.
            let span = ctx.observer().map(|o| o.begin_span(id));
            // The two chip-scale workload experiments honour the
            // checkpoint flags through their supervised entry points;
            // everything else runs through the registry unchanged.
            let report = if ckpt.is_active() {
                let outcome = match id {
                    "noc-campaign" => {
                        psnt_bench::checkpointed::noc_campaign_checkpointed(&mut ctx, &ckpt)
                    }
                    _ => psnt_bench::checkpointed::droop_mitigation_checkpointed(&mut ctx, &ckpt),
                };
                match outcome {
                    Ok(run) => {
                        if run.interrupted {
                            exit_code = 3;
                        }
                        run.report
                    }
                    Err(e) => {
                        eprintln!("{id}: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                run(&mut ctx)
            };
            if let (Some(obs), Some(span)) = (ctx.observer(), span) {
                obs.end_span(span);
            }
            println!("{report}");
            if let Some(dir) = &out_dir {
                let path = dir.join(format!("{id}.txt"));
                if let Err(e) = std::fs::write(&path, &report) {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
    if let Some(obs) = ctx.observer() {
        obs.finish();
        if let Some(path) = &trace {
            if let Err(e) = std::fs::write(path, obs.chrome_trace_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            let mut folded = path.clone().into_os_string();
            folded.push(".folded");
            let folded = PathBuf::from(folded);
            if let Err(e) = std::fs::write(&folded, obs.folded_stacks()) {
                eprintln!("cannot write {}: {e}", folded.display());
                std::process::exit(1);
            }
        }
    }
    if !matched {
        eprintln!("no experiment matched; known ids:");
        for (id, _, _) in psnt_bench::all_experiments() {
            eprintln!("  --{id}");
        }
        std::process::exit(2);
    }
    if exit_code != 0 {
        // An experiment was interrupted (notice printed above, spans
        // and telemetry already flushed); status 3 distinguishes the
        // cooperative stop from hard failures.
        std::process::exit(exit_code);
    }
}
