//! Prints the reproduction of every figure/table in the paper (or a
//! selected subset).
//!
//! ```text
//! repro [--<id> ...] [--xp <id> ...] [--jobs N] [--seed S] [--fault-plan <file.json>]
//!       [--out <dir>] [--telemetry <path.jsonl>] [--list]
//! ```
//!
//! * `--<id>` — run one experiment (e.g. `--fig5 --tab1`); no ids runs
//!   everything;
//! * `--xp <id>` — the same selection by explicit flag (e.g.
//!   `--xp fault-coverage`), for ids that read awkwardly as flags;
//! * `--fault-plan <file.json>` — install a `psnt_fault::FaultPlan`
//!   (JSON) on the context; fault-aware experiments then run degraded;
//! * `--jobs N` — worker threads for the engine-parallel experiments
//!   (default: `PSNT_JOBS`, else the machine's available parallelism).
//!   Reports are bit-identical at any `N`;
//! * `--seed S` — base seed of the context's SplitMix64 seed policy
//!   (experiments that pin a published seed keep it regardless);
//! * `--out <dir>` — additionally write each report to `<dir>/<id>.txt`;
//! * `--telemetry <path>` — write a JSON-Lines telemetry stream: a run
//!   manifest, structured events from the observer-aware experiments,
//!   one span per experiment, and a final metrics snapshot;
//! * `--list` — print the known ids with one-line descriptions and
//!   exit.
//!
//! All three execution axes meet in a single [`RunCtx`] built from the
//! flags; every experiment runner receives it.

use std::path::PathBuf;

use psnt_ctx::RunCtx;
use psnt_engine::Engine;
use psnt_obs::{Observer, RunManifest, Span};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut telemetry: Option<PathBuf> = None;
    let mut engine = Engine::from_env();
    let mut seed = 0u64;
    let mut fault_plan: Option<psnt_fault::FaultPlan> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--list" => {
                let width = psnt_bench::all_experiments()
                    .iter()
                    .map(|(id, _, _)| id.len())
                    .max()
                    .unwrap_or(0);
                for (id, desc, _) in psnt_bench::all_experiments() {
                    println!("--{id:<width$}  {desc}");
                }
                return;
            }
            "--jobs" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => engine = Engine::new(n),
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--seed" => match iter.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a non-negative integer argument");
                    std::process::exit(2);
                }
            },
            "--xp" => match iter.next() {
                Some(id) => wanted.push(id.trim_start_matches("--").to_owned()),
                None => {
                    eprintln!("--xp needs an experiment id argument (see --list)");
                    std::process::exit(2);
                }
            },
            "--fault-plan" => match iter.next() {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(json) => match psnt_fault::FaultPlan::from_json(&json) {
                        Ok(plan) => fault_plan = Some(plan),
                        Err(e) => {
                            eprintln!("invalid fault plan {path}: {e}");
                            std::process::exit(2);
                        }
                    },
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("--fault-plan needs a JSON file argument");
                    std::process::exit(2);
                }
            },
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--telemetry" => match iter.next() {
                Some(path) => telemetry = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--telemetry needs a file argument");
                    std::process::exit(2);
                }
            },
            other => match other.strip_prefix("--") {
                Some(id) => wanted.push(id.to_owned()),
                None => {
                    eprintln!("unrecognised argument {other:?} (ids start with --)");
                    std::process::exit(2);
                }
            },
        }
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let mut observer = match &telemetry {
        None => None,
        Some(path) => match Observer::jsonl(path) {
            Ok(mut obs) => {
                let experiment = if wanted.is_empty() {
                    "all".to_string()
                } else {
                    wanted.join("+")
                };
                // Every experiment runs the paper's delay code 011 at
                // the typical corner unless it sweeps those itself.
                obs.manifest(
                    &RunManifest::new(experiment)
                        .delay_codes(3, 3)
                        .pvt("Typical")
                        .with_git_describe(),
                );
                Some(obs)
            }
            Err(e) => {
                eprintln!("cannot open {}: {e}", path.display());
                std::process::exit(1);
            }
        },
    };

    // The one context every experiment receives.
    let mut ctx = RunCtx::new(engine)
        .with_seed(seed)
        .with_observer_opt(observer.as_mut());
    ctx.set_fault_plan(fault_plan);

    let mut matched = false;
    for (id, _desc, run) in psnt_bench::all_experiments() {
        if wanted.is_empty() || wanted.iter().any(|w| w == id) {
            matched = true;
            let span = ctx.has_observer().then(|| Span::begin(id));
            let report = run(&mut ctx);
            if let (Some(obs), Some(span)) = (ctx.observer(), span) {
                obs.end_span(span);
            }
            println!("{report}");
            if let Some(dir) = &out_dir {
                let path = dir.join(format!("{id}.txt"));
                if let Err(e) = std::fs::write(&path, &report) {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
    if let Some(obs) = ctx.observer() {
        obs.finish();
    }
    if !matched {
        eprintln!("no experiment matched; known ids:");
        for (id, _, _) in psnt_bench::all_experiments() {
            eprintln!("  --{id}");
        }
        std::process::exit(2);
    }
}
