//! Prints the reproduction of every figure/table in the paper (or a
//! selected subset).
//!
//! ```text
//! repro [--<id> ...] [--out <dir>] [--list]
//! ```
//!
//! * `--<id>` — run one experiment (e.g. `--fig5 --tab1`); no ids runs
//!   everything;
//! * `--out <dir>` — additionally write each report to `<dir>/<id>.txt`;
//! * `--list` — print the known ids and exit.

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--list" => {
                for (id, _) in psnt_bench::all_experiments() {
                    println!("--{id}");
                }
                return;
            }
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                }
            },
            other => match other.strip_prefix("--") {
                Some(id) => wanted.push(id.to_owned()),
                None => {
                    eprintln!("unrecognised argument {other:?} (ids start with --)");
                    std::process::exit(2);
                }
            },
        }
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let mut matched = false;
    for (id, run) in psnt_bench::all_experiments() {
        if wanted.is_empty() || wanted.iter().any(|w| w == id) {
            matched = true;
            let report = run();
            println!("{report}");
            if let Some(dir) = &out_dir {
                let path = dir.join(format!("{id}.txt"));
                if let Err(e) = std::fs::write(&path, &report) {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
    if !matched {
        eprintln!("no experiment matched; known ids:");
        for (id, _) in psnt_bench::all_experiments() {
            eprintln!("  --{id}");
        }
        std::process::exit(2);
    }
}
