//! # psnt-bench — reproduction harness
//!
//! One function per paper figure/table ([`figures`]) and per design
//! ablation ([`ablations`]). The `repro` binary prints them; the
//! Criterion benches in `benches/` time them. See `EXPERIMENTS.md` at
//! the workspace root for measured-vs-published values.

#![warn(missing_docs)]

pub mod ablations;
pub mod figures;

/// An experiment entry: a stable id and the function that renders it.
pub type Experiment = (&'static str, fn() -> String);

/// An experiment that can route telemetry through a
/// [`psnt_obs::Observer`] while it renders.
pub type ObservedExperiment = (&'static str, fn(Option<&mut psnt_obs::Observer>) -> String);

/// An experiment whose heavy loop runs on a [`psnt_engine::Engine`]
/// worker pool (and can also route telemetry). The rendered report is
/// bit-identical at any worker count — parallelism changes wall-clock
/// time, never results.
pub type EngineExperiment = (
    &'static str,
    fn(&psnt_engine::Engine, Option<&mut psnt_obs::Observer>) -> String,
);

/// The experiments with observer-aware variants, keyed by the same ids
/// as [`all_experiments`]. `repro --telemetry` routes these through the
/// shared observer; the rest run unobserved (span timing only).
pub fn observed_experiments() -> Vec<ObservedExperiment> {
    vec![
        (
            "fig6",
            figures::fig6_observed as fn(Option<&mut psnt_obs::Observer>) -> String,
        ),
        ("fig9", figures::fig9_observed),
        ("scan", figures::scan_observed),
    ]
}

/// The experiments with engine-parallel variants, keyed by the same
/// ids as [`all_experiments`]. `repro --jobs N` routes these through a
/// shared worker pool; ids present here and in
/// [`observed_experiments`] prefer this variant (it accepts the
/// observer too).
pub fn engine_experiments() -> Vec<EngineExperiment> {
    vec![
        (
            "scan",
            figures::scan_on as fn(&psnt_engine::Engine, Option<&mut psnt_obs::Observer>) -> String,
        ),
        ("pv", |engine, _| figures::pv_on(engine)),
        ("mismatch", |engine, _| ablations::mismatch_on(engine)),
    ]
}

/// Every experiment as `(id, runner)`, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig2", figures::fig2 as fn() -> String),
        ("fig3", figures::fig3),
        ("fig4", figures::fig4),
        ("fig5", figures::fig5),
        ("tab1", figures::tab1),
        ("fig6", figures::fig6),
        ("fig8", figures::fig8),
        ("fig9", figures::fig9),
        ("gnd", figures::gnd),
        ("pv", figures::pv),
        ("baseline", figures::baseline),
        ("scan", figures::scan),
        ("gate-level", figures::gate_level),
        ("overhead", figures::overhead),
        ("delay-model", ablations::delay_model),
        ("ladder", ablations::ladder),
        ("encoding", ablations::encoding),
        ("sampling", ablations::sampling),
        ("mismatch", ablations::mismatch),
        ("impedance", ablations::impedance),
        ("temperature", ablations::temperature),
        ("code-density", ablations::code_density),
        ("oversampling", ablations::oversampling),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_experiments_run_and_render() {
        for (id, run) in super::all_experiments() {
            let out = run();
            assert!(!out.is_empty(), "{id} produced no output");
            assert!(out.contains("=="), "{id} missing a table title");
        }
    }
}
