//! # psnt-bench — reproduction harness
//!
//! One function per paper figure/table ([`figures`]) and per design
//! ablation ([`ablations`]). The `repro` binary prints them; the
//! Criterion benches in `benches/` time them. See `EXPERIMENTS.md` at
//! the workspace root for measured-vs-published values.
//!
//! Every experiment runner takes the session's
//! [`RunCtx`](psnt_ctx::RunCtx) — one context carries the parallel
//! engine, the optional telemetry observer, the reusable-simulator
//! pool and the seed policy. The rendered reports are bit-identical at
//! any worker count; parallelism changes wall-clock time, never
//! results.

#![warn(missing_docs)]

pub mod ablations;
pub mod checkpointed;
pub mod diff;
pub mod figures;

pub use checkpointed::{CheckpointOptions, CheckpointedRun};

/// An experiment registry row: stable id, one-line description, and
/// the ctx-taking runner (re-exported from [`figures`]).
pub type Experiment = figures::Experiment;

/// Every experiment as `(id, description, runner)`, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    figures::registry()
}

#[cfg(test)]
mod tests {
    use psnt_ctx::RunCtx;

    #[test]
    fn all_experiments_run_and_render() {
        let mut ctx = RunCtx::serial();
        for (id, _desc, run) in super::all_experiments() {
            let out = run(&mut ctx);
            assert!(!out.is_empty(), "{id} produced no output");
            assert!(out.contains("=="), "{id} missing a table title");
        }
    }
}
