//! Ablation experiments for the design choices called out in
//! `DESIGN.md` §5.

use psnt_analysis::adc_metrics::linearity;
use psnt_analysis::report::{fmt_v, Table};
use psnt_cells::delay::{DelayModel, TableDelay};
use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Time, Voltage};
use psnt_core::element::RailMode;
use psnt_core::encoder::{Encoder, EncodingPolicy};
use psnt_core::pulsegen::{DelayCode, PulseGenerator};
use psnt_core::thermometer::{CapacitorLadder, ThermometerArray};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn skew011() -> Time {
    PulseGenerator::paper_table().skew(DelayCode::new(3).expect("static"), &Pvt::typical())
}

/// Ablation 1 — analytic alpha-power model vs an NLDM lookup table
/// characterised from it: threshold agreement across the ladder.
pub fn delay_model() -> String {
    let pvt = Pvt::typical();
    let analytic = psnt_cells::delay::AlphaPowerDelay::paper_sense_inverter();
    let voltages: Vec<Voltage> = (0..=30)
        .map(|i| Voltage::from_v(0.70 + 0.02 * i as f64))
        .collect();
    let loads: Vec<Capacitance> = (0..=20)
        .map(|i| Capacitance::from_pf(1.5 + 0.05 * i as f64))
        .collect();
    let table = TableDelay::characterize(&analytic, voltages, loads, &pvt).expect("valid axes");

    let mut t = Table::new(
        "XP-DELAY-MODEL — analytic alpha-power vs NLDM table",
        &[
            "C [pF]",
            "analytic delay @0.95 V",
            "table delay @0.95 V",
            "rel. err",
        ],
    );
    let mut worst: f64 = 0.0;
    for pf in [1.75, 1.95, 2.05, 2.15, 2.24] {
        let c = Capacitance::from_pf(pf);
        let v = Voltage::from_v(0.95);
        let a = analytic.propagation_delay(v, c, &pvt).picoseconds();
        let b = table.propagation_delay(v, c, &pvt).picoseconds();
        let rel = ((a - b) / a).abs();
        worst = worst.max(rel);
        t.row([
            format!("{pf:.2}"),
            format!("{a:.2} ps"),
            format!("{b:.2} ps"),
            format!("{:.4}%", rel * 100.0),
        ]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "worst interpolation error {:.4}% — either model supports the calibration\n",
        worst * 100.0
    ));
    s
}

/// Ablation 2 — capacitor-ladder design: the paper's calibrated ladder
/// vs a uniform-capacitance ladder, scored with ADC linearity metrics.
pub fn ladder() -> String {
    let pvt = Pvt::typical();
    let sk = skew011();
    let designs = [
        ("paper Fig. 5", CapacitorLadder::paper_fig5()),
        (
            "linear caps",
            CapacitorLadder::linear(Capacitance::from_pf(1.75), Capacitance::from_ff(81.0), 7)
                .expect("valid ladder"),
        ),
    ];
    let mut t = Table::new(
        "XP-LADDER — ladder design vs linearity and range",
        &["design", "range", "LSB", "max |DNL|", "max |INL|"],
    );
    for (name, ladder) in designs {
        let array = ThermometerArray::new(&ladder, RailMode::Supply);
        let th = array.thresholds(sk, &pvt).expect("in range");
        let rep = linearity(&th);
        t.row([
            name.to_string(),
            format!(
                "{} – {}",
                fmt_v(th.first().expect("non-empty").volts()),
                fmt_v(th.last().expect("non-empty").volts())
            ),
            format!("{:.1} mV", rep.lsb.millivolts()),
            format!("{:.2} LSB", rep.max_dnl()),
            format!("{:.2} LSB", rep.max_inl()),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "the paper's ladder deliberately widens the bottom step (DNL ≈ 0.8 LSB) to stretch the\n\
         range down to 0.827 V; a uniform ladder is near-uniform in thresholds over this narrow\n\
         span (the V(C) curvature only matters across wider ranges — see the Fig. 4 sweep).\n",
    );
    s
}

/// Ablation 3 — encoder bubble policy under stochastic metastability:
/// error magnitude of Truncate vs BubbleCorrect at a code boundary.
pub fn encoding() -> String {
    let pvt = Pvt::typical();
    let sk = skew011();
    let array = ThermometerArray::paper(RailMode::Supply);
    let th = array.thresholds(sk, &pvt).expect("in range");
    let enc_trunc = Encoder::new(7, EncodingPolicy::Truncate).expect("valid");
    let enc_fix = Encoder::new(7, EncodingPolicy::BubbleCorrect).expect("valid");
    let mut rng = StdRng::seed_from_u64(2024);

    let mut t = Table::new(
        "XP-ENCODING — bubble policy at a threshold boundary (1000 stochastic measures)",
        &[
            "true level",
            "policy",
            "mean |level err|",
            "worst |level err|",
            "bubbles",
        ],
    );
    for boundary in [2usize, 4] {
        // Sit exactly on threshold `boundary`: true level ≈ 7 − boundary − 0.5.
        let v = th[boundary];
        let true_level = (7 - boundary) as f64 - 0.5;
        let mut sum = [0.0f64; 2];
        let mut worst = [0.0f64; 2];
        let mut bubbles = 0usize;
        for _ in 0..1000 {
            let code = array.measure_with_rng(v, sk, &pvt, &mut rng);
            if !code.is_canonical() {
                bubbles += 1;
            }
            for (k, enc) in [&enc_trunc, &enc_fix].into_iter().enumerate() {
                let err = (enc.encode(&code).level as f64 - true_level).abs();
                sum[k] += err;
                worst[k] = worst[k].max(err);
            }
        }
        for (k, name) in ["Truncate", "BubbleCorrect"].into_iter().enumerate() {
            t.row([
                format!("{true_level:.1}"),
                name.to_string(),
                format!("{:.2}", sum[k] / 1000.0),
                format!("{:.1}", worst[k]),
                if k == 0 {
                    bubbles.to_string()
                } else {
                    "〃".into()
                },
            ]);
        }
    }
    t.render()
}

/// Ablation 4 — sampling strategy for periodic noise: synchronous
/// sampling (aliased) vs the equivalent-time phase sweep.
pub fn sampling() -> String {
    use psnt_cells::units::Frequency;
    use psnt_core::system::{SensorConfig, SensorSystem};
    use psnt_pdn::sources::SupplyNoiseBuilder;
    use psnt_pdn::waveform::Waveform;
    use psnt_scan::sampler::EquivalentTimeSampler;

    let system = SensorSystem::new(SensorConfig::default()).expect("default");
    let f = Frequency::from_mhz(50.0);
    let period = Time::period_of(f);
    let amp_mv = 35.0;
    let vdd = SupplyNoiseBuilder::new(Voltage::from_v(0.94))
        .span(Time::ZERO, Time::from_us(10.0))
        .resolution(Time::from_ps(250.0))
        .resonance(f, Voltage::from_mv(amp_mv), 0.0)
        .build()
        .expect("valid noise");
    let gnd = Waveform::constant(0.0);

    // Synchronous: stride = exactly one noise period → always the same
    // phase → the reconstruction collapses to one point.
    let mut sync_samples = Vec::new();
    for k in 0..400u64 {
        let at = Time::from_ns(100.0) + period * k as f64;
        let m = system.measure_at(&vdd, &gnd, at).expect("in range");
        if let Some(v) = m.hs_interval.midpoint() {
            sync_samples.push(v.millivolts());
        }
    }
    let sync_p2p = sync_samples
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - sync_samples.iter().fold(f64::INFINITY, |a, &b| a.min(b));

    // Equivalent-time sweep.
    let sampler = EquivalentTimeSampler::new(period, 20).expect("valid");
    let recon = sampler
        .capture_periodic(&system, &vdd, &gnd, Time::from_ns(100.0), 400)
        .expect("capture");
    let et_p2p = recon.peak_to_peak().map_or(0.0, |v| v.millivolts());

    let mut t = Table::new(
        "XP-SAMPLING — synchronous vs equivalent-time capture of a 50 MHz resonance",
        &["strategy", "samples", "observed p2p", "true p2p"],
    );
    t.row([
        "synchronous (stride = 1 period)".to_string(),
        "400".into(),
        format!("{sync_p2p:.0} mV"),
        format!("{:.0} mV", 2.0 * amp_mv),
    ]);
    t.row([
        "equivalent-time (stride = period + period/20)".to_string(),
        "400".into(),
        format!("{et_p2p:.0} mV"),
        format!("{:.0} mV", 2.0 * amp_mv),
    ]);
    let mut s = t.render();
    s.push_str(
        "synchronous sampling aliases the resonance to a point; the phase sweep recovers it.\n",
    );
    s
}

/// Ablation 5 — local mismatch Monte-Carlo: thermometer-property yield
/// vs within-die variation sigma. The trials run on the context's
/// engine; per-trial seed-split RNG streams keep the table
/// bit-identical at any worker count. The published table is pinned to
/// seed 2024, so the sweep runs on its own seeded child context
/// regardless of the session seed.
pub fn mismatch(ctx: &mut psnt_ctx::RunCtx<'_>) -> String {
    use psnt_core::mismatch::{monte_carlo_yield, MismatchModel};
    let mut mc = psnt_ctx::RunCtx::new(ctx.engine().clone()).with_seed(2024);
    let array = ThermometerArray::paper(RailMode::Supply);
    let base = MismatchModel::local_90nm();
    let mut t = Table::new(
        "XP-MISMATCH — thermometer yield under local variation (200 arrays/point)",
        &[
            "sigma scale",
            "drive σ",
            "Vth σ",
            "monotone yield",
            "mean |ΔV_th|",
            "worst |ΔV_th|",
        ],
    );
    for k in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let model = base.scaled(k);
        let report = monte_carlo_yield(&mut mc, &array, skew011(), &Pvt::typical(), &model, 200)
            .expect("thresholds in range");
        t.row([
            format!("{k:.2}×"),
            format!("{:.1}%", model.sigma_drive * 100.0),
            format!("{:.1} mV", model.sigma_vth.millivolts()),
            format!("{:.1}%", report.yield_fraction() * 100.0),
            format!("{:.1} mV", report.mean_abs_shift * 1e3),
            format!("{:.1} mV", report.worst_shift * 1e3),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "the ~30 mV element spacing tolerates sub-1% matching; at realistic 90 nm local sigma\n\
         a fraction of arrays needs the per-element fine tuning the paper alludes to.\n",
    );
    s
}

/// Ablation 6 — PDN impedance profile vs time-domain worst droop: the
/// workload frequency that hurts most is the |Z(f)| peak.
pub fn impedance(ctx: &mut psnt_ctx::RunCtx<'_>) -> String {
    use psnt_cells::units::{Current, Frequency};
    use psnt_pdn::impedance::{impedance_magnitude, impedance_peak};
    use psnt_pdn::rlc::LumpedPdn;
    use psnt_pdn::workload::WorkloadBuilder;

    let pdn = LumpedPdn::typical_90nm_package();
    let (f_peak, z_peak) =
        impedance_peak(&pdn, Frequency::from_mhz(5.0), Frequency::from_mhz(500.0));
    let mut t = Table::new(
        "XP-IMPEDANCE — |Z(f)| vs worst rail droop under a swept periodic workload",
        &["loop freq", "|Z(f)|", "min VDD (transient)"],
    );
    let f_res = pdn.resonance_frequency().hertz();
    for mult in [0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0] {
        let f = Frequency::from_hz(f_res * mult);
        let period = psnt_cells::units::Time::period_of(f);
        let end = period * 40.0;
        let load = WorkloadBuilder::new(Current::from_a(0.4))
            .span(psnt_cells::units::Time::ZERO, end)
            .resolution(period / 24.0)
            .periodic(f, 0.5, Current::from_a(1.6))
            .build()
            .expect("valid workload");
        // The integrator needs to resolve the *tank* period even when the
        // workload is slower.
        let dt = (period / 40.0)
            .min(psnt_cells::units::Time::period_of(pdn.resonance_frequency()) / 40.0);
        let v = pdn.transient(ctx, &load, dt, end).expect("valid transient");
        // Steady-state portion only.
        let min_v = v.min_over(end - period * 10.0, end);
        t.row([
            format!("{:.1} MHz", f.hertz() / 1e6),
            format!("{:.1} mΩ", impedance_magnitude(&pdn, f).ohms() * 1e3),
            format!("{min_v:.3} V"),
        ]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "analytic peak: {:.1} mΩ at {:.1} MHz (tank resonance {:.1} MHz) — the droop minimum\n\
         tracks the impedance peak, which is why the resonant-loop workloads are worst-case.\n",
        z_peak.ohms() * 1e3,
        f_peak.hertz() / 1e6,
        f_res / 1e6,
    ));
    s
}

/// Ablation 7 — temperature cross-sensitivity: the PSN "thermometer" is
/// also, literally, a thermometer. Quantifies the mV-per-°C error a
/// power-aware policy must budget for.
pub fn temperature(ctx: &mut psnt_ctx::RunCtx<'_>) -> String {
    use psnt_cells::process::ProcessCorner;
    use psnt_cells::units::Temperature;
    let array = ThermometerArray::paper(RailMode::Supply);
    let pg = PulseGenerator::paper_table();
    let code = DelayCode::new(3).expect("static");
    let mut t = Table::new(
        "XP-TEMPERATURE — characteristic drift with junction temperature (TT, code 011)",
        &["T_j", "range", "midpoint", "drift vs 25 °C"],
    );
    let mut mid25 = None;
    let mut rows = Vec::new();
    for temp_c in [-40.0, 0.0, 25.0, 85.0, 125.0] {
        let pvt = Pvt::new(
            ProcessCorner::TT,
            Voltage::from_v(1.0),
            Temperature::from_celsius(temp_c),
        );
        let ch = psnt_core::calibration::array_characteristic(ctx, &array, &pg, code, &pvt)
            .expect("in range");
        let mid = ch.midpoint();
        if temp_c == 25.0 {
            mid25 = Some(mid);
        }
        rows.push((temp_c, ch.range, mid));
    }
    let mid25 = mid25.expect("25 °C row present");
    for (temp_c, range, mid) in rows {
        t.row([
            format!("{temp_c:.0} °C"),
            format!("{:.3}–{:.3} V", range.0.volts(), range.1.volts()),
            format!("{:.3} V", mid.volts()),
            format!("{:+.1} mV", (mid - mid25).millivolts()),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "the sensor and its reference delay line share the same temperature coefficient, so the\n\
         residual drift is second-order; a power-aware policy budgets it as a guard band.\n",
    );
    s
}

/// Ablation 8 — code-density test: a slow voltage ramp exercises every
/// code; hit counts recover the code widths, cross-checked against the
/// threshold-derived DNL.
pub fn code_density() -> String {
    use psnt_analysis::adc_metrics::code_density_widths;
    let array = ThermometerArray::paper(RailMode::Supply);
    let pvt = Pvt::typical();
    let sk = skew011();
    // A uniform ramp across the full dynamic range (plus margins).
    let mut hits = vec![0u64; 8]; // 8 codes for 7 elements
    let n = 40_000;
    for i in 0..n {
        let v = 0.80 + 0.30 * (i as f64 / n as f64);
        let code = array.measure(Voltage::from_v(v), sk, &pvt);
        hits[code.level()] += 1;
    }
    let widths = code_density_widths(&hits).expect("interior hits");
    let th = array.thresholds(sk, &pvt).expect("in range");
    let lsb = (th[6] - th[0]).volts() / 6.0;
    let mut t = Table::new(
        "XP-CODE-DENSITY — code widths from a 40 000-point ramp (0.80–1.10 V)",
        &[
            "code (level)",
            "hits",
            "measured width",
            "threshold-derived width",
        ],
    );
    for (i, w) in widths.iter().enumerate() {
        let derived = (th[i + 1] - th[i]).volts() / lsb;
        t.row([
            format!("{}", i + 1),
            hits[i + 1].to_string(),
            format!("{w:.2} LSB"),
            format!("{derived:.2} LSB"),
        ]);
    }
    let mut s = t.render();
    let worst = widths
        .iter()
        .enumerate()
        .map(|(i, w)| (w - (th[i + 1] - th[i]).volts() / lsb).abs())
        .fold(0.0f64, f64::max);
    s.push_str(&format!(
        "worst density-vs-threshold disagreement: {worst:.3} LSB — the histogram method\n\
         recovers the transfer characteristic without knowing the thresholds.\n"
    ));
    s
}

/// Ablation 9 — stochastic resolution enhancement: metastability dithers
/// the boundary elements, so averaging N stochastic measures and
/// inverting the analytic expected-level curve resolves the rail well
/// below one code width.
pub fn oversampling() -> String {
    use psnt_core::thermometer::ThermometerArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let array = ThermometerArray::paper(RailMode::Supply);
    let pvt = Pvt::typical();
    let sk = skew011();
    let th = array.thresholds(sk, &pvt).expect("in range");
    let mut rng = StdRng::seed_from_u64(7);

    let mut t = Table::new(
        "XP-OVERSAMPLING — sub-LSB decoding via metastability dithering (LSB ≈ 31 mV)",
        &[
            "N measures",
            "rms error over 9 probe points",
            "single-shot code error",
        ],
    );
    let probes: Vec<Voltage> = (-4..=4)
        .map(|k| th[3] + Voltage::from_mv(5.0 * k as f64))
        .collect();
    for n in [50usize, 500, 5000] {
        let mut sq = 0.0;
        for &v in &probes {
            let mean = array.oversampled_level(v, sk, &pvt, n, &mut rng);
            let est = array
                .decode_oversampled(mean, sk, &pvt)
                .expect("in range")
                .expect("not saturated");
            sq += (est - v).volts().powi(2);
        }
        let rms_mv = (sq / probes.len() as f64).sqrt() * 1e3;
        t.row([
            n.to_string(),
            format!("{rms_mv:.1} mV"),
            "±15.5 mV (half an LSB)".to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "the error shrinks roughly as 1/√N — the stochastic-flash-ADC effect behind the paper's\n\
         \"measures should be iterated\" advice.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_model_agreement_is_tight() {
        let s = delay_model();
        assert!(s.contains("worst interpolation error"));
        // The table must agree with the analytic model to well under 1 %.
        assert!(!s.contains("nan"), "{s}");
    }

    #[test]
    fn ladder_compares_two_designs() {
        let s = ladder();
        assert!(s.contains("paper Fig. 5"));
        assert!(s.contains("linear caps"));
        assert!(s.contains("LSB"));
    }

    #[test]
    fn encoding_counts_bubbles() {
        let s = encoding();
        assert!(s.contains("Truncate"));
        assert!(s.contains("BubbleCorrect"));
    }

    #[test]
    fn sampling_shows_aliasing_gap() {
        let s = sampling();
        assert!(s.contains("synchronous"));
        assert!(s.contains("equivalent-time"));
    }

    #[test]
    fn mismatch_reports_yield_sweep() {
        let s = mismatch(&mut psnt_ctx::RunCtx::serial());
        assert!(s.contains("monotone yield"));
        assert!(s.contains("4.00×"));
    }

    #[test]
    fn impedance_peak_aligns_with_worst_droop() {
        let s = impedance(&mut psnt_ctx::RunCtx::serial());
        assert!(s.contains("analytic peak"));
        // The minimum VDD row must be the resonance row: parse crudely.
        assert!(s.contains("tank resonance"));
    }

    #[test]
    fn temperature_drift_reported() {
        let s = temperature(&mut psnt_ctx::RunCtx::serial());
        assert!(s.contains("125 °C"));
        assert!(s.contains("drift vs 25 °C"));
    }

    #[test]
    fn oversampling_error_shrinks_with_n() {
        let s = oversampling();
        assert!(s.contains("XP-OVERSAMPLING"));
        assert!(s.contains("5000"));
    }

    #[test]
    fn code_density_cross_checks_thresholds() {
        let s = code_density();
        assert!(s.contains("worst density-vs-threshold disagreement"));
        assert!(s.contains("1.83 LSB") || s.contains("LSB"));
    }
}
