//! End-to-end check of `repro --telemetry`: the binary writes a
//! JSON-Lines stream framed by a run manifest and a metrics snapshot,
//! with one event per FSM phase transition in between.

use std::process::Command;

use serde::{json, Value};

#[test]
fn repro_fig9_telemetry_stream_is_well_formed() {
    let dir = std::env::temp_dir().join(format!("psnt-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig9.jsonl");

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--fig9", "--telemetry"])
        .arg(&path)
        .output()
        .expect("repro runs");
    assert!(
        output.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stream = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let records: Vec<Value> = stream
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e:?}")))
        .collect();
    assert!(records.len() >= 4, "stream too short:\n{stream}");

    let kind = |v: &Value| v.get("type").and_then(Value::as_str).unwrap().to_string();

    // Head: the run manifest identifying the experiment and setup.
    assert_eq!(kind(&records[0]), "manifest");
    assert_eq!(
        records[0].get("experiment").and_then(Value::as_str),
        Some("fig9")
    );
    assert_eq!(records[0].get("hs_code").and_then(Value::as_u64), Some(3));

    // Tail: the final metrics snapshot, counting fig9's two measures.
    let last = records.last().unwrap();
    assert_eq!(kind(last), "metrics");
    assert_eq!(
        last.get("counters")
            .and_then(|c| c.get("sensor.measures"))
            .and_then(Value::as_u64),
        Some(2)
    );

    // Body: at least one event per FSM phase transition, plus a span
    // for the experiment itself.
    let transitions: Vec<(String, String)> = records
        .iter()
        .filter(|r| kind(r) == "event" && r.get("subsystem").and_then(Value::as_str) == Some("fsm"))
        .map(|r| {
            (
                r.get("from").and_then(Value::as_str).unwrap().to_string(),
                r.get("to").and_then(Value::as_str).unwrap().to_string(),
            )
        })
        .collect();
    for expected in [
        ("Idle", "Ready"),
        ("Ready", "Prepare0"),
        ("Prepare0", "Prepare"),
        ("Prepare", "Sense0"),
        ("Sense0", "Sense"),
        ("Sense", "Ready"),
    ] {
        assert!(
            transitions
                .iter()
                .any(|(f, t)| (f.as_str(), t.as_str()) == expected),
            "missing FSM transition {expected:?} in {transitions:?}"
        );
    }
    assert!(
        records
            .iter()
            .any(|r| kind(r) == "span" && r.get("name").and_then(Value::as_str) == Some("fig9")),
        "missing fig9 span"
    );
}
