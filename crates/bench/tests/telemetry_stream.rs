//! End-to-end check of `repro --telemetry`: the binary writes a
//! JSON-Lines stream framed by a run manifest and a metrics snapshot,
//! with one event per FSM phase transition in between.

use std::process::Command;

use serde::{json, Value};

#[test]
fn repro_fig9_telemetry_stream_is_well_formed() {
    let dir = std::env::temp_dir().join(format!("psnt-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig9.jsonl");

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--fig9", "--telemetry"])
        .arg(&path)
        .output()
        .expect("repro runs");
    assert!(
        output.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stream = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let records: Vec<Value> = stream
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e:?}")))
        .collect();
    assert!(records.len() >= 4, "stream too short:\n{stream}");

    let kind = |v: &Value| v.get("type").and_then(Value::as_str).unwrap().to_string();

    // Head: the run manifest identifying the experiment and setup.
    assert_eq!(kind(&records[0]), "manifest");
    assert_eq!(
        records[0].get("experiment").and_then(Value::as_str),
        Some("fig9")
    );
    assert_eq!(records[0].get("hs_code").and_then(Value::as_u64), Some(3));

    // Tail: the final metrics snapshot, counting fig9's two measures.
    let last = records.last().unwrap();
    assert_eq!(kind(last), "metrics");
    assert_eq!(
        last.get("counters")
            .and_then(|c| c.get("sensor.measures"))
            .and_then(Value::as_u64),
        Some(2)
    );

    // Body: at least one event per FSM phase transition, plus a span
    // for the experiment itself.
    let transitions: Vec<(String, String)> = records
        .iter()
        .filter(|r| kind(r) == "event" && r.get("subsystem").and_then(Value::as_str) == Some("fsm"))
        .map(|r| {
            (
                r.get("from").and_then(Value::as_str).unwrap().to_string(),
                r.get("to").and_then(Value::as_str).unwrap().to_string(),
            )
        })
        .collect();
    for expected in [
        ("Idle", "Ready"),
        ("Ready", "Prepare0"),
        ("Prepare0", "Prepare"),
        ("Prepare", "Sense0"),
        ("Sense0", "Sense"),
        ("Sense", "Ready"),
    ] {
        assert!(
            transitions
                .iter()
                .any(|(f, t)| (f.as_str(), t.as_str()) == expected),
            "missing FSM transition {expected:?} in {transitions:?}"
        );
    }
    assert!(
        records
            .iter()
            .any(|r| kind(r) == "span" && r.get("name").and_then(Value::as_str) == Some("fig9")),
        "missing fig9 span"
    );
}

/// `--telemetry` composed with `--jobs N`: the parallel scan merges the
/// per-worker registries into ONE final metrics snapshot, and the event
/// stream matches the serial run record for record (determinism
/// contract: worker count never changes observable output).
#[test]
fn repro_scan_parallel_telemetry_merges_one_snapshot() {
    let dir = std::env::temp_dir().join(format!("psnt-telemetry-par-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let run = |jobs: &str, file: &str| {
        let path = dir.join(file);
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["--scan", "--jobs", jobs, "--telemetry"])
            .arg(&path)
            .output()
            .expect("repro runs");
        assert!(
            output.status.success(),
            "repro --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        (
            String::from_utf8(output.stdout).unwrap(),
            std::fs::read_to_string(&path).unwrap(),
        )
    };
    let (serial_report, serial_stream) = run("1", "scan-j1.jsonl");
    let (parallel_report, parallel_stream) = run("2", "scan-j2.jsonl");
    let _ = std::fs::remove_dir_all(&dir);

    // Reports are bit-identical at any worker count.
    assert_eq!(
        serial_report, parallel_report,
        "scan report depends on --jobs"
    );

    let records: Vec<Value> = parallel_stream
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e:?}")))
        .collect();
    let kind = |v: &Value| v.get("type").and_then(Value::as_str).unwrap().to_string();

    // Exactly one metrics snapshot, at the tail, holding the merged
    // per-worker counters: all 16 scan sites counted once.
    let snapshots: Vec<&Value> = records.iter().filter(|r| kind(r) == "metrics").collect();
    assert_eq!(snapshots.len(), 1, "expected one merged metrics snapshot");
    assert_eq!(kind(records.last().unwrap()), "metrics");
    let counters = snapshots[0].get("counters").unwrap();
    assert_eq!(
        counters.get("campaign.sites_done").and_then(Value::as_u64),
        Some(16),
        "merged sites_done counter wrong: {counters:?}"
    );
    assert_eq!(
        counters.get("engine.jobs_done").and_then(Value::as_u64),
        Some(16),
        "merged engine.jobs_done counter wrong: {counters:?}"
    );

    // Event stream is identical to the serial run's. Spans and the
    // metrics snapshot legitimately differ (wall times, the
    // engine.workers gauge); the manifest may carry a timestamp.
    let event_lines = |stream: &str| -> Vec<String> {
        stream
            .lines()
            .filter(|l| {
                let v = json::parse(l).unwrap();
                v.get("type").and_then(Value::as_str) == Some("event")
            })
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        event_lines(&serial_stream),
        event_lines(&parallel_stream),
        "telemetry events depend on --jobs"
    );
}
