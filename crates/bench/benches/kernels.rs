//! Micro-benchmarks of the hot kernels underneath the experiments:
//! element measurement, array measurement, PDN transients, grid solve,
//! event-driven simulation and STA.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Resistance, Time, Voltage};
use psnt_core::control::{build_control_netlist, CtrlNetlistConfig};
use psnt_core::element::{RailMode, SenseElement};
use psnt_core::thermometer::ThermometerArray;
use psnt_ctx::RunCtx;
use psnt_netlist::sim::Simulator;
use psnt_netlist::sta::{analyze, StaConfig};
use psnt_pdn::grid::PowerGrid;
use psnt_pdn::rlc::LumpedPdn;
use psnt_pdn::waveform::Waveform;

fn bench_kernels(c: &mut Criterion) {
    let pvt = Pvt::typical();
    let skew = Time::from_ps(149.0);

    c.bench_function("mismatch_monte_carlo_50", |b| {
        use psnt_core::element::RailMode;
        use psnt_core::mismatch::{monte_carlo_yield, MismatchModel};
        let array = ThermometerArray::paper(RailMode::Supply);
        let model = MismatchModel::local_90nm();
        let mut ctx = RunCtx::serial().with_seed(1);
        b.iter(|| monte_carlo_yield(&mut ctx, &array, skew, &pvt, &model, 50).unwrap())
    });

    // The PR-8 headline pair: 3,200 trials scalar (one bisection per
    // element per trial) vs batched (64 trials per word through the
    // lockstep lane kernel). Equal statistics — identical per-lane RNG
    // streams and bit-identical reports — so the ratio is pure kernel
    // speedup (target ≥10×, recorded in BENCH_PR8.json).
    c.bench_function("mismatch_monte_carlo_3200_scalar", |b| {
        use psnt_core::mismatch::{monte_carlo_yield_scalar, MismatchModel};
        let array = ThermometerArray::paper(RailMode::Supply);
        let model = MismatchModel::local_90nm();
        let mut ctx = RunCtx::serial().with_seed(1);
        b.iter(|| monte_carlo_yield_scalar(&mut ctx, &array, skew, &pvt, &model, 3200).unwrap())
    });

    c.bench_function("mismatch_monte_carlo_3200_batched", |b| {
        use psnt_core::mismatch::{monte_carlo_yield, MismatchModel};
        let array = ThermometerArray::paper(RailMode::Supply);
        let model = MismatchModel::local_90nm();
        let mut ctx = RunCtx::serial().with_seed(1);
        b.iter(|| monte_carlo_yield(&mut ctx, &array, skew, &pvt, &model, 3200).unwrap())
    });

    // The event-kernel half of the PR-8 pair: one 64-lane batched
    // PREPARE/SENSE measure carrying 64 distinct fault plans, vs the
    // same 64 plans installed and measured serially on the pooled
    // scalar simulator. Per-lane results are bit-identical (pinned by
    // `tests/batch_equiv.rs`), so the ratio is pure kernel speedup.
    let fault_plans_64 = || {
        use psnt_cells::logic::Logic;
        use psnt_fault::{Fault, FaultPlan};
        let mut plans = Vec::with_capacity(64);
        for i in 0..7 {
            for value in [Logic::Zero, Logic::One] {
                plans.push(FaultPlan::new().with(Fault::stuck_at(format!("inv{i}.out"), value)));
                plans.push(FaultPlan::new().with(Fault::stuck_at(format!("ff{i}.q"), value)));
            }
        }
        for i in 0..7 {
            for factor in [0.5, 1.5, 2.0, 3.0] {
                plans.push(FaultPlan::new().with(Fault::delay_scale(format!("inv{i}"), factor)));
            }
        }
        plans.push(FaultPlan::new().with(Fault::stuck_at("P", Logic::Zero)));
        plans.push(FaultPlan::new().with(Fault::stuck_at("P", Logic::One)));
        plans.push(FaultPlan::new().with(Fault::stuck_at("CP", Logic::Zero)));
        plans.push(FaultPlan::new().with(Fault::stuck_at("CP", Logic::One)));
        for i in 0..4 {
            plans.push(
                FaultPlan::new().with(Fault::bit_upset(format!("ff{i}"), Time::from_ns(6.0))),
            );
        }
        assert_eq!(plans.len(), 64);
        plans
    };

    c.bench_function("batch_gate_eval_64_scalar", |b| {
        use psnt_core::gate_level::GateLevelArray;
        let array = GateLevelArray::paper().unwrap();
        let plans = fault_plans_64();
        let mut ctx = RunCtx::serial();
        b.iter(|| {
            for plan in &plans {
                ctx.set_fault_plan(Some(plan.clone()));
                array
                    .measure_detailed(&mut ctx, Voltage::from_v(0.96), skew)
                    .unwrap();
            }
            ctx.set_fault_plan(None);
        })
    });

    c.bench_function("batch_gate_eval_64", |b| {
        use psnt_core::gate_level::GateLevelArray;
        let array = GateLevelArray::paper().unwrap();
        let plans = fault_plans_64();
        let mut ctx = RunCtx::serial();
        b.iter(|| {
            array
                .measure_batch(&mut ctx, Voltage::from_v(0.96), skew, &plans)
                .unwrap()
        })
    });

    c.bench_function("spectrum_dominant_400pts", |b| {
        use psnt_analysis::spectrum::dominant_frequency;
        use psnt_cells::units::Frequency;
        let samples: Vec<(Time, f64)> = (0..400)
            .map(|k| {
                let t = Time::from_ns(23.0 * k as f64);
                (
                    t,
                    0.94 + 0.03 * (std::f64::consts::TAU * 5.0e7 * t.seconds()).sin(),
                )
            })
            .collect();
        b.iter(|| {
            dominant_frequency(
                &samples,
                Frequency::from_mhz(10.0),
                Frequency::from_mhz(200.0),
                200,
            )
            .unwrap()
        })
    });

    c.bench_function("gate_level_system_measure", |b| {
        use psnt_core::gate_level::GateLevelSystem;
        use psnt_core::pulsegen::DelayCode;
        let sys = GateLevelSystem::paper().unwrap();
        let code = DelayCode::new(3).unwrap();
        // A fresh context per iteration: the pool rebuilds the
        // simulator every measure.
        b.iter(|| {
            sys.run_measures(&mut RunCtx::serial(), code, &[Voltage::from_v(1.0)])
                .unwrap()
        })
    });

    // The reusable-simulator counterpart: identical work, but the
    // simulator (topology, delay cache, buffers) survives across
    // measures via reset() instead of being rebuilt.
    c.bench_function("gate_level_system_measure_reused", |b| {
        use psnt_core::gate_level::GateLevelSystem;
        use psnt_core::pulsegen::DelayCode;
        let sys = GateLevelSystem::paper().unwrap();
        let code = DelayCode::new(3).unwrap();
        // One long-lived context: its pool keeps the simulator alive
        // across iterations via reset().
        let mut ctx = RunCtx::serial();
        b.iter(|| {
            sys.run_measures(&mut ctx, code, &[Voltage::from_v(1.0)])
                .unwrap()
        })
    });

    // Fresh-construction vs reset() on the bare array twin: a 7-point
    // rail sweep, one simulator per point…
    c.bench_function("gate_level_sweep_7pt_fresh", |b| {
        use psnt_core::gate_level::GateLevelArray;
        let gate = GateLevelArray::paper().unwrap();
        b.iter(|| {
            for mv in (820..=1060).step_by(40) {
                gate.measure(
                    &mut RunCtx::serial(),
                    Voltage::from_mv(mv as f64 + 3.0),
                    skew,
                )
                .unwrap();
            }
        })
    });

    // …vs one simulator reset per point.
    c.bench_function("gate_level_sweep_7pt_reused", |b| {
        use psnt_core::gate_level::GateLevelArray;
        let gate = GateLevelArray::paper().unwrap();
        let mut ctx = RunCtx::serial();
        b.iter(|| {
            for mv in (820..=1060).step_by(40) {
                gate.measure(&mut ctx, Voltage::from_mv(mv as f64 + 3.0), skew)
                    .unwrap();
            }
        })
    });

    // Repeat decodes at one operating point: the threshold memo removes
    // the seven bisection searches behind each decode after the first.
    c.bench_function("array_decode_memoised", |b| {
        let a = ThermometerArray::paper(RailMode::Supply);
        let code = a.measure(Voltage::from_v(0.97), skew, &pvt);
        b.iter(|| a.decode(std::hint::black_box(&code), skew, &pvt).unwrap())
    });

    c.bench_function("element_measure", |b| {
        let e = SenseElement::paper(Capacitance::from_pf(2.0), RailMode::Supply);
        b.iter(|| e.measure(std::hint::black_box(Voltage::from_v(0.97)), skew, &pvt))
    });

    c.bench_function("array_measure_7bit", |b| {
        let a = ThermometerArray::paper(RailMode::Supply);
        b.iter(|| a.measure(std::hint::black_box(Voltage::from_v(0.97)), skew, &pvt))
    });

    c.bench_function("element_threshold_bisection", |b| {
        let e = SenseElement::paper(Capacitance::from_pf(2.0), RailMode::Supply);
        b.iter(|| e.threshold(skew, &pvt).unwrap())
    });

    c.bench_function("rlc_transient_400ns", |b| {
        let pdn = LumpedPdn::typical_90nm_package();
        let load = Waveform::from_points(vec![
            (Time::ZERO, 0.5),
            (Time::from_ns(100.0), 0.5),
            (Time::from_ns(100.1), 2.0),
        ])
        .unwrap();
        let mut ctx = RunCtx::serial();
        b.iter(|| {
            pdn.transient(&mut ctx, &load, Time::from_ps(200.0), Time::from_ns(400.0))
                .unwrap()
        })
    });

    c.bench_function("grid_solve_8x8", |b| {
        let grid = PowerGrid::corner_fed(
            8,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
        )
        .unwrap();
        let loads = vec![0.05f64; 64];
        b.iter(|| grid.solve(&loads).unwrap())
    });

    // The workload-scale grid (40×40 = 1,600 nodes). The next four
    // benches pin the sparse-solver story: factor once, then per-cycle
    // solves orders of magnitude below a relaxation sweep.
    let chip_grid = || {
        PowerGrid::new(
            40,
            40,
            Voltage::from_v(1.05),
            Resistance::from_milliohms(60.0),
            Resistance::from_milliohms(20.0),
            vec![(0, 0), (0, 39), (39, 0), (39, 39)],
        )
        .unwrap()
    };
    let chip_loads: Vec<f64> = (0..1600).map(|i| 1.0e-4 * (1 + i % 7) as f64).collect();

    c.bench_function("grid_factor_1600", |b| {
        // A fresh grid per iteration so the lazily cached banded
        // Cholesky factor is actually rebuilt.
        b.iter(|| chip_grid().factor().bandwidth())
    });

    c.bench_function("grid_solve_dense_1600", |b| {
        let grid = chip_grid();
        b.iter(|| grid.solve(&chip_loads).unwrap())
    });

    c.bench_function("grid_solve_sparse_1600", |b| {
        let grid = chip_grid();
        grid.factor(); // amortised once, like a campaign does
        b.iter(|| grid.solve_sparse(&chip_loads).unwrap())
    });

    c.bench_function("grid_solve_delta_1600", |b| {
        let grid = chip_grid();
        let prior = grid.solve_sparse(&chip_loads).unwrap();
        // One 5×5 mesh-tile block (the per-cycle workload shape).
        let changed: Vec<(usize, f64)> = (0..5)
            .flat_map(|r| (0..5).map(move |c| ((20 + r) * 40 + 20 + c, 2.5e-4)))
            .collect();
        b.iter(|| grid.solve_delta(&prior, &changed).unwrap())
    });

    // Quasi-static transient over 20 steps; each step warm-starts from
    // the previous instant's solution.
    c.bench_function("grid_transient_4x4_20steps", |b| {
        let grid = PowerGrid::corner_fed(
            4,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(60.0),
            Resistance::from_milliohms(20.0),
        )
        .unwrap();
        let mut loads = vec![Waveform::constant(0.02); 16];
        loads[5] =
            Waveform::from_points(vec![(Time::ZERO, 0.02), (Time::from_ns(100.0), 0.3)]).unwrap();
        let mut ctx = RunCtx::serial();
        b.iter(|| {
            grid.quasi_static_transient(
                &mut ctx,
                &loads,
                Time::ZERO,
                Time::from_ns(100.0),
                Time::from_ns(5.0),
            )
            .unwrap()
        })
    });

    c.bench_function("cntr_sta", |b| {
        let netlist = build_control_netlist(&CtrlNetlistConfig::default());
        b.iter(|| analyze(&netlist, &StaConfig::default()).unwrap())
    });

    c.bench_function("cntr_gate_sim_10_cycles", |b| {
        let netlist = build_control_netlist(&CtrlNetlistConfig::default());
        b.iter_batched(
            || {
                let mut sim = Simulator::new(&netlist, Voltage::from_v(1.0)).unwrap();
                let clk = netlist.net_by_name("clk").unwrap();
                let enable = netlist.net_by_name("enable").unwrap();
                let start = netlist.net_by_name("start").unwrap();
                sim.drive(enable, psnt_cells::logic::Logic::One, Time::ZERO)
                    .unwrap();
                sim.drive(start, psnt_cells::logic::Logic::One, Time::ZERO)
                    .unwrap();
                sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(4.0), 10)
                    .unwrap();
                sim
            },
            |mut sim| {
                sim.run_until(Time::from_ns(50.0));
            },
            BatchSize::SmallInput,
        )
    });

    // The same 10-cycle run on one long-lived simulator: reset() rewinds
    // state but keeps the topology, delay cache and buffers alive.
    c.bench_function("cntr_gate_sim_10_cycles_reused", |b| {
        let netlist = build_control_netlist(&CtrlNetlistConfig::default());
        let clk = netlist.net_by_name("clk").unwrap();
        let enable = netlist.net_by_name("enable").unwrap();
        let start = netlist.net_by_name("start").unwrap();
        let mut sim = Simulator::new(&netlist, Voltage::from_v(1.0)).unwrap();
        b.iter(|| {
            sim.reset();
            sim.drive(enable, psnt_cells::logic::Logic::One, Time::ZERO)
                .unwrap();
            sim.drive(start, psnt_cells::logic::Logic::One, Time::ZERO)
                .unwrap();
            sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(4.0), 10)
                .unwrap();
            sim.run_until(Time::from_ns(50.0));
        })
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
