//! Criterion benches: one per paper figure/table (the benchmark body is
//! the full reproduction of that artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use psnt_bench::figures;
use psnt_ctx::RunCtx;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig2_element_delay", |b| b.iter(figures::fig2));
    g.bench_function("fig3_measure_sequence", |b| b.iter(figures::fig3));
    g.bench_function("fig4_threshold_vs_cap", |b| b.iter(figures::fig4));
    g.bench_function("fig5_array_characteristic", |b| {
        b.iter(|| figures::fig5(&mut RunCtx::serial()))
    });
    g.bench_function("tab1_pulse_generator", |b| b.iter(figures::tab1));
    g.bench_function("fig6_system_assembly", |b| {
        b.iter(|| figures::fig6(&mut RunCtx::serial()))
    });
    g.bench_function("fig8_control_fsm", |b| b.iter(figures::fig8));
    g.bench_function("fig9_system_sequence", |b| {
        b.iter(|| figures::fig9(&mut RunCtx::serial()))
    });
    g.bench_function("xp_gnd_characteristic", |b| {
        b.iter(|| figures::gnd(&mut RunCtx::serial()))
    });
    g.bench_function("xp_process_trim", |b| {
        b.iter(|| figures::pv(&mut RunCtx::serial()))
    });
    g.bench_function("xp_baseline_comparison", |b| b.iter(figures::baseline));
    g.bench_function("xp_scan_chain", |b| {
        b.iter(|| figures::scan(&mut RunCtx::serial()))
    });
    g.bench_function("xp_gate_level_twin", |b| b.iter(figures::gate_level));
    g.bench_function("xp_overhead", |b| b.iter(figures::overhead));
    g.bench_function("xp_noc_campaign", |b| {
        b.iter(|| figures::noc_campaign(&mut RunCtx::serial()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
