//! Criterion benches: one per paper figure/table (the benchmark body is
//! the full reproduction of that artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use psnt_bench::figures;
use psnt_ctx::RunCtx;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig2_element_delay", |b| b.iter(figures::fig2));
    g.bench_function("fig3_measure_sequence", |b| b.iter(figures::fig3));
    g.bench_function("fig4_threshold_vs_cap", |b| b.iter(figures::fig4));
    g.bench_function("fig5_array_characteristic", |b| {
        b.iter(|| figures::fig5(&mut RunCtx::serial()))
    });
    g.bench_function("tab1_pulse_generator", |b| b.iter(figures::tab1));
    g.bench_function("fig6_system_assembly", |b| {
        b.iter(|| figures::fig6(&mut RunCtx::serial()))
    });
    g.bench_function("fig8_control_fsm", |b| b.iter(figures::fig8));
    g.bench_function("fig9_system_sequence", |b| {
        b.iter(|| figures::fig9(&mut RunCtx::serial()))
    });
    g.bench_function("xp_gnd_characteristic", |b| {
        b.iter(|| figures::gnd(&mut RunCtx::serial()))
    });
    g.bench_function("xp_process_trim", |b| {
        b.iter(|| figures::pv(&mut RunCtx::serial()))
    });
    g.bench_function("xp_baseline_comparison", |b| b.iter(figures::baseline));
    g.bench_function("xp_scan_chain", |b| {
        b.iter(|| figures::scan(&mut RunCtx::serial()))
    });
    g.bench_function("xp_gate_level_twin", |b| b.iter(figures::gate_level));
    g.bench_function("xp_overhead", |b| b.iter(figures::overhead));
    g.bench_function("xp_noc_campaign", |b| {
        b.iter(|| figures::noc_campaign(&mut RunCtx::serial()))
    });
    g.bench_function("droop_mitigation_1000c", |b| {
        // 1,000 closed-loop cycles: per-cycle thermometer sensing on
        // every site, a delay line, a supply-boost mitigator, and the
        // incremental grid solve — the full co-simulation hot path.
        use psnt_cells::units::Voltage;
        use psnt_control::SupplyBoost;
        use psnt_workload::{NocWorkload, NocWorkloadConfig, TrafficPattern};
        let mut cfg = NocWorkloadConfig::chip_8x8();
        cfg.sites_per_tile = 1;
        cfg.v_pad = Voltage::from_v(1.0);
        cfg.pattern = TrafficPattern::Bursty {
            injection_rate: 0.9,
            on_cycles: 12,
            off_cycles: 20,
        };
        let workload = NocWorkload::new(cfg).expect("bench chip");
        b.iter(|| {
            let mut boost = SupplyBoost::new(64, 4, 5, Voltage::from_v(0.06))
                .expect("boost")
                .with_hold(16);
            workload
                .run_mitigated(&mut RunCtx::serial().with_seed(2009), Some(&mut boost), 1)
                .expect("mitigated run")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
