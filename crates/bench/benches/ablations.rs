//! Criterion benches for the DESIGN.md §5 ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use psnt_bench::ablations;
use psnt_ctx::RunCtx;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("xp_delay_model", |b| b.iter(ablations::delay_model));
    g.bench_function("xp_ladder", |b| b.iter(ablations::ladder));
    g.bench_function("xp_encoding", |b| b.iter(ablations::encoding));
    g.bench_function("xp_sampling", |b| b.iter(ablations::sampling));
    g.bench_function("xp_mismatch", |b| {
        b.iter(|| ablations::mismatch(&mut RunCtx::serial()))
    });
    g.bench_function("xp_impedance", |b| {
        b.iter(|| ablations::impedance(&mut RunCtx::serial()))
    });
    g.bench_function("xp_temperature", |b| {
        b.iter(|| ablations::temperature(&mut RunCtx::serial()))
    });
    g.bench_function("xp_code_density", |b| b.iter(ablations::code_density));
    g.bench_function("xp_oversampling", |b| b.iter(ablations::oversampling));
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
