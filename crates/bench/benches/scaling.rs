//! `xp_parallel_scaling` — wall-clock scaling of the engine-parallel
//! experiments with worker count. Every variant produces bit-identical
//! results; only the wall time may change. Jobs = 1 runs the exact
//! serial code path (the engine claims the whole batch inline), so the
//! `jobs=1` row doubles as the serial baseline.
//!
//! Interpreting the numbers: on an N-core machine the scan sweep
//! (16 sites × 8 samples) should approach N× at small worker counts;
//! on a single-core container all rows collapse to the serial time
//! plus ~µs of pool overhead. See `EXPERIMENTS.md` § parallel scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use psnt_bench::figures::scan_campaign;
use psnt_cells::units::Time;
use psnt_ctx::RunCtx;
use psnt_engine::Engine;

fn bench_parallel_scaling(c: &mut Criterion) {
    let (campaign, loads) = scan_campaign();
    let start = Time::from_ns(10.0);
    let dt = Time::from_ns(25.0);

    let mut group = c.benchmark_group("xp_parallel_scaling");
    group.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        let mut ctx = RunCtx::new(Engine::new(jobs));
        group.bench_function(&format!("scan_16sites/jobs={jobs}"), |b| {
            b.iter(|| {
                campaign
                    .run(&mut ctx, std::hint::black_box(&loads), start, dt, 8)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
