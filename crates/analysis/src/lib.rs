//! # psnt-analysis — measurement analysis and reporting
//!
//! Post-processing for the `psn-thermometer` workspace (reproduction of
//! Graziano & Vittori, IEEE SOCC 2009):
//!
//! * [`stats`] — summaries, quantiles and histograms of measurement
//!   series;
//! * [`adc_metrics`] — flash-ADC linearity metrics (DNL/INL, code
//!   density) for capacitor-ladder designs, since the paper likens the
//!   array to "a flash A/D converter";
//! * [`reconstruct`] — fidelity scoring of readouts against waveform
//!   ground truth;
//! * [`report`] — the plain-text tables every reproduction binary
//!   prints;
//! * [`spectrum`](mod@crate::spectrum) — single-tone spectral estimation from irregularly
//!   timed sensor samples (what frequency is the noise?).
//!
//! # Example
//!
//! ```
//! use psnt_analysis::adc_metrics::linearity;
//! use psnt_cells::units::Voltage;
//!
//! let thresholds: Vec<Voltage> =
//!     [0.827, 0.896, 0.929, 0.961, 0.992, 1.021, 1.053]
//!         .into_iter().map(Voltage::from_v).collect();
//! let rep = linearity(&thresholds);
//! // The paper's ladder trades a wide bottom step for dynamic range.
//! assert!(rep.dnl[0] > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc_metrics;
pub mod reconstruct;
pub mod report;
pub mod spectrum;
pub mod stats;

pub use adc_metrics::{code_density_widths, linearity, LinearityReport};
pub use reconstruct::{reconstruction_rmse, score_series, FidelityReport};
pub use report::{fmt_ps, fmt_v, Table};
pub use spectrum::{
    amplitude_at, dominant_frequency, resolution, spectrum, spectrum_envelope, SpectrumPoint,
};
pub use stats::{quantile, summarize, Histogram, Summary};
