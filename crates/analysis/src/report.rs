//! Plain-text table formatting for the reproduction binaries.
//!
//! Every `psnt-bench` target prints its figure/table through these
//! helpers, so `EXPERIMENTS.md` and the console output share one format.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} vs header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a voltage in millivolt precision, e.g. `0.936 V`.
pub fn fmt_v(volts: f64) -> String {
    format!("{volts:.3} V")
}

/// Formats a time in picoseconds, e.g. `119.0 ps`.
pub fn fmt_ps(ps: f64) -> String {
    format!("{ps:.1} ps")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["code", "range"]);
        t.row(["011", "0.827-1.053 V"])
            .row(["010", "0.951-1.237 V"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("code"));
        assert!(s.contains("0.951-1.237 V"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Header separator present.
        assert!(s.lines().nth(2).unwrap().contains("--"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_v(0.9356), "0.936 V");
        assert_eq!(fmt_ps(119.04), "119.0 ps");
    }
}
