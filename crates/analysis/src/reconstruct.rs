//! Comparing sensor readouts against waveform ground truth.
//!
//! The simulation environment knows the true `VDD-n(t)`; these helpers
//! quantify how faithfully a measurement series or an equivalent-time
//! reconstruction recovers it — the verification-use-case quality
//! metrics for the experiments.

use psnt_cells::units::{Time, Voltage};
use psnt_core::system::Measurement;
use psnt_pdn::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// Fidelity of a measurement series against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Measurements whose decoded interval contained the true window
    /// average.
    pub hits: usize,
    /// Measurements with a decodable (non-saturated) interval.
    pub resolved: usize,
    /// All measurements considered.
    pub total: usize,
    /// RMS error of interval midpoints against the truth (resolved
    /// measurements only), volts.
    pub rmse: f64,
    /// Worst absolute midpoint error, volts.
    pub max_error: f64,
}

impl FidelityReport {
    /// Fraction of resolved measurements whose interval contained the
    /// truth.
    pub fn hit_rate(&self) -> f64 {
        if self.resolved == 0 {
            0.0
        } else {
            self.hits as f64 / self.resolved as f64
        }
    }
}

/// Scores a HIGH-SENSE measurement series against the true supply
/// waveform. `window` is the sensor's P→CP skew (the averaging window
/// used at capture).
pub fn score_series(
    measurements: &[Measurement],
    truth: &Waveform,
    window: Time,
) -> FidelityReport {
    let mut hits = 0;
    let mut resolved = 0;
    let mut sq_sum = 0.0;
    let mut max_error: f64 = 0.0;
    for m in measurements {
        let true_v = Voltage::from_v(truth.mean_over(m.at, m.at + window.max(Time::from_ps(1.0))));
        if m.hs_interval.contains(true_v) {
            hits += 1;
        }
        if let Some(mid) = m.hs_interval.midpoint() {
            resolved += 1;
            let err = (mid - true_v).volts();
            sq_sum += err * err;
            max_error = max_error.max(err.abs());
        }
    }
    // Saturated measurements have no midpoint but can still "hit" when the
    // truth is outside the range on the same side; count hits over all.
    FidelityReport {
        hits,
        resolved,
        total: measurements.len(),
        rmse: if resolved == 0 {
            0.0
        } else {
            (sq_sum / resolved as f64).sqrt()
        },
        max_error,
    }
}

/// RMS error between a binned reconstruction and the truth sampled at the
/// bin centres (offset by `t0`, the phase origin). Empty bins are
/// skipped; returns `None` when no bin holds a value.
pub fn reconstruction_rmse(
    bin_values: &[Option<Voltage>],
    bin_times: impl Fn(usize) -> Time,
    truth: impl Fn(Time) -> f64,
    t0: Time,
) -> Option<f64> {
    let mut sq = 0.0;
    let mut n = 0usize;
    for (i, v) in bin_values.iter().enumerate() {
        if let Some(v) = v {
            let t = t0 + bin_times(i);
            let err = v.volts() - truth(t);
            sq += err * err;
            n += 1;
        }
    }
    (n > 0).then(|| (sq / n as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_core::system::{SensorConfig, SensorSystem};
    use psnt_pdn::sources::SupplyNoiseBuilder;

    #[test]
    fn perfect_series_scores_full_hits() {
        let system = SensorSystem::new(SensorConfig::default()).unwrap();
        let vdd = SupplyNoiseBuilder::new(Voltage::from_v(0.95))
            .span(Time::ZERO, Time::from_us(1.0))
            .resolution(Time::from_ns(1.0))
            .resonance(
                psnt_cells::units::Frequency::from_mhz(20.0),
                Voltage::from_mv(25.0),
                0.0,
            )
            .build()
            .unwrap();
        let gnd = Waveform::constant(0.0);
        let skew = system
            .pulse_generator()
            .skew(system.config().hs_code, &system.config().pvt);
        let measurements: Vec<Measurement> = (0..50)
            .map(|k| {
                system
                    .measure_at(&vdd, &gnd, Time::from_ns(20.0 + 15.0 * k as f64))
                    .unwrap()
            })
            .collect();
        let report = score_series(&measurements, &vdd, skew);
        assert_eq!(report.total, 50);
        assert_eq!(report.resolved, 50, "0.95 ± 25 mV stays in range");
        // Decoding is interval-exact by construction.
        assert_eq!(report.hit_rate(), 1.0);
        // Midpoint error bounded by half a code width (~17 mV).
        assert!(report.rmse < 0.02, "rmse {}", report.rmse);
        assert!(report.max_error < 0.035, "max {}", report.max_error);
    }

    #[test]
    fn saturated_series_has_no_resolved() {
        let system = SensorSystem::new(SensorConfig::default()).unwrap();
        let vdd = Waveform::constant(1.3);
        let gnd = Waveform::constant(0.0);
        let measurements: Vec<Measurement> = (0..5)
            .map(|k| {
                system
                    .measure_at(&vdd, &gnd, Time::from_ns(10.0 * (k + 1) as f64))
                    .unwrap()
            })
            .collect();
        let skew = Time::from_ps(149.0);
        let report = score_series(&measurements, &vdd, skew);
        assert_eq!(report.resolved, 0);
        assert_eq!(report.rmse, 0.0);
        assert_eq!(report.hit_rate(), 0.0);
        // Overflow interval (lower bound only) still contains the truth.
        assert_eq!(report.hits, 5);
    }

    #[test]
    fn reconstruction_rmse_basics() {
        let bins = vec![Some(Voltage::from_v(1.0)), None, Some(Voltage::from_v(0.9))];
        let rmse =
            reconstruction_rmse(&bins, |i| Time::from_ns(i as f64), |_| 0.95, Time::ZERO).unwrap();
        assert!((rmse - 0.05).abs() < 1e-12);
        assert!(reconstruction_rmse(&[None, None], |_| Time::ZERO, |_| 0.0, Time::ZERO).is_none());
    }
}
