//! Descriptive statistics and histograms for measurement series.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics; `None` for an empty slice.
pub fn summarize(samples: &[f64]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between order
/// statistics; `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A fixed-bin histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples outside `[lo, hi)`.
    outliers: u64,
}

impl Histogram {
    /// Builds a histogram of `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize, samples: &[f64]) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty histogram range");
        let mut counts = vec![0u64; bins];
        let mut outliers = 0;
        let width = (hi - lo) / bins as f64;
        for &x in samples {
            if x < lo || x >= hi {
                outliers += 1;
            } else {
                let b = ((x - lo) / width) as usize;
                counts[b.min(bins - 1)] += 1;
            }
        }
        Histogram {
            lo,
            hi,
            counts,
            outliers,
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// The centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "quantile must be")]
    fn quantile_range_checked() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn histogram_binning() {
        let h = Histogram::new(0.0, 1.0, 4, &[0.1, 0.3, 0.35, 0.9, -0.2, 1.0]);
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 4);
        assert_eq!(h.mode_bin(), 1);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-100.0..100.0f64, 1..50)) {
            let s = summarize(&xs).unwrap();
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
        }

        #[test]
        fn quantile_monotone(xs in proptest::collection::vec(-10.0..10.0f64, 2..30),
                             a in 0.0..1.0f64, b in 0.0..1.0f64) {
            prop_assume!(a <= b);
            let qa = quantile(&xs, a).unwrap();
            let qb = quantile(&xs, b).unwrap();
            prop_assert!(qa <= qb + 1e-12);
        }

        #[test]
        fn histogram_conserves_samples(xs in proptest::collection::vec(-2.0..2.0f64, 0..60)) {
            let h = Histogram::new(-1.0, 1.0, 8, &xs);
            prop_assert_eq!(h.total() + h.outliers(), xs.len() as u64);
        }
    }
}
