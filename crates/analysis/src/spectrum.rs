//! Spectral estimation of measured noise.
//!
//! A verification engineer pointing the sensor at an unknown rail wants
//! the *frequency* of the dominant noise — is it the package resonance,
//! a clock harmonic, a regulator artifact? This module estimates single
//! frequencies from irregularly timed `(t, v)` samples (the natural
//! output of iterated sensor measures) using direct discrete-Fourier
//! projections, which unlike an FFT need no uniform resampling.
//!
//! # Examples
//!
//! ```
//! use psnt_analysis::spectrum::dominant_frequency;
//! use psnt_cells::units::{Frequency, Time};
//!
//! // 35 mV of 50 MHz ripple sampled at 4 ns.
//! let samples: Vec<(Time, f64)> = (0..200)
//!     .map(|k| {
//!         let t = Time::from_ns(4.0 * k as f64);
//!         (t, 0.94 + 0.035 * (std::f64::consts::TAU * 50.0e6 * t.seconds()).sin())
//!     })
//!     .collect();
//! let (f, amp) = dominant_frequency(
//!     &samples, Frequency::from_mhz(10.0), Frequency::from_mhz(100.0), 400,
//! ).unwrap();
//! assert!((f.hertz() - 50.0e6).abs() < 1.0e6);
//! assert!((amp - 0.035).abs() < 0.005);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use psnt_cells::units::{Frequency, Time};
use serde::{Deserialize, Serialize};

/// One spectral sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrumPoint {
    /// The analysis frequency.
    pub frequency: Frequency,
    /// Estimated sinusoid amplitude at that frequency (same unit as the
    /// input values).
    pub amplitude: f64,
}

/// Projects mean-removed samples onto `cos`/`sin` at one frequency and
/// returns the implied sinusoid amplitude. Robust to irregular sampling
/// (least-squares single-tone fit under the near-orthogonality of the
/// quadratures).
///
/// Returns 0 for fewer than two samples.
pub fn amplitude_at(samples: &[(Time, f64)], f: Frequency) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().map(|&(_, v)| v).sum::<f64>() / n;
    let w = std::f64::consts::TAU * f.hertz();
    let (mut c, mut s) = (0.0f64, 0.0f64);
    for &(t, v) in samples {
        let phase = w * t.seconds();
        c += (v - mean) * phase.cos();
        s += (v - mean) * phase.sin();
    }
    2.0 * (c * c + s * s).sqrt() / n
}

/// Sweeps `bins` log-spaced frequencies in `[lo, hi]` and returns the
/// spectrum.
///
/// # Panics
///
/// Panics if `bins < 2` or the bounds are not positive and increasing.
pub fn spectrum(
    samples: &[(Time, f64)],
    lo: Frequency,
    hi: Frequency,
    bins: usize,
) -> Vec<SpectrumPoint> {
    assert!(bins >= 2, "need at least two bins");
    assert!(lo.hertz() > 0.0 && hi > lo, "bad frequency bounds");
    let (l0, l1) = (lo.hertz().log10(), hi.hertz().log10());
    (0..bins)
        .map(|i| {
            let f = Frequency::from_hz(10f64.powf(l0 + (l1 - l0) * i as f64 / (bins - 1) as f64));
            SpectrumPoint {
                frequency: f,
                amplitude: amplitude_at(samples, f),
            }
        })
        .collect()
}

/// The spectral line width of an observation window: a tone projected
/// over a span `T` has a main lobe of width ≈ `1/T`, so any search grid
/// must step by at most half of that or it will straddle the line.
pub fn resolution(samples: &[(Time, f64)]) -> Option<Frequency> {
    let t_min = samples.iter().map(|&(t, _)| t).min_by(Time::total_cmp)?;
    let t_max = samples.iter().map(|&(t, _)| t).max_by(Time::total_cmp)?;
    let span = (t_max - t_min).seconds();
    (span > 0.0).then(|| Frequency::from_hz(1.0 / span))
}

/// A display-friendly log-binned envelope: each of the `bins` log bins
/// reports the *maximum* amplitude over a resolution-aware linear
/// sub-sweep, so narrow lines cannot fall between bins.
///
/// # Panics
///
/// Panics on invalid bounds (see [`spectrum`]).
pub fn spectrum_envelope(
    samples: &[(Time, f64)],
    lo: Frequency,
    hi: Frequency,
    bins: usize,
) -> Vec<SpectrumPoint> {
    assert!(bins >= 2, "need at least two bins");
    assert!(lo.hertz() > 0.0 && hi > lo, "bad frequency bounds");
    let df = resolution(samples).map_or(f64::INFINITY, |r| r.hertz() / 2.0);
    let (l0, l1) = (lo.hertz().log10(), hi.hertz().log10());
    (0..bins)
        .map(|i| {
            let f_a = 10f64.powf(l0 + (l1 - l0) * i as f64 / bins as f64);
            let f_b = 10f64.powf(l0 + (l1 - l0) * (i + 1) as f64 / bins as f64);
            let steps = (((f_b - f_a) / df).ceil() as usize).clamp(1, 400);
            let amplitude = (0..=steps)
                .map(|k| {
                    let f = f_a + (f_b - f_a) * k as f64 / steps as f64;
                    amplitude_at(samples, Frequency::from_hz(f))
                })
                .fold(0.0, f64::max);
            SpectrumPoint {
                frequency: Frequency::from_hz((f_a * f_b).sqrt()),
                amplitude,
            }
        })
        .collect()
}

/// Finds the dominant tone: a resolution-aware linear sweep (grid step
/// `min((hi−lo)/bins, 1/(2·span))`, capped at 40 000 points) followed by
/// a golden-section refinement around the best grid point. Returns
/// `(frequency, amplitude)`, or `None` with fewer than four samples.
///
/// # Panics
///
/// Panics on invalid bounds (see [`spectrum`]).
pub fn dominant_frequency(
    samples: &[(Time, f64)],
    lo: Frequency,
    hi: Frequency,
    bins: usize,
) -> Option<(Frequency, f64)> {
    assert!(bins >= 2, "need at least two bins");
    assert!(lo.hertz() > 0.0 && hi > lo, "bad frequency bounds");
    if samples.len() < 4 {
        return None;
    }
    let span_hz = hi.hertz() - lo.hertz();
    let df_window = resolution(samples).map_or(span_hz / bins as f64, |r| r.hertz() / 2.0);
    let n = ((span_hz / df_window.min(span_hz / bins as f64)).ceil() as usize).clamp(bins, 40_000);
    let step = span_hz / n as f64;
    let mut best = (lo.hertz(), 0.0f64);
    for k in 0..=n {
        let f = lo.hertz() + step * k as f64;
        let a = amplitude_at(samples, Frequency::from_hz(f));
        if a > best.1 {
            best = (f, a);
        }
    }
    // Refine between the neighbours of the best grid point.
    let f_lo = (best.0 - step).max(lo.hertz());
    let f_hi = (best.0 + step).min(hi.hertz());
    if f_hi <= f_lo {
        let f = Frequency::from_hz(best.0);
        return Some((f, amplitude_at(samples, f)));
    }
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (f_lo, f_hi);
    let eval = |f: f64| amplitude_at(samples, Frequency::from_hz(f));
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (eval(c), eval(d));
    for _ in 0..80 {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = eval(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = eval(d);
        }
    }
    let f = Frequency::from_hz((a + b) / 2.0);
    Some((f, amplitude_at(samples, f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(f_hz: f64, amp: f64, n: usize, dt_ns: f64, phase: f64) -> Vec<(Time, f64)> {
        (0..n)
            .map(|k| {
                let t = Time::from_ns(dt_ns * k as f64);
                (t, 1.0 + amp * (TAU * f_hz * t.seconds() + phase).sin())
            })
            .collect()
    }

    #[test]
    fn amplitude_of_a_pure_tone() {
        let samples = tone(50.0e6, 0.03, 400, 1.7, 0.4);
        let a = amplitude_at(&samples, Frequency::from_mhz(50.0));
        assert!((a - 0.03).abs() < 0.002, "{a}");
        // Off-tone projection is small.
        let off = amplitude_at(&samples, Frequency::from_mhz(18.0));
        assert!(off < 0.006, "{off}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(amplitude_at(&[], Frequency::from_mhz(1.0)), 0.0);
        assert_eq!(
            amplitude_at(&[(Time::ZERO, 1.0)], Frequency::from_mhz(1.0)),
            0.0
        );
        assert!(dominant_frequency(
            &tone(1.0e6, 0.1, 3, 10.0, 0.0),
            Frequency::from_mhz(0.1),
            Frequency::from_mhz(10.0),
            10
        )
        .is_none());
    }

    #[test]
    fn dominant_frequency_recovers_the_tone() {
        let samples = tone(73.0e6, 0.025, 500, 2.3, 1.1);
        let (f, amp) = dominant_frequency(
            &samples,
            Frequency::from_mhz(10.0),
            Frequency::from_mhz(300.0),
            300,
        )
        .unwrap();
        assert!(
            (f.hertz() - 73.0e6).abs() / 73.0e6 < 0.02,
            "estimated {:.3e}",
            f.hertz()
        );
        assert!((amp - 0.025).abs() < 0.004, "{amp}");
    }

    #[test]
    fn irregular_sampling_supported() {
        // Deliberately jittered timestamps (equivalent-time style).
        let samples: Vec<(Time, f64)> = (0..400)
            .map(|k| {
                let jitter = ((k * 7919) % 13) as f64 * 0.11;
                let t = Time::from_ns(3.0 * k as f64 + jitter);
                (t, 0.9 + 0.04 * (TAU * 40.0e6 * t.seconds()).sin())
            })
            .collect();
        let (f, _) = dominant_frequency(
            &samples,
            Frequency::from_mhz(5.0),
            Frequency::from_mhz(200.0),
            300,
        )
        .unwrap();
        assert!(
            (f.hertz() - 40.0e6).abs() / 40.0e6 < 0.03,
            "{:.3e}",
            f.hertz()
        );
    }

    #[test]
    fn spectrum_shape() {
        let samples = tone(50.0e6, 0.05, 300, 1.9, 0.0);
        let sp = spectrum(
            &samples,
            Frequency::from_mhz(10.0),
            Frequency::from_mhz(200.0),
            60,
        );
        assert_eq!(sp.len(), 60);
        let peak = sp
            .iter()
            .max_by(|a, b| a.amplitude.total_cmp(&b.amplitude))
            .unwrap();
        assert!((peak.frequency.hertz() - 50.0e6).abs() / 50.0e6 < 0.12);
    }

    #[test]
    #[should_panic(expected = "bad frequency bounds")]
    fn spectrum_bounds_checked() {
        let samples = tone(1.0e6, 0.1, 10, 10.0, 0.0);
        let _ = spectrum(
            &samples,
            Frequency::from_mhz(2.0),
            Frequency::from_mhz(1.0),
            10,
        );
    }
}
