//! Flash-ADC-style linearity metrics for the thermometer.
//!
//! The paper likens the array to "a flash A/D converter", which makes
//! converter metrics the natural quality measures for ladder designs:
//!
//! * **DNL** (differential non-linearity) — per-code deviation of the
//!   threshold step from the ideal LSB;
//! * **INL** (integral non-linearity) — cumulative deviation from the
//!   endpoint-fit line;
//! * **code-density test** — drive the sensor with a slow ramp and check
//!   each code occupies a bin proportional to its width.
//!
//! These drive the ladder-design ablation (`xp_ladder`): the paper's
//! published thresholds have a wide bottom step (DNL ≈ +1 LSB at the
//! first code), while a uniform-threshold design trades dynamic range
//! for linearity.

use psnt_cells::units::Voltage;
use serde::{Deserialize, Serialize};

/// Linearity report of a threshold ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearityReport {
    /// The ideal step (LSB): endpoint span over step count.
    pub lsb: Voltage,
    /// Per-step DNL in LSB units (length = thresholds − 1).
    pub dnl: Vec<f64>,
    /// Per-threshold INL in LSB units (endpoint-fit; first and last are 0).
    pub inl: Vec<f64>,
}

impl LinearityReport {
    /// Largest absolute DNL.
    pub fn max_dnl(&self) -> f64 {
        self.dnl.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
    }

    /// Largest absolute INL.
    pub fn max_inl(&self) -> f64 {
        self.inl.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
    }
}

/// Computes DNL/INL for an ascending threshold ladder.
///
/// # Panics
///
/// Panics when fewer than two thresholds are supplied or they are not
/// strictly increasing.
pub fn linearity(thresholds: &[Voltage]) -> LinearityReport {
    assert!(thresholds.len() >= 2, "need at least two thresholds");
    assert!(
        thresholds.windows(2).all(|w| w[1] > w[0]),
        "thresholds must be strictly increasing"
    );
    let n = thresholds.len();
    let span = thresholds[n - 1] - thresholds[0];
    let lsb = span / (n - 1) as f64;
    let dnl: Vec<f64> = thresholds
        .windows(2)
        .map(|w| ((w[1] - w[0]) / lsb) - 1.0)
        .collect();
    let inl: Vec<f64> = thresholds
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let ideal = thresholds[0] + lsb * i as f64;
            (t - ideal) / lsb
        })
        .collect();
    LinearityReport { lsb, dnl, inl }
}

/// Code-density test: given per-code hit counts from a uniform-ramp
/// stimulus, estimates each code's width in LSB units (ratio of its hit
/// share to the ideal share). Saturation codes (first/last) are excluded.
///
/// Returns `None` when there are fewer than three codes or no interior
/// hits.
pub fn code_density_widths(hits: &[u64]) -> Option<Vec<f64>> {
    if hits.len() < 3 {
        return None;
    }
    let interior = &hits[1..hits.len() - 1];
    let total: u64 = interior.iter().sum();
    if total == 0 {
        return None;
    }
    let ideal = total as f64 / interior.len() as f64;
    Some(interior.iter().map(|&h| h as f64 / ideal).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(x: f64) -> Voltage {
        Voltage::from_v(x)
    }

    #[test]
    fn perfect_ladder_has_zero_nonlinearity() {
        let th: Vec<Voltage> = (0..8).map(|i| v(0.8 + 0.03 * i as f64)).collect();
        let rep = linearity(&th);
        assert!((rep.lsb.volts() - 0.03).abs() < 1e-12);
        assert!(rep.max_dnl() < 1e-9);
        assert!(rep.max_inl() < 1e-9);
    }

    #[test]
    fn wide_first_step_shows_in_dnl() {
        // The paper's published thresholds: first gap 69 mV, rest ~30 mV.
        let th = [0.827, 0.896, 0.929, 0.961, 0.992, 1.021, 1.053]
            .map(v)
            .to_vec();
        let rep = linearity(&th);
        // First step DNL strongly positive; max DNL is that step.
        assert!(rep.dnl[0] > 0.5, "dnl[0] = {}", rep.dnl[0]);
        assert!((rep.max_dnl() - rep.dnl[0].abs()).abs() < 1e-12);
        // Endpoint-fit INL: zero at both ends.
        assert!(rep.inl[0].abs() < 1e-12);
        assert!(rep.inl[6].abs() < 1e-12);
        assert!(rep.max_inl() > 0.3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_thresholds_panic() {
        let _ = linearity(&[v(1.0), v(0.9)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_threshold_panics() {
        let _ = linearity(&[v(1.0)]);
    }

    #[test]
    fn code_density_uniform() {
        // 5 interior codes with equal hits → all widths 1.
        let hits = [100, 40, 40, 40, 40, 40, 100];
        let widths = code_density_widths(&hits).unwrap();
        assert_eq!(widths.len(), 5);
        assert!(widths.iter().all(|w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn code_density_detects_wide_code() {
        let hits = [10, 80, 40, 40, 40, 40, 10];
        let widths = code_density_widths(&hits).unwrap();
        assert!(widths[0] > 1.5);
        assert!(widths[1] < 1.0);
    }

    #[test]
    fn code_density_degenerate_cases() {
        assert!(code_density_widths(&[1, 2]).is_none());
        assert!(code_density_widths(&[5, 0, 0, 0, 5]).is_none());
    }

    proptest! {
        #[test]
        fn dnl_sums_to_zero(steps in proptest::collection::vec(0.01..0.1f64, 2..10)) {
            // By construction, DNL over the endpoint-normalised ladder
            // sums to ~0.
            let mut th = vec![0.8f64];
            for s in &steps {
                th.push(th.last().unwrap() + s);
            }
            let th: Vec<Voltage> = th.into_iter().map(v).collect();
            let rep = linearity(&th);
            let sum: f64 = rep.dnl.iter().sum();
            prop_assert!(sum.abs() < 1e-9);
        }

        #[test]
        fn inl_endpoints_zero(steps in proptest::collection::vec(0.01..0.1f64, 2..10)) {
            let mut th = vec![0.8f64];
            for s in &steps {
                th.push(th.last().unwrap() + s);
            }
            let th: Vec<Voltage> = th.into_iter().map(v).collect();
            let rep = linearity(&th);
            prop_assert!(rep.inl.first().unwrap().abs() < 1e-9);
            prop_assert!(rep.inl.last().unwrap().abs() < 1e-9);
        }
    }
}
