//! Bounded-memory gate for the streamed campaign path.
//!
//! Runs the full chip-scale shape — 8×8 mesh, 256 sites on a
//! 1,600-node grid, 1,000 cycles — through [`NocWorkload::run_streamed`]
//! and asserts the process peak RSS (`VmHWM`) stays flat. This lives in
//! its own integration-test binary so the high-water mark measures this
//! campaign, not whichever unit test happened to run first.

use psnt_ctx::RunCtx;
use psnt_engine::{Engine, RetryPolicy};
use psnt_scan::campaign::StreamRecord;
use psnt_workload::{NocWorkload, NocWorkloadConfig};

/// Peak resident set size of this process in MiB, from
/// `/proc/self/status` (`VmHWM` is reported in kB).
#[cfg(target_os = "linux")]
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[test]
fn streamed_256_site_campaign_stays_bounded() {
    let mut cfg = NocWorkloadConfig::chip_8x8();
    // Four measurement windows keep the gate's wall time in seconds
    // while still sweeping all 256 sites per window.
    cfg.measure_every = 250;
    let workload = NocWorkload::new(cfg).unwrap();
    assert_eq!(workload.campaign().floorplan().sites().len(), 256);
    assert_eq!(workload.campaign().floorplan().grid().tiles(), 1600);

    let mut sites = 0usize;
    let mut frames = 0usize;
    let mut summaries = 0usize;
    let out = workload
        .run_streamed(
            &mut RunCtx::new(Engine::from_env()).with_seed(2009),
            RetryPolicy::none(),
            |record| {
                match record {
                    StreamRecord::Site { .. } => sites += 1,
                    StreamRecord::Frame { .. } => frames += 1,
                    StreamRecord::Summary { .. } => summaries += 1,
                    StreamRecord::Aborted { ref reason, .. } => {
                        panic!("unexpected abort: {reason}")
                    }
                }
                Ok(())
            },
        )
        .unwrap();
    assert_eq!((sites, frames, summaries), (256, 4, 1));
    assert_eq!(out.profile.windows.len(), 4);
    assert!(out.profile.flits > 0);
    assert!(
        out.profile.worst_droop() > 0.0,
        "workload induced no droop: {:?}",
        out.profile.worst()
    );

    #[cfg(target_os = "linux")]
    {
        let peak = peak_rss_mib().expect("VmHWM available on linux");
        assert!(
            peak < 512.0,
            "peak RSS {peak:.1} MiB breaks the 512 MiB streamed-campaign bound"
        );
    }
}
