//! Deterministic, seed-split NoC traffic generators.
//!
//! Each mesh tile owns an independent random stream derived from the
//! campaign base seed via [`psnt_engine::split_seed`], so per-tile
//! injection sequences are reproducible and **independent of how many
//! workers generate them** — the determinism contract the rest of the
//! workspace pins.
//!
//! Three patterns cover the classic NoC evaluation set:
//!
//! * [`TrafficPattern::Uniform`] — Bernoulli injection at a fixed rate,
//!   uniform random destinations;
//! * [`TrafficPattern::Bursty`] — `k`-on/`m`-off gating with a per-tile
//!   random phase, modelling phased compute/communicate loops;
//! * [`TrafficPattern::GaussianLinks`] — per-tile injection rates drawn
//!   once from a Gaussian (Box–Muller over the tile's stream), in the
//!   style of Booksim's random link-load tables (`rndlds25.txt`).

use psnt_engine::split_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::WorkloadError;

/// A synthetic traffic pattern over the mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Bernoulli injection: each tile injects a flit with probability
    /// `injection_rate` every cycle, to a uniform random destination.
    Uniform {
        /// Per-tile per-cycle injection probability in `[0, 1]`.
        injection_rate: f64,
    },
    /// `k`-on/`m`-off bursts: a tile injects (at `injection_rate`) only
    /// during the on-phase of its `on_cycles + off_cycles` period; each
    /// tile's phase offset is drawn from its stream so bursts
    /// desynchronise across the mesh.
    Bursty {
        /// Injection probability during the on phase, in `[0, 1]`.
        injection_rate: f64,
        /// Burst length `k` in cycles (≥ 1).
        on_cycles: u32,
        /// Idle gap `m` in cycles.
        off_cycles: u32,
    },
    /// Heterogeneous link loads: each tile's injection rate is drawn
    /// once as `mean_rate + sigma·N(0,1)` (clamped to `[0, 1]`), then
    /// held for the whole run — a Gaussian random link-switching load
    /// à la Booksim's `rndlds25.txt` tables.
    GaussianLinks {
        /// Mean per-tile injection rate in `[0, 1]`.
        mean_rate: f64,
        /// Standard deviation of the per-tile rates (≥ 0).
        sigma: f64,
    },
}

impl TrafficPattern {
    /// Validates the pattern parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for rates outside
    /// `[0, 1]`, a zero-length burst or a negative/non-finite sigma.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let rate_ok = |r: f64| r.is_finite() && (0.0..=1.0).contains(&r);
        match *self {
            TrafficPattern::Uniform { injection_rate } => {
                if !rate_ok(injection_rate) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "injection_rate",
                        reason: format!("rate {injection_rate} outside [0, 1]"),
                    });
                }
            }
            TrafficPattern::Bursty {
                injection_rate,
                on_cycles,
                ..
            } => {
                if !rate_ok(injection_rate) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "injection_rate",
                        reason: format!("rate {injection_rate} outside [0, 1]"),
                    });
                }
                if on_cycles == 0 {
                    return Err(WorkloadError::InvalidConfig {
                        name: "on_cycles",
                        reason: "burst length must be at least one cycle".into(),
                    });
                }
            }
            TrafficPattern::GaussianLinks { mean_rate, sigma } => {
                if !rate_ok(mean_rate) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "mean_rate",
                        reason: format!("rate {mean_rate} outside [0, 1]"),
                    });
                }
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(WorkloadError::InvalidConfig {
                        name: "sigma",
                        reason: format!("sigma {sigma} must be finite and non-negative"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One standard normal draw via Box–Muller (the vendored `rand` has no
/// Gaussian distribution).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Debug, Clone)]
enum Mode {
    Bernoulli {
        rate: f64,
    },
    Bursty {
        rate: f64,
        period: u64,
        on: u64,
        phase: u64,
    },
}

/// The per-tile traffic stream: a deterministic generator whose draws
/// come from `split_seed(base_seed, tile)`.
#[derive(Debug, Clone)]
pub struct TileTraffic {
    rng: StdRng,
    tile: usize,
    tiles: usize,
    mode: Mode,
}

impl TileTraffic {
    /// Builds tile `tile`'s stream for a validated `pattern`.
    ///
    /// The construction draws (burst phase, Gaussian rate) come from
    /// the tile's own stream, so streams stay independent and
    /// reproducible regardless of construction order.
    pub fn new(pattern: &TrafficPattern, base_seed: u64, tile: usize, tiles: usize) -> TileTraffic {
        let mut rng = StdRng::seed_from_u64(split_seed(base_seed, tile as u64));
        let mode = match *pattern {
            TrafficPattern::Uniform { injection_rate } => Mode::Bernoulli {
                rate: injection_rate,
            },
            TrafficPattern::Bursty {
                injection_rate,
                on_cycles,
                off_cycles,
            } => {
                let period = u64::from(on_cycles) + u64::from(off_cycles);
                Mode::Bursty {
                    rate: injection_rate,
                    period,
                    on: u64::from(on_cycles),
                    phase: rng.gen_range(0..period),
                }
            }
            TrafficPattern::GaussianLinks { mean_rate, sigma } => Mode::Bernoulli {
                rate: (mean_rate + sigma * standard_normal(&mut rng)).clamp(0.0, 1.0),
            },
        };
        TileTraffic {
            rng,
            tile,
            tiles,
            mode,
        }
    }

    /// The tile's effective injection rate (after any Gaussian draw).
    pub fn rate(&self) -> f64 {
        match self.mode {
            Mode::Bernoulli { rate } | Mode::Bursty { rate, .. } => rate,
        }
    }

    /// Advances one cycle: returns the destination tile of an injected
    /// flit, or `None` when the tile stays quiet this cycle.
    pub fn step(&mut self, cycle: u64) -> Option<usize> {
        let rate = match self.mode {
            Mode::Bernoulli { rate } => rate,
            Mode::Bursty {
                rate,
                period,
                on,
                phase,
            } => {
                if (cycle + phase) % period >= on {
                    return None;
                }
                rate
            }
        };
        if rate <= 0.0 || !self.rng.gen_bool(rate) {
            return None;
        }
        if self.tiles < 2 {
            return Some(self.tile);
        }
        // Uniform over the other tiles.
        let mut dst = self.rng.gen_range(0..self.tiles - 1);
        if dst >= self.tile {
            dst += 1;
        }
        Some(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pattern: &TrafficPattern, seed: u64, tile: usize, cycles: u64) -> Vec<Option<usize>> {
        let mut g = TileTraffic::new(pattern, seed, tile, 16);
        (0..cycles).map(|c| g.step(c)).collect()
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(TrafficPattern::Uniform {
            injection_rate: 1.5
        }
        .validate()
        .is_err());
        assert!(TrafficPattern::Bursty {
            injection_rate: 0.5,
            on_cycles: 0,
            off_cycles: 3
        }
        .validate()
        .is_err());
        assert!(TrafficPattern::GaussianLinks {
            mean_rate: 0.2,
            sigma: -0.1
        }
        .validate()
        .is_err());
        assert!(TrafficPattern::Uniform {
            injection_rate: 0.25
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn streams_are_deterministic_and_seed_split() {
        let p = TrafficPattern::Uniform {
            injection_rate: 0.4,
        };
        assert_eq!(run(&p, 7, 3, 200), run(&p, 7, 3, 200));
        assert_ne!(run(&p, 7, 3, 200), run(&p, 7, 4, 200));
        assert_ne!(run(&p, 7, 3, 200), run(&p, 8, 3, 200));
    }

    #[test]
    fn uniform_rate_is_respected() {
        let p = TrafficPattern::Uniform {
            injection_rate: 0.3,
        };
        let hits = run(&p, 11, 0, 4000).iter().flatten().count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed rate {rate}");
        // Destinations never point at the source.
        assert!(run(&p, 11, 5, 4000).iter().flatten().all(|&d| d != 5));
    }

    #[test]
    fn bursty_respects_on_off_gating() {
        let p = TrafficPattern::Bursty {
            injection_rate: 1.0,
            on_cycles: 4,
            off_cycles: 6,
        };
        let seq = run(&p, 3, 2, 100);
        let hits = seq.iter().flatten().count();
        // rate 1.0 during exactly 4 of every 10 cycles.
        assert_eq!(hits, 40);
        // The on-phase is contiguous modulo the period.
        let on_cycles: Vec<u64> = seq
            .iter()
            .enumerate()
            .filter_map(|(c, d)| d.map(|_| c as u64 % 10))
            .collect();
        let mut distinct = on_cycles.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn gaussian_rates_vary_per_tile_but_stay_clamped() {
        let p = TrafficPattern::GaussianLinks {
            mean_rate: 0.25,
            sigma: 0.15,
        };
        let rates: Vec<f64> = (0..64)
            .map(|t| TileTraffic::new(&p, 42, t, 64).rate())
            .collect();
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!((mean - 0.25).abs() < 0.1, "mean rate {mean}");
        // Not all identical — the loads are heterogeneous.
        assert!(rates.iter().any(|&r| (r - rates[0]).abs() > 1e-6));
    }

    #[test]
    fn degenerate_single_tile_mesh_self_loops() {
        let p = TrafficPattern::Uniform {
            injection_rate: 1.0,
        };
        let mut g = TileTraffic::new(&p, 1, 0, 1);
        assert_eq!(g.step(0), Some(0));
    }
}
