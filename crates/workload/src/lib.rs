//! # psnt-workload — the chip-scale workload engine
//!
//! The paper closes by arguing its sensor "can be used for every type
//! of architecture on a systematic basis". This crate supplies the
//! *architecture*: a many-core CUT modelled as an NoC mesh whose
//! routers draw supply current as synthetic traffic moves through
//! them, so campaigns measure the noise a realistic workload induces
//! rather than hand-authored tile waveforms.
//!
//! * [`traffic`] — deterministic, seed-split traffic generators
//!   (uniform Bernoulli, bursty `k`-on/`m`-off, Gaussian link loads à
//!   la Booksim's random link-load tables);
//! * [`noc`] — the mesh, XY routing and the per-cycle activity trace;
//! * [`stepper`] — [`CycleStepper`], the cycle-stepped co-simulation
//!   core: activity source → current map → incremental grid state
//!   ([`PowerGrid::solve_delta`](psnt_pdn::grid::PowerGrid::solve_delta)),
//!   with a sanctioned [`Actuation`](psnt_control::Actuation) door for
//!   closed-loop control;
//! * [`campaign`] — [`NocWorkload`]: the batch entry points, now thin
//!   drivers over the stepper (bit-identical to the old fused loop) →
//!   in-memory or streamed multi-site scan campaigns;
//! * [`mitigated`] — [`NocWorkload::run_mitigated`], the closed loop:
//!   per-cycle thermometer sensing → delayed codes → a
//!   [`Mitigator`](psnt_control::Mitigator) actuating the next cycle.
//!
//! # Example
//!
//! ```
//! use psnt_ctx::RunCtx;
//! use psnt_engine::RetryPolicy;
//! use psnt_workload::{NocWorkload, NocWorkloadConfig};
//!
//! let workload = NocWorkload::new(NocWorkloadConfig::small_2x2())?;
//! let out = workload.run(&mut RunCtx::serial().with_seed(7), RetryPolicy::none())?;
//! assert_eq!(out.result.result.sites.len(), 4);
//! assert!(out.profile.worst_droop() > 0.0);
//! # Ok::<(), psnt_workload::WorkloadError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod checkpoint;
pub mod error;
pub mod mitigated;
pub mod noc;
pub mod stepper;
pub mod traffic;

pub use campaign::{
    NocCampaignResult, NocWorkload, NocWorkloadConfig, NoiseProfile, StreamedNocResult, WindowStats,
};
pub use checkpoint::{CheckpointPolicy, MitigatedCheckpoint, WorkloadCheckpoint};
pub use error::WorkloadError;
pub use mitigated::{ActuationSample, MitigatedNocResult};
pub use noc::{ActivityTrace, NocMesh};
pub use stepper::{CycleStepper, StepperSnapshot};
pub use traffic::{TileTraffic, TrafficPattern};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::NocWorkload>();
        assert_send_sync::<crate::ActivityTrace>();
        assert_send_sync::<crate::TrafficPattern>();
        assert_send_sync::<crate::WorkloadError>();
    }
}
