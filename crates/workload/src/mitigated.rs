//! The closed-loop co-simulation driver: stepper + sensor + mitigator.
//!
//! [`NocWorkload::run_mitigated`] closes the loop the paper gestures
//! at: every cycle, the [`CycleStepper`] advances the chip one cycle,
//! each monitor site senses its local rail with the instantaneous
//! [`SensorSystem::measure_value`] path (the causal sensing entry
//! point — the windowed `measure_at` would peek into the *next*
//! cycle's waveform), and the thermometer levels travel through a
//! [`DelayLine`] modelling code-distribution latency before a
//! [`Mitigator`] turns them into the [`Actuation`] the stepper honours
//! from the following cycle.
//!
//! Degraded sensing never desyncs the loop: a `psnt-fault`
//! [`SitePanic`](psnt_fault::Fault::SitePanic) on the context knocks
//! out that site's reading for exactly one mid-run frame (cycle
//! `cycles / 2`); the frame still ships, the affected domain reports
//! `None`, and every built-in controller holds its previous actuation
//! for it.

use psnt_cells::units::Voltage;
use psnt_control::{Actuation, ControlFrame, DelayLine, Mitigator, SiteReading};
use psnt_core::SensorSystem;
use psnt_ctx::RunCtx;
use serde::{Deserialize, Serialize};

use crate::campaign::{NocWorkload, NoiseProfile};
use crate::checkpoint::{CheckpointPolicy, MitigatedCheckpoint, CHECKPOINT_VERSION};
use crate::error::WorkloadError;
use crate::stepper::CycleStepper;

/// Millivolt bucket edges of the `control.droop_depth_mv` histogram.
const DROOP_BUCKETS_MV: [f64; 6] = [10.0, 20.0, 40.0, 60.0, 80.0, 100.0];

/// The actuation in force during one cycle, summarised per actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuationSample {
    /// The cycle the actuation applied to.
    pub cycle: usize,
    /// Domains with a clock stretch engaged (scale below 1.0).
    pub stretched: usize,
    /// Domains holding new traffic injections.
    pub throttled: usize,
    /// Domains with a supply boost engaged.
    pub boosted: usize,
}

impl ActuationSample {
    /// True when no actuator was engaged anywhere this cycle.
    pub fn is_neutral(&self) -> bool {
        self.stretched == 0 && self.throttled == 0 && self.boosted == 0
    }
}

/// Everything a closed-loop run records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigatedNocResult {
    /// The policy name, or `"open-loop"` when no mitigator ran.
    pub policy: String,
    /// Code-distribution latency of the run, cycles.
    pub latency: usize,
    /// The windowed noise profile (same shape as the batch paths).
    pub profile: NoiseProfile,
    /// Per-cycle droop depth below nominal at the grid hotspot, volts
    /// (post-boost — what the logic actually sees).
    pub droop_trace: Vec<f64>,
    /// Per-cycle actuation summary.
    pub actuation_trace: Vec<ActuationSample>,
    /// Deepest per-cycle droop, volts.
    pub worst_droop: f64,
    /// The cycle the deepest droop occurred at.
    pub worst_droop_cycle: usize,
    /// Cycles that ran with any non-neutral actuation in force.
    pub engaged_cycles: u64,
    /// Site readings dropped by faults over the run.
    pub degraded_readings: u64,
    /// Peak number of flits held back by throttles at any one cycle.
    pub deferred_peak: usize,
}

impl MitigatedNocResult {
    /// Droop duration: cycles whose hotspot sat deeper than `depth_v`
    /// below nominal.
    pub fn cycles_deeper_than(&self, depth_v: f64) -> usize {
        self.droop_trace.iter().filter(|&&d| d > depth_v).count()
    }

    /// Mean per-cycle droop depth, volts (0 for an empty trace).
    pub fn mean_droop(&self) -> f64 {
        if self.droop_trace.is_empty() {
            0.0
        } else {
            self.droop_trace.iter().sum::<f64>() / self.droop_trace.len() as f64
        }
    }

    /// Number of transitions between neutral and engaged actuation
    /// over the run — the limit-cycle detector the stability tests
    /// bound: a well-damped controller toggles at most once per burst
    /// edge, a limit-cycling one toggles every few cycles.
    pub fn actuation_toggles(&self) -> usize {
        self.actuation_trace
            .windows(2)
            .filter(|w| w[0].is_neutral() != w[1].is_neutral())
            .count()
    }
}

impl NocWorkload {
    /// Runs the workload cycle-stepped with an optional closed-loop
    /// droop mitigator observing the thermometer codes at `latency`
    /// cycles of code-distribution delay.
    ///
    /// With `mitigator: None` the loop is open and the noise profile is
    /// **bit-identical** to [`NocWorkload::run`]'s (same seed, any
    /// worker count) — the baseline every mitigation arm compares
    /// against.
    ///
    /// # Errors
    ///
    /// Propagates solver, sensor and actuation-interface errors.
    pub fn run_mitigated(
        &self,
        ctx: &mut RunCtx<'_>,
        mitigator: Option<&mut dyn Mitigator>,
        latency: usize,
    ) -> Result<MitigatedNocResult, WorkloadError> {
        self.run_mitigated_checkpointed(ctx, mitigator, latency, &CheckpointPolicy::none(), None)
    }

    /// [`NocWorkload::run_mitigated`] under a checkpoint policy,
    /// optionally resuming from a snapshot. The closed loop snapshots
    /// everything the driver holds — solve state, traces, the delay
    /// line's in-flight frames and the mitigator's own state (via
    /// [`Mitigator::state_snapshot`]) — so an interrupted-then-resumed
    /// run is **bit-identical** to an uninterrupted one, including the
    /// actuation trace.
    ///
    /// A policy whose [`Mitigator::state_snapshot`] returns `None`
    /// resumes with its controller cold; the built-in controllers all
    /// support snapshots.
    ///
    /// # Errors
    ///
    /// As [`NocWorkload::run_mitigated`], plus
    /// [`WorkloadError::Interrupted`] when the context's supervisor
    /// trips (a final checkpoint is written first when a path is
    /// configured), [`WorkloadError::Checkpoint`] on snapshot I/O
    /// failures, and [`WorkloadError::InvalidConfig`] when the resume
    /// snapshot's seed, policy, latency, or geometry does not match
    /// this run.
    pub fn run_mitigated_checkpointed(
        &self,
        ctx: &mut RunCtx<'_>,
        mut mitigator: Option<&mut dyn Mitigator>,
        latency: usize,
        ckpt_policy: &CheckpointPolicy,
        resume: Option<&MitigatedCheckpoint>,
    ) -> Result<MitigatedNocResult, WorkloadError> {
        let cfg = self.config();
        let tiles = self.mesh().tiles();
        let dt = cfg.cycle_time;
        let cycles = cfg.cycles;
        let policy = mitigator
            .as_ref()
            .map_or("open-loop", |m| m.name())
            .to_string();
        let sensor = SensorSystem::new(cfg.sensor.clone())?;
        let grid = self.campaign().floorplan().grid();
        let n = grid.tiles();
        let v_nom = grid.v_pad().volts();

        // Site attribution: floorplan sites address grid nodes; the
        // controller reasons in power domains (mesh tiles).
        let mut node_domain = vec![0usize; n];
        for t in 0..tiles {
            for &nd in self.block_nodes(t) {
                node_domain[nd] = t;
            }
        }
        let site_nodes: Vec<usize> = self
            .campaign()
            .floorplan()
            .sites()
            .iter()
            .map(|s| s.tile)
            .collect();
        let panicking: Vec<usize> = ctx
            .fault_plan()
            .map(|p| p.panicking_sites())
            .unwrap_or_default();
        let drop_cycle = cycles / 2;

        let mut stepper = CycleStepper::new(self, ctx)?;
        if let Some(obs) = ctx.observer() {
            obs.metrics
                .counter_add("workload.flits", stepper.planned_flits());
        }
        let mut span = ctx.observer().map(|o| {
            o.begin_span("control_loop")
                .attr("policy", &policy.as_str())
                .attr("latency", &(latency as u64))
                .attr("cycles", &(cycles as u64))
                .sim_interval_ps(0.0, (dt * cycles as f64).picoseconds())
        });

        let mut delay = DelayLine::new(latency);
        let mut act = Actuation::neutral(tiles);
        let mut stats = self.window_stats_shell();
        let mut droop_trace = Vec::with_capacity(cycles);
        let mut actuation_trace = Vec::with_capacity(cycles);
        let mut worst_droop = 0.0f64;
        let mut worst_droop_cycle = 0usize;
        let mut engaged_cycles = 0u64;
        let mut degraded_readings = 0u64;
        let mut deferred_peak = 0usize;

        let me = cfg.measure_every;
        let windows_n = self.windows();
        let mut start = 0usize;
        if let Some(ckpt) = resume {
            let invalid = |reason: String| WorkloadError::InvalidConfig {
                name: "resume",
                reason,
            };
            if ckpt.version != CHECKPOINT_VERSION {
                return Err(invalid(format!(
                    "checkpoint schema version {}, this build reads {CHECKPOINT_VERSION}",
                    ckpt.version
                )));
            }
            if ckpt.seed != ctx.seed() {
                return Err(invalid(format!(
                    "checkpoint was captured under seed {}, this run uses {}",
                    ckpt.seed,
                    ctx.seed()
                )));
            }
            if ckpt.policy != policy {
                return Err(invalid(format!(
                    "checkpoint ran policy {:?}, this run wires {policy:?}",
                    ckpt.policy
                )));
            }
            stepper.restore(&ckpt.stepper)?;
            let done = stepper.cycle();
            let touched = done.div_ceil(me).min(windows_n);
            if ckpt.stats_done.len() != touched
                || ckpt.droop_trace.len() != done
                || ckpt.actuation_trace.len() != done
            {
                return Err(invalid(format!(
                    "traces cover {} windows / {} cycles, cycle {done} expects {touched} / {done}",
                    ckpt.stats_done.len(),
                    ckpt.droop_trace.len()
                )));
            }
            stats[..touched].clone_from_slice(&ckpt.stats_done);
            droop_trace.extend_from_slice(&ckpt.droop_trace);
            actuation_trace.extend_from_slice(&ckpt.actuation_trace);
            worst_droop = ckpt.worst_droop;
            worst_droop_cycle = ckpt.worst_droop_cycle;
            engaged_cycles = ckpt.engaged_cycles;
            degraded_readings = ckpt.degraded_readings;
            deferred_peak = ckpt.deferred_peak;
            delay = DelayLine::with_in_flight(latency, ckpt.in_flight.clone())?;
            act = ckpt.act.clone();
            if let Some(state) = &ckpt.mitigator_state {
                let Some(m) = mitigator.as_deref_mut() else {
                    return Err(invalid(
                        "checkpoint carries controller state but no mitigator is wired".into(),
                    ));
                };
                if !m.restore_state(state) {
                    return Err(invalid(format!(
                        "controller {policy:?} refused its state snapshot"
                    )));
                }
            }
            start = done;
        }

        let sup = ctx.supervisor().clone();
        let cancel_at = ctx.fault_plan().and_then(|p| p.cancel_at_cycle());
        let trip_deadline_at = ctx
            .fault_plan()
            .is_some_and(|p| p.deadline_trip())
            .then_some(cycles / 2);
        let seed = ctx.seed();
        let cadence = ckpt_policy
            .every
            .or_else(|| sup.budget().checkpoint_cadence());

        for c in start..cycles {
            if cancel_at == Some(c as u64) {
                sup.token().cancel();
            }
            if trip_deadline_at == Some(c) {
                sup.force_expire();
            }
            let want_cadence_snap = cadence
                .zip(ckpt_policy.path.as_deref())
                .is_some_and(|(every, _)| c > start && (c as u64).is_multiple_of(every));
            let tripped = sup.check().err();
            if tripped.is_some() || want_cadence_snap {
                if let Some(path) = ckpt_policy.path.as_deref() {
                    let done = stepper.cycle();
                    let touched = done.div_ceil(me).min(windows_n);
                    MitigatedCheckpoint {
                        version: CHECKPOINT_VERSION,
                        seed,
                        policy: policy.clone(),
                        stepper: stepper.snapshot(),
                        stats_done: stats[..touched].to_vec(),
                        droop_trace: droop_trace.clone(),
                        actuation_trace: actuation_trace.clone(),
                        worst_droop,
                        worst_droop_cycle,
                        engaged_cycles,
                        degraded_readings,
                        deferred_peak,
                        in_flight: delay.in_flight().cloned().collect(),
                        act: act.clone(),
                        mitigator_state: mitigator.as_deref().and_then(|m| m.state_snapshot()),
                    }
                    .save(path)?;
                }
                if let Some(reason) = tripped {
                    if let (Some(obs), Some(sp)) = (ctx.observer(), span.take()) {
                        obs.end_span(sp);
                    }
                    return Err(WorkloadError::Interrupted(reason));
                }
            }
            sup.charge_events(1);
            stepper.step()?;
            self.accumulate_window(&mut stats, c, &stepper, n);

            let droop = v_nom - stepper.hotspot().1;
            if droop > worst_droop {
                worst_droop = droop;
                worst_droop_cycle = c;
            }
            droop_trace.push(droop);
            deferred_peak = deferred_peak.max(stepper.deferred_backlog());
            let a = stepper.actuation();
            if !a.is_neutral() {
                engaged_cycles += 1;
            }
            actuation_trace.push(ActuationSample {
                cycle: c,
                stretched: (0..tiles).filter(|&t| a.stretch(t) < 1.0).count(),
                throttled: (0..tiles).filter(|&t| a.throttled(t)).count(),
                boosted: (0..tiles).filter(|&t| a.boost(t) > 0.0).count(),
            });

            // Sense frame → delay line → mitigator → next cycle's
            // actuation. Sensing is per-site and instantaneous; a
            // panicked site degrades to `None` for its one faulted
            // frame instead of aborting the loop.
            if let Some(m) = mitigator.as_deref_mut() {
                let at = dt * (c as f64 + 0.5);
                let mut readings = Vec::with_capacity(site_nodes.len());
                for (k, &nd) in site_nodes.iter().enumerate() {
                    let level = if c == drop_cycle && panicking.contains(&k) {
                        degraded_readings += 1;
                        None
                    } else {
                        let vdd = Voltage::from_v(stepper.voltages()[nd]);
                        Some(
                            sensor
                                .measure_value(vdd, Voltage::from_v(0.0), at)?
                                .hs_word
                                .level,
                        )
                    };
                    readings.push(SiteReading {
                        domain: node_domain[nd],
                        level,
                    });
                }
                let frame = ControlFrame {
                    cycle: c as u64,
                    readings,
                };
                if let Some(observed) = delay.push(frame) {
                    m.observe(&observed, &mut act);
                    stepper.apply(&act)?;
                }
            }
        }

        if let Some(obs) = ctx.observer() {
            obs.metrics
                .counter_add("workload.delta_solves", stepper.delta_solves());
            obs.metrics
                .counter_add("control.engaged_cycles", engaged_cycles);
            obs.metrics
                .counter_add("control.degraded_readings", degraded_readings);
            obs.metrics
                .gauge_set_max("control.deferred_peak", deferred_peak as f64);
            let h = obs
                .metrics
                .histogram("control.droop_depth_mv", &DROOP_BUCKETS_MV);
            for &d in &droop_trace {
                obs.metrics.record(h, d * 1000.0);
            }
        }
        if let (Some(obs), Some(sp)) = (ctx.observer(), span.take()) {
            obs.end_span(sp);
        }

        Ok(MitigatedNocResult {
            policy,
            latency,
            profile: NoiseProfile {
                v_nom,
                windows: stats,
                flits: stepper.planned_flits(),
            },
            droop_trace,
            actuation_trace,
            worst_droop,
            worst_droop_cycle,
            engaged_cycles,
            degraded_readings,
            deferred_peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::NocWorkloadConfig;
    use crate::traffic::TrafficPattern;
    use psnt_cells::units::Current;
    use psnt_control::{SupplyBoost, ThresholdThrottle};
    use psnt_engine::RetryPolicy;
    use psnt_fault::{Fault, FaultPlan};

    /// A chip whose rails sit inside the sensor's dynamic range so
    /// thermometer levels actually move with the droop.
    fn control_chip() -> NocWorkloadConfig {
        let mut cfg = NocWorkloadConfig::small_2x2();
        cfg.v_pad = Voltage::from_v(1.0);
        cfg.flit_current = Current::from_ma(40.0);
        cfg.pattern = TrafficPattern::Bursty {
            injection_rate: 0.9,
            on_cycles: 12,
            off_cycles: 18,
        };
        cfg.cycles = 120;
        cfg.measure_every = 30;
        cfg
    }

    #[test]
    fn open_loop_profile_is_bit_identical_to_batch() {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let batch = w
            .run(&mut RunCtx::serial().with_seed(23), RetryPolicy::none())
            .unwrap();
        let open = w
            .run_mitigated(&mut RunCtx::serial().with_seed(23), None, 0)
            .unwrap();
        assert_eq!(open.profile, batch.profile);
        assert_eq!(open.policy, "open-loop");
        assert_eq!(open.droop_trace.len(), 60);
        assert_eq!(open.engaged_cycles, 0);
        assert!((open.worst_droop - open.droop_trace[open.worst_droop_cycle]).abs() < 1e-15);
    }

    #[test]
    fn throttle_mitigation_cuts_droop_depth() {
        let w = NocWorkload::new(control_chip()).unwrap();
        let base = w
            .run_mitigated(&mut RunCtx::serial().with_seed(5), None, 0)
            .unwrap();
        // Engage whenever any element fails (level ≤ 6 of 7), release
        // only fully recovered rails.
        let mut ctrl = ThresholdThrottle::new(4, 6, 7).unwrap();
        let out = w
            .run_mitigated(&mut RunCtx::serial().with_seed(5), Some(&mut ctrl), 0)
            .unwrap();
        assert!(out.engaged_cycles > 0, "controller engaged");
        assert!(
            out.worst_droop < base.worst_droop,
            "throttling must shallow the droop: {} vs {}",
            out.worst_droop,
            base.worst_droop
        );
        assert!(out.deferred_peak > 0, "throttle held flits back");
    }

    #[test]
    fn boost_mitigation_lifts_the_hotspot() {
        let w = NocWorkload::new(control_chip()).unwrap();
        let base = w
            .run_mitigated(&mut RunCtx::serial().with_seed(6), None, 0)
            .unwrap();
        let mut ctrl = SupplyBoost::new(4, 6, 7, Voltage::from_v(0.04)).unwrap();
        let out = w
            .run_mitigated(&mut RunCtx::serial().with_seed(6), Some(&mut ctrl), 0)
            .unwrap();
        assert!(out.engaged_cycles > 0);
        assert!(out.worst_droop < base.worst_droop);
        // Boost defers nothing.
        assert_eq!(out.deferred_peak, 0);
    }

    /// Observes every frame, actuates nothing — the probe the desync
    /// test uses to watch the loop's frame stream.
    struct NullPolicy {
        frames: usize,
        degraded_frames: usize,
    }

    impl Mitigator for NullPolicy {
        fn name(&self) -> &'static str {
            "null"
        }

        fn observe(&mut self, frame: &ControlFrame, _act: &mut Actuation) {
            self.frames += 1;
            if frame.readings.iter().any(|r| r.level.is_none()) {
                self.degraded_frames += 1;
            }
        }
    }

    #[test]
    fn site_panic_degrades_one_frame_without_desync() {
        let w = NocWorkload::new(control_chip()).unwrap();
        let probe = || NullPolicy {
            frames: 0,
            degraded_frames: 0,
        };
        let mut healthy_ctrl = probe();
        let healthy = w
            .run_mitigated(
                &mut RunCtx::serial().with_seed(9),
                Some(&mut healthy_ctrl),
                2,
            )
            .unwrap();
        let mut faulted_ctrl = probe();
        let mut ctx = RunCtx::serial()
            .with_seed(9)
            .with_fault_plan(FaultPlan::new().with(Fault::SitePanic { site: 1 }));
        let faulted = w
            .run_mitigated(&mut ctx, Some(&mut faulted_ctrl), 2)
            .unwrap();
        assert_eq!(faulted.degraded_readings, 1, "one frame, one site");
        assert_eq!(healthy.degraded_readings, 0);
        // The delayed frame stream kept its 1:1 cycle mapping: same
        // frame count, exactly one carrying a degraded reading.
        assert_eq!(faulted_ctrl.frames, 120 - 2);
        assert_eq!(faulted_ctrl.frames, healthy_ctrl.frames);
        assert_eq!(faulted_ctrl.degraded_frames, 1);
        assert_eq!(faulted.profile, healthy.profile, "loop never desynced");
        assert_eq!(faulted.actuation_trace, healthy.actuation_trace);
    }

    #[test]
    fn mitigated_checkpoint_resumes_bit_identically() {
        use psnt_sup::Interrupt;
        let w = NocWorkload::new(control_chip()).unwrap();
        let mk = || ThresholdThrottle::new(4, 6, 7).unwrap();
        let mut ctrl = mk();
        let full = w
            .run_mitigated(&mut RunCtx::serial().with_seed(5), Some(&mut ctrl), 2)
            .unwrap();
        assert!(full.engaged_cycles > 0, "loop actually closed");
        let path =
            std::env::temp_dir().join(format!("psnt-ckpt-mitigated-{}.json", std::process::id()));
        let mut ctrl2 = mk();
        let mut ctx = RunCtx::serial()
            .with_seed(5)
            .with_fault_plan(FaultPlan::new().with(Fault::CancelAt { cycle: 70 }));
        let err = w
            .run_mitigated_checkpointed(
                &mut ctx,
                Some(&mut ctrl2),
                2,
                &CheckpointPolicy::to_path(&path, 1000),
                None,
            )
            .unwrap_err();
        assert_eq!(err, WorkloadError::Interrupted(Interrupt::Cancelled));
        let ckpt = MitigatedCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt.cycle(), 70);
        assert_eq!(ckpt.policy, "threshold-throttle");
        assert_eq!(ckpt.in_flight.len(), 2, "delay line captured in flight");
        assert!(ckpt.mitigator_state.is_some(), "controller state captured");
        // Resume with a COLD controller: restore_state reinstates it.
        let mut ctrl3 = mk();
        let resumed = w
            .run_mitigated_checkpointed(
                &mut RunCtx::serial().with_seed(5),
                Some(&mut ctrl3),
                2,
                &CheckpointPolicy::none(),
                Some(&ckpt),
            )
            .unwrap();
        assert_eq!(resumed, full, "interrupted-then-resumed ≡ uninterrupted");
        // Resuming without the controller the checkpoint ran is refused.
        let err = w
            .run_mitigated_checkpointed(
                &mut RunCtx::serial().with_seed(5),
                None,
                2,
                &CheckpointPolicy::none(),
                Some(&ckpt),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::InvalidConfig { name: "resume", .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mitigated_run_emits_control_telemetry() {
        use psnt_obs::Observer;
        let w = NocWorkload::new(control_chip()).unwrap();
        let mut obs = Observer::ring(4096);
        let mut ctrl = ThresholdThrottle::new(4, 6, 7).unwrap();
        let mut ctx = RunCtx::serial().with_seed(5).with_observer(&mut obs);
        let out = w.run_mitigated(&mut ctx, Some(&mut ctrl), 1).unwrap();
        drop(ctx);
        assert_eq!(
            obs.metrics.counter_value("control.engaged_cycles"),
            out.engaged_cycles
        );
        let h = obs
            .metrics
            .histogram_value("control.droop_depth_mv")
            .unwrap();
        assert_eq!(h.count(), 120, "one droop sample per cycle");
        assert!(h.mean().unwrap() >= 0.0);
    }
}
