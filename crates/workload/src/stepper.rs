//! The cycle-stepped co-simulation core.
//!
//! [`CycleStepper`] decomposes one workload cycle into the stages the
//! batch pipeline used to fuse: **activity source** (the seed-split
//! injection plan from [`ActivityTrace::plan`], walked flit-by-flit) →
//! **current map** (per-tile switching counts scaled by the actuation's
//! clock-stretch into node loads) → **grid state** (one incremental
//! [`PowerGrid::solve_delta`](psnt_pdn::grid::PowerGrid::solve_delta)
//! per changed cycle, plus the supply-boost overlay). The sense-frame
//! stage sits in the drivers: the batch paths sample node voltages into
//! rail waveforms, the mitigated driver senses thermometer codes with
//! [`SensorSystem::measure_value`](psnt_core::SensorSystem::measure_value)
//! every cycle.
//!
//! Driven with a neutral [`Actuation`], the stepper is **bit-identical**
//! to the old fused loop: flights advance one hop per cycle exactly as
//! the trace overlay accumulated them (`u32` adds commute), a stretch
//! scale of 1.0 reproduces raw counts exactly (`⌊count · 1.0⌋ =
//! count`), changed-tile detection walks tiles in the same order with
//! the same load arithmetic, and a zero boost skips the overlay
//! entirely so solutions are returned by reference. The equivalence
//! proptests in `tests/stepper_equiv.rs` pin this cycle by cycle.
//!
//! Control enters through exactly one door: [`CycleStepper::apply`]
//! stores the [`Actuation`] a [`Mitigator`](psnt_control::Mitigator)
//! derived from cycle *t*'s codes, and the next [`CycleStepper::step`]
//! (cycle *t + 1*) honours it — throttled tiles defer their planned
//! injections into a FIFO that drains one flit per cycle on release,
//! stretched tiles scale their switching counts, boosted tiles see
//! their block nodes lifted after the solve.

use std::collections::VecDeque;

use psnt_control::Actuation;
use psnt_ctx::RunCtx;
use psnt_pdn::grid::GridSolution;
use serde::{Deserialize, Serialize};

use crate::campaign::NocWorkload;
use crate::error::WorkloadError;
use crate::noc::ActivityTrace;

/// A flit in flight: its XY route and the hop it occupies this cycle.
#[derive(Debug, Clone)]
struct Flight {
    route: Vec<usize>,
    hop: usize,
}

/// A serializable image of a [`CycleStepper`]'s dynamic state.
///
/// The injection plan is deliberately **not** captured: it is a pure
/// function of the run seed and workload config, so a resumed run
/// rebuilds it through [`CycleStepper::new`] and
/// [`CycleStepper::restore`] only reinstates the cursors into it. That
/// keeps snapshots small (no replanning data) and makes a stale
/// snapshot detectable — restoring against a different seed or config
/// fails fast on the planned-flit fingerprint instead of silently
/// diverging.
///
/// The grid solution is captured verbatim rather than re-solved at
/// restore: the delta-solve chain is bit-exact only when it continues
/// from the same floating-point state it was interrupted in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepperSnapshot {
    cursors: Vec<usize>,
    deferred: Vec<Vec<u32>>,
    flights: Vec<(Vec<usize>, usize)>,
    counts: Vec<u32>,
    eff_counts: Vec<u32>,
    prev_eff: Vec<u32>,
    sol: Option<GridSolution>,
    boosted: Vec<f64>,
    boost_active: bool,
    act: Actuation,
    cycle: usize,
    delta_solves: u64,
    planned_flits: u64,
    spawned_flits: u64,
}

impl StepperSnapshot {
    /// The cycle the snapshot was taken at (the next
    /// [`CycleStepper::step`] after restore simulates this index).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Flits the captured run had released into the mesh.
    pub fn spawned_flits(&self) -> u64 {
        self.spawned_flits
    }
}

/// The per-cycle co-simulation engine over one [`NocWorkload`].
///
/// Construct with [`CycleStepper::new`], then call
/// [`CycleStepper::step`] once per cycle; the grid-state accessors
/// ([`voltages`](CycleStepper::voltages),
/// [`hotspot`](CycleStepper::hotspot),
/// [`solution`](CycleStepper::solution)) describe the cycle most
/// recently stepped.
#[derive(Debug)]
pub struct CycleStepper<'w> {
    workload: &'w NocWorkload,
    /// Planned `(cycle, dst)` injections per source tile, cycle order.
    injections: Vec<Vec<(u32, u32)>>,
    /// Next unconsumed plan entry per source tile.
    cursors: Vec<usize>,
    /// Destinations of flits a throttle held back, per source tile.
    deferred: Vec<VecDeque<u32>>,
    flights: Vec<Flight>,
    counts: Vec<u32>,
    eff_counts: Vec<u32>,
    prev_eff: Vec<u32>,
    sol: Option<GridSolution>,
    boosted: Vec<f64>,
    boost_active: bool,
    act: Actuation,
    cycle: usize,
    delta_solves: u64,
    planned_flits: u64,
    spawned_flits: u64,
}

impl<'w> CycleStepper<'w> {
    /// Plans the traffic (in parallel on the context's engine,
    /// seed-split from `ctx.seed()` — bit-identical at any worker
    /// count) and arms the stepper at cycle 0 with a neutral actuation.
    ///
    /// # Errors
    ///
    /// Propagates [`ActivityTrace::plan`] validation errors.
    pub fn new(
        workload: &'w NocWorkload,
        ctx: &mut RunCtx<'_>,
    ) -> Result<CycleStepper<'w>, WorkloadError> {
        let cfg = workload.config();
        let injections = ActivityTrace::plan(ctx, workload.mesh(), &cfg.pattern, cfg.cycles)?;
        let tiles = workload.mesh().tiles();
        let planned_flits = injections.iter().map(|v| v.len() as u64).sum();
        Ok(CycleStepper {
            workload,
            injections,
            cursors: vec![0; tiles],
            deferred: vec![VecDeque::new(); tiles],
            flights: Vec::new(),
            counts: vec![0; tiles],
            eff_counts: vec![0; tiles],
            prev_eff: vec![0; tiles],
            sol: None,
            boosted: Vec::new(),
            boost_active: false,
            act: Actuation::neutral(tiles),
            cycle: 0,
            delta_solves: 0,
            planned_flits,
            spawned_flits: 0,
        })
    }

    /// Applies `act` to every subsequent cycle (the sanctioned mutation
    /// interface — cycle *t*'s observation actuates cycle *t + 1*).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] when the actuation's
    /// domain count differs from the mesh tile count.
    pub fn apply(&mut self, act: &Actuation) -> Result<(), WorkloadError> {
        let tiles = self.workload.mesh().tiles();
        if act.domains() != tiles {
            return Err(WorkloadError::InvalidConfig {
                name: "actuation",
                reason: format!("{} domains for a {tiles}-tile mesh", act.domains()),
            });
        }
        self.act = act.clone();
        Ok(())
    }

    /// Simulates one cycle through all stages; returns the index of the
    /// cycle just computed. Stepping past the planned horizon is legal:
    /// injections are exhausted and activity decays to idle.
    ///
    /// # Errors
    ///
    /// Propagates PDN solver errors.
    pub fn step(&mut self) -> Result<usize, WorkloadError> {
        let c = self.cycle;
        let tiles = self.workload.mesh().tiles();

        // Stage 1 — activity source: spawn this cycle's planned
        // injections; throttled tiles defer them instead. A released
        // backlog drains only into idle injection slots (cycles the
        // plan injects nothing), so a tile's injection rate never
        // exceeds the pattern's own peak and lifting a throttle cannot
        // re-create the droop it avoided. Then advance every flight
        // one hop. Counts are additive, so flight order is irrelevant
        // and the neutral path reproduces the trace overlay exactly.
        for t in 0..tiles {
            let throttled = self.act.throttled(t);
            let mut injected = false;
            while self.cursors[t] < self.injections[t].len()
                && self.injections[t][self.cursors[t]].0 as usize == c
            {
                let (_, dst) = self.injections[t][self.cursors[t]];
                self.cursors[t] += 1;
                if throttled {
                    self.deferred[t].push_back(dst);
                } else {
                    self.spawn(t, dst);
                    injected = true;
                }
            }
            if !throttled && !injected {
                if let Some(dst) = self.deferred[t].pop_front() {
                    self.spawn(t, dst);
                }
            }
        }
        self.counts.fill(0);
        let CycleStepper {
            flights, counts, ..
        } = self;
        flights.retain_mut(|f| {
            counts[f.route[f.hop]] += 1;
            f.hop += 1;
            f.hop < f.route.len()
        });

        // Stage 2 — current map: clock-stretch scales activity. At
        // scale 1.0, ⌊count · 1.0⌋ recovers the raw count exactly.
        for t in 0..tiles {
            self.eff_counts[t] = (f64::from(self.counts[t]) * self.act.stretch(t)).floor() as u32;
        }

        // Stage 3 — grid state: full sparse solve at cycle 0, then one
        // incremental delta per cycle whose effective counts moved.
        let grid = self.workload.campaign().floorplan().grid();
        let node_load = self.workload.node_load_fn();
        if let Some(prior) = self.sol.as_ref() {
            let mut changed: Vec<(usize, f64)> = Vec::new();
            for t in 0..tiles {
                if self.eff_counts[t] != self.prev_eff[t] {
                    let l = node_load(self.eff_counts[t]);
                    changed.extend(self.workload.block_nodes(t).iter().map(|&nd| (nd, l)));
                }
            }
            if !changed.is_empty() {
                self.sol = Some(grid.solve_delta(prior, &changed)?);
                self.delta_solves += 1;
            }
        } else {
            let mut loads = vec![0.0; grid.tiles()];
            for t in 0..tiles {
                let l = node_load(self.eff_counts[t]);
                for &nd in self.workload.block_nodes(t) {
                    loads[nd] = l;
                }
            }
            self.sol = Some(grid.solve_sparse(&loads)?);
        }
        self.prev_eff.copy_from_slice(&self.eff_counts);

        // Stage 3b — supply-boost overlay: a post-solve lift of the
        // boosted tiles' block nodes (a header-switch model, not a
        // re-solve). Skipped entirely when every boost is zero, so the
        // uncontrolled path hands back solver output untouched.
        self.boost_active = (0..tiles).any(|t| self.act.boost(t) > 0.0);
        if self.boost_active {
            let sol = self.sol.as_ref().expect("solved above");
            self.boosted.clear();
            self.boosted.extend_from_slice(sol.voltages());
            for t in 0..tiles {
                let b = self.act.boost(t);
                if b > 0.0 {
                    for &nd in self.workload.block_nodes(t) {
                        self.boosted[nd] += b;
                    }
                }
            }
        }

        self.cycle = c + 1;
        Ok(c)
    }

    fn spawn(&mut self, src: usize, dst: u32) {
        self.spawned_flits += 1;
        self.flights.push(Flight {
            route: self.workload.mesh().route_xy(src, dst as usize),
            hop: 0,
        });
    }

    /// Raw per-tile switching counts of the last stepped cycle.
    pub fn raw_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Stretch-scaled per-tile counts of the last stepped cycle (what
    /// the grid actually saw).
    pub fn effective_counts(&self) -> &[u32] {
        &self.eff_counts
    }

    /// Node voltages of the last stepped cycle, boost overlay included.
    ///
    /// # Panics
    ///
    /// Panics before the first [`CycleStepper::step`].
    pub fn voltages(&self) -> &[f64] {
        if self.boost_active {
            &self.boosted
        } else {
            self.solution().voltages()
        }
    }

    /// The raw solver output of the last stepped cycle (pre-boost).
    ///
    /// # Panics
    ///
    /// Panics before the first [`CycleStepper::step`].
    pub fn solution(&self) -> &GridSolution {
        self.sol.as_ref().expect("step() the stepper first")
    }

    /// The worst (lowest) node voltage of the last stepped cycle with
    /// its node index, boost overlay included. Ties resolve to the
    /// first minimum, exactly like [`GridSolution::hotspot`].
    ///
    /// # Panics
    ///
    /// Panics before the first [`CycleStepper::step`].
    pub fn hotspot(&self) -> (usize, f64) {
        if self.boost_active {
            let (idx, &worst) = self
                .boosted
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("grid has at least one tile");
            (idx, worst)
        } else {
            self.solution().hotspot()
        }
    }

    /// The actuation currently in force.
    pub fn actuation(&self) -> &Actuation {
        &self.act
    }

    /// Cycles stepped so far (the next [`CycleStepper::step`] simulates
    /// this cycle index).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Incremental solves issued so far.
    pub fn delta_solves(&self) -> u64 {
        self.delta_solves
    }

    /// Flits the traffic plan injects over the whole run — the value
    /// the batch path reports as `workload.flits`.
    pub fn planned_flits(&self) -> u64 {
        self.planned_flits
    }

    /// Flits actually released into the mesh so far (planned minus the
    /// throttle backlog).
    pub fn spawned_flits(&self) -> u64 {
        self.spawned_flits
    }

    /// Flits currently held back by throttles, across all tiles.
    pub fn deferred_backlog(&self) -> usize {
        self.deferred.iter().map(VecDeque::len).sum()
    }

    /// Captures the stepper's dynamic state for checkpointing. The
    /// snapshot restores onto a fresh stepper built over the **same
    /// workload and seed** (see [`CycleStepper::restore`]).
    pub fn snapshot(&self) -> StepperSnapshot {
        StepperSnapshot {
            cursors: self.cursors.clone(),
            deferred: self
                .deferred
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            flights: self
                .flights
                .iter()
                .map(|f| (f.route.clone(), f.hop))
                .collect(),
            counts: self.counts.clone(),
            eff_counts: self.eff_counts.clone(),
            prev_eff: self.prev_eff.clone(),
            sol: self.sol.clone(),
            boosted: self.boosted.clone(),
            boost_active: self.boost_active,
            act: self.act.clone(),
            cycle: self.cycle,
            delta_solves: self.delta_solves,
            planned_flits: self.planned_flits,
            spawned_flits: self.spawned_flits,
        }
    }

    /// Reinstates a [`StepperSnapshot`] taken from an identically
    /// configured run, after which stepping continues bit-identically
    /// to the uninterrupted run — the delta-solve chain picks up from
    /// the captured floating-point state, not a fresh solve.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] when the snapshot does
    /// not match this stepper's mesh geometry or traffic plan (wrong
    /// seed, config, or a corrupted snapshot).
    pub fn restore(&mut self, snap: &StepperSnapshot) -> Result<(), WorkloadError> {
        let tiles = self.workload.mesh().tiles();
        let invalid = |reason: String| WorkloadError::InvalidConfig {
            name: "snapshot",
            reason,
        };
        if snap.cursors.len() != tiles
            || snap.deferred.len() != tiles
            || snap.counts.len() != tiles
            || snap.eff_counts.len() != tiles
            || snap.prev_eff.len() != tiles
        {
            return Err(invalid(format!(
                "snapshot covers {} tiles, mesh has {tiles}",
                snap.cursors.len()
            )));
        }
        if snap.planned_flits != self.planned_flits {
            return Err(invalid(format!(
                "snapshot plans {} flits, this run plans {} — different seed or traffic config",
                snap.planned_flits, self.planned_flits
            )));
        }
        if snap.act.domains() != tiles {
            return Err(invalid(format!(
                "snapshot actuation has {} domains for a {tiles}-tile mesh",
                snap.act.domains()
            )));
        }
        for (t, &cur) in snap.cursors.iter().enumerate() {
            if cur > self.injections[t].len() {
                return Err(invalid(format!(
                    "cursor {cur} past tile {t}'s plan of {} injections",
                    self.injections[t].len()
                )));
            }
        }
        if snap.flights.iter().any(|(route, hop)| *hop >= route.len()) {
            return Err(invalid("a flight's hop is past its route".into()));
        }
        self.cursors.copy_from_slice(&snap.cursors);
        self.deferred = snap
            .deferred
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        self.flights = snap
            .flights
            .iter()
            .map(|(route, hop)| Flight {
                route: route.clone(),
                hop: *hop,
            })
            .collect();
        self.counts.copy_from_slice(&snap.counts);
        self.eff_counts.copy_from_slice(&snap.eff_counts);
        self.prev_eff.copy_from_slice(&snap.prev_eff);
        self.sol = snap.sol.clone();
        self.boosted = snap.boosted.clone();
        self.boost_active = snap.boost_active;
        self.act = snap.act.clone();
        self.cycle = snap.cycle;
        self.delta_solves = snap.delta_solves;
        self.spawned_flits = snap.spawned_flits;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::NocWorkloadConfig;
    use crate::noc::NocMesh;
    use crate::traffic::TrafficPattern;

    fn stepper_workload() -> NocWorkload {
        NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap()
    }

    #[test]
    fn neutral_stepper_reproduces_the_activity_trace() {
        let w = stepper_workload();
        let cfg = w.config();
        let trace = ActivityTrace::generate(
            &mut RunCtx::serial().with_seed(41),
            w.mesh(),
            &cfg.pattern,
            cfg.cycles,
        )
        .unwrap();
        let mut s = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(41)).unwrap();
        assert_eq!(s.planned_flits(), trace.flits());
        for c in 0..cfg.cycles {
            assert_eq!(s.step().unwrap(), c);
            assert_eq!(s.raw_counts(), trace.cycle_counts(c), "cycle {c}");
            assert_eq!(s.effective_counts(), trace.cycle_counts(c), "cycle {c}");
        }
        assert_eq!(s.spawned_flits(), trace.flits());
        assert_eq!(s.deferred_backlog(), 0);
        assert!(s.delta_solves() > 0);
    }

    #[test]
    fn throttle_defers_and_drains_injections() {
        let mut cfg = NocWorkloadConfig::small_2x2();
        cfg.pattern = TrafficPattern::Uniform {
            injection_rate: 1.0,
        };
        cfg.cycles = 30;
        cfg.measure_every = 10;
        let w = NocWorkload::new(cfg).unwrap();
        let mut s = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(7)).unwrap();
        let mut act = Actuation::neutral(4);
        for t in 0..4 {
            act.set_throttle(t, true);
        }
        s.apply(&act).unwrap();
        for _ in 0..10 {
            s.step().unwrap();
        }
        // Rate-1.0 traffic: every tile planned one flit per cycle, all
        // of them held back.
        assert_eq!(s.deferred_backlog(), 40);
        assert_eq!(s.spawned_flits(), 0);
        assert_eq!(s.raw_counts(), &[0, 0, 0, 0]);
        // Release: deferred flits drain only into idle injection
        // slots, so while rate-1.0 traffic keeps planning flits the
        // backlog holds level instead of doubling the injection rate.
        s.apply(&Actuation::neutral(4)).unwrap();
        s.step().unwrap();
        assert_eq!(s.deferred_backlog(), 40);
        assert!(s.spawned_flits() > 0);
        for _ in 11..30 {
            s.step().unwrap();
        }
        // Plan exhausted: the backlog now drains one flit per tile per
        // cycle until empty.
        s.step().unwrap();
        assert_eq!(s.deferred_backlog(), 36);
        while s.deferred_backlog() > 0 {
            s.step().unwrap();
        }
        assert_eq!(s.spawned_flits(), s.planned_flits());
    }

    #[test]
    fn stretch_scales_effective_counts_down() {
        let mut cfg = NocWorkloadConfig::small_2x2();
        cfg.pattern = TrafficPattern::Uniform {
            injection_rate: 1.0,
        };
        let w = NocWorkload::new(cfg).unwrap();
        let mut s = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(3)).unwrap();
        let mut act = Actuation::neutral(4);
        act.set_stretch(1, 0.5);
        s.apply(&act).unwrap();
        for _ in 0..5 {
            s.step().unwrap();
        }
        let raw = s.raw_counts()[1];
        assert_eq!(s.effective_counts()[1], raw / 2, "⌊count/2⌋");
        assert_eq!(s.effective_counts()[0], s.raw_counts()[0]);
    }

    #[test]
    fn boost_lifts_only_the_boosted_block() {
        let w = stepper_workload();
        let mut s = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(11)).unwrap();
        s.step().unwrap();
        let (node, v) = s.hotspot();
        assert_eq!(s.solution().hotspot(), (node, v));
        let mut act = Actuation::neutral(4);
        act.set_boost(2, 0.05);
        s.apply(&act).unwrap();
        s.step().unwrap();
        let boosted = s.voltages();
        let raw = s.solution().voltages();
        for t in 0..4 {
            for &nd in w.block_nodes(t) {
                let lift = boosted[nd] - raw[nd];
                if t == 2 {
                    assert!((lift - 0.05).abs() < 1e-12, "boosted block lifts");
                } else {
                    assert_eq!(lift, 0.0, "tile {t} untouched");
                }
            }
        }
    }

    #[test]
    fn apply_rejects_wrong_domain_count() {
        let w = stepper_workload();
        let mut s = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(1)).unwrap();
        let err = s.apply(&Actuation::neutral(3)).unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::InvalidConfig {
                name: "actuation",
                ..
            }
        ));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let w = stepper_workload();
        let cycles = w.config().cycles;
        let half = cycles / 2;
        // Reference: run straight through, with a mid-run actuation so
        // the snapshot carries non-trivial control state.
        let mut act = Actuation::neutral(4);
        act.set_stretch(1, 0.5);
        act.set_boost(2, 0.03);
        act.set_throttle(3, true);
        let mut full = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(41)).unwrap();
        let mut snap = None;
        let mut reference = Vec::new();
        for c in 0..cycles {
            if c == half / 2 {
                full.apply(&act).unwrap();
            }
            full.step().unwrap();
            if c + 1 == half {
                snap = Some(full.snapshot());
            }
            if c >= half {
                reference.push((full.voltages().to_vec(), full.raw_counts().to_vec()));
            }
        }
        let snap = snap.unwrap();
        assert_eq!(snap.cycle(), half);
        // Resume: fresh stepper, same seed, restore, continue.
        let mut resumed = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(41)).unwrap();
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.cycle(), half);
        assert_eq!(resumed.actuation(), &act);
        for (v, raw) in &reference {
            resumed.step().unwrap();
            assert_eq!(resumed.voltages(), &v[..], "voltages bit-identical");
            assert_eq!(resumed.raw_counts(), &raw[..]);
        }
        assert_eq!(resumed.delta_solves(), full.delta_solves());
        assert_eq!(resumed.spawned_flits(), full.spawned_flits());
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let w = stepper_workload();
        let mut s = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(41)).unwrap();
        s.step().unwrap();
        let snap = s.snapshot();
        // Different seed → different plan fingerprint.
        let mut other = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(42)).unwrap();
        if other.planned_flits() != s.planned_flits() {
            let err = other.restore(&snap).unwrap_err();
            assert!(matches!(
                err,
                WorkloadError::InvalidConfig {
                    name: "snapshot",
                    ..
                }
            ));
        }
        // Different mesh geometry.
        let mut cfg = NocWorkloadConfig::small_2x2();
        cfg.mesh_rows = 4;
        cfg.mesh_cols = 4;
        let big = NocWorkload::new(cfg).unwrap();
        let mut wrong = CycleStepper::new(&big, &mut RunCtx::serial().with_seed(41)).unwrap();
        let err = wrong.restore(&snap).unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::InvalidConfig {
                name: "snapshot",
                ..
            }
        ));
    }

    #[test]
    fn stepping_past_the_horizon_decays_to_idle() {
        let w = stepper_workload();
        let cycles = w.config().cycles;
        let mut s = CycleStepper::new(&w, &mut RunCtx::serial().with_seed(2)).unwrap();
        for _ in 0..cycles {
            s.step().unwrap();
        }
        // Longest route on a 2×2 mesh is 3 hops; soon after the plan
        // ends the mesh is empty.
        for _ in 0..4 {
            s.step().unwrap();
        }
        assert_eq!(s.raw_counts(), &[0, 0, 0, 0]);
        let mesh = NocMesh::new(2, 2).unwrap();
        assert_eq!(mesh.route_xy(0, 3).len(), 3);
    }
}
