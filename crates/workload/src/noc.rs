//! The mesh NoC model: XY routing and the cycle-by-cycle activity
//! trace that turns injected flits into per-tile switching counts.
//!
//! The model is transport-level, not flit-accurate: a flit injected at
//! cycle `c` occupies the router of hop `i` of its XY route at cycle
//! `c + i` (one hop per cycle, no contention). That is deliberately
//! simple — the trace exists as a *power stimulus* for the PDN, where
//! what matters is how much switching happens where and when, not
//! per-flit latency.

use psnt_ctx::RunCtx;
use serde::{Deserialize, Serialize};

use crate::error::WorkloadError;
use crate::traffic::{TileTraffic, TrafficPattern};

/// A `rows × cols` mesh NoC with deterministic XY (X-first) routing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocMesh {
    rows: usize,
    cols: usize,
}

impl NocMesh {
    /// Creates a mesh.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for an empty mesh.
    pub fn new(rows: usize, cols: usize) -> Result<NocMesh, WorkloadError> {
        if rows == 0 || cols == 0 {
            return Err(WorkloadError::InvalidConfig {
                name: "mesh",
                reason: format!("{rows}×{cols} mesh must be non-empty"),
            });
        }
        Ok(NocMesh { rows, cols })
    }

    /// Mesh rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Mesh columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of router tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// The XY route from `src` to `dst` as the sequence of tiles
    /// traversed, inclusive of both endpoints: first along the row to
    /// the destination column, then along the column.
    pub fn route_xy(&self, src: usize, dst: usize) -> Vec<usize> {
        debug_assert!(src < self.tiles() && dst < self.tiles());
        let (sr, sc) = (src / self.cols, src % self.cols);
        let (dr, dc) = (dst / self.cols, dst % self.cols);
        let mut path = Vec::with_capacity(sc.abs_diff(dc) + sr.abs_diff(dr) + 1);
        let mut c = sc;
        path.push(sr * self.cols + c);
        while c != dc {
            c = if dc > c { c + 1 } else { c - 1 };
            path.push(sr * self.cols + c);
        }
        let mut r = sr;
        while r != dr {
            r = if dr > r { r + 1 } else { r - 1 };
            path.push(r * self.cols + dc);
        }
        path
    }
}

/// Per-cycle, per-tile router switching counts for a whole run.
///
/// Storage is one flat `u32` row per cycle (an 8×8 mesh over 1,000
/// cycles is 256 KiB), so campaign-scale traces stay cheap to build
/// and to diff cycle-over-cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityTrace {
    cycles: usize,
    tiles: usize,
    counts: Vec<u32>,
    flits: u64,
}

impl ActivityTrace {
    /// Generates the trace: per-tile injection streams run in parallel
    /// on the context's engine (seed-split from `ctx.seed()`, so the
    /// trace is bit-identical at any worker count), then the XY routes
    /// are overlaid serially into switching counts.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for an invalid pattern
    /// or zero cycles.
    pub fn generate(
        ctx: &mut RunCtx<'_>,
        mesh: &NocMesh,
        pattern: &TrafficPattern,
        cycles: usize,
    ) -> Result<ActivityTrace, WorkloadError> {
        let tiles = mesh.tiles();
        let injections = ActivityTrace::plan(ctx, mesh, pattern, cycles)?;
        // Phase 2 — serial overlay: walk every flit one hop per cycle
        // along its XY route, accumulating router switching counts.
        let mut counts = vec![0u32; cycles * tiles];
        let mut flits = 0u64;
        for (src, flights) in injections.iter().enumerate() {
            for &(c, dst) in flights {
                flits += 1;
                for (hop, &tile) in mesh.route_xy(src, dst as usize).iter().enumerate() {
                    let at = c as usize + hop;
                    if at >= cycles {
                        break;
                    }
                    counts[at * tiles + tile] += 1;
                }
            }
        }
        if let Some(obs) = ctx.observer() {
            obs.metrics.counter_add("workload.flits", flits);
        }
        Ok(ActivityTrace {
            cycles,
            tiles,
            counts,
            flits,
        })
    }

    /// The raw injection plan behind [`ActivityTrace::generate`] — and
    /// the activity *source* stage of the cycle stepper: per source
    /// tile, the `(cycle, destination)` pairs of every flit the traffic
    /// pattern injects, in cycle order. Per-tile streams run in
    /// parallel on the context's engine and are seed-split from
    /// `ctx.seed()`, so the plan is bit-identical at any worker count —
    /// which is exactly what pins the stepped and batch pipelines to
    /// the same activity.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for an invalid pattern
    /// or zero cycles.
    pub fn plan(
        ctx: &mut RunCtx<'_>,
        mesh: &NocMesh,
        pattern: &TrafficPattern,
        cycles: usize,
    ) -> Result<Vec<Vec<(u32, u32)>>, WorkloadError> {
        pattern.validate()?;
        if cycles == 0 {
            return Err(WorkloadError::InvalidConfig {
                name: "cycles",
                reason: "need at least one cycle".into(),
            });
        }
        let tiles = mesh.tiles();
        let seed = ctx.seed();
        // Parallel per tile: each tile's injections come from its own
        // split stream, so the result is order- and
        // worker-count-independent.
        Ok(ctx.engine().map(tiles, |t| {
            let mut gen = TileTraffic::new(pattern, seed, t, tiles);
            (0..cycles as u64)
                .filter_map(|c| gen.step(c).map(|dst| (c as u32, dst as u32)))
                .collect()
        }))
    }

    /// Number of cycles in the trace.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Number of mesh tiles.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Total flits injected over the run.
    pub fn flits(&self) -> u64 {
        self.flits
    }

    /// The switching count of `tile` at `cycle`.
    pub fn count(&self, cycle: usize, tile: usize) -> u32 {
        self.counts[cycle * self.tiles + tile]
    }

    /// All per-tile counts of one cycle.
    pub fn cycle_counts(&self, cycle: usize) -> &[u32] {
        &self.counts[cycle * self.tiles..(cycle + 1) * self.tiles]
    }

    /// Total switching events across the whole trace.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_engine::Engine;

    #[test]
    fn mesh_geometry_validated() {
        assert!(NocMesh::new(0, 8).is_err());
        let m = NocMesh::new(8, 8).unwrap();
        assert_eq!(m.tiles(), 64);
    }

    #[test]
    fn xy_routes_go_x_first() {
        let m = NocMesh::new(4, 4).unwrap();
        // From (0,0) to (2,3): along row 0 to col 3, then down col 3.
        assert_eq!(m.route_xy(0, 11), vec![0, 1, 2, 3, 7, 11]);
        // Reverse direction.
        assert_eq!(m.route_xy(11, 0), vec![11, 10, 9, 8, 4, 0]);
        // Self route is the single tile.
        assert_eq!(m.route_xy(5, 5), vec![5]);
    }

    #[test]
    fn route_length_is_manhattan_plus_one() {
        let m = NocMesh::new(8, 8).unwrap();
        for (src, dst) in [(0usize, 63usize), (7, 56), (20, 20), (9, 10)] {
            let (sr, sc) = (src / 8, src % 8);
            let (dr, dc) = (dst / 8, dst % 8);
            assert_eq!(
                m.route_xy(src, dst).len(),
                sr.abs_diff(dr) + sc.abs_diff(dc) + 1
            );
        }
    }

    #[test]
    fn trace_is_worker_count_independent() {
        let m = NocMesh::new(4, 4).unwrap();
        let p = TrafficPattern::Uniform {
            injection_rate: 0.5,
        };
        let base =
            ActivityTrace::generate(&mut RunCtx::serial().with_seed(99), &m, &p, 64).unwrap();
        for jobs in [2usize, 4] {
            let t = ActivityTrace::generate(
                &mut RunCtx::new(Engine::new(jobs)).with_seed(99),
                &m,
                &p,
                64,
            )
            .unwrap();
            assert_eq!(t, base, "jobs={jobs}");
        }
        assert!(base.flits() > 0);
        assert!(base.total_events() >= base.flits());
    }

    #[test]
    fn trace_conserves_hops() {
        // With flights clipped at the trace end, total events never
        // exceed flits × longest route.
        let m = NocMesh::new(3, 3).unwrap();
        let p = TrafficPattern::Uniform {
            injection_rate: 1.0,
        };
        let t = ActivityTrace::generate(&mut RunCtx::serial().with_seed(5), &m, &p, 40).unwrap();
        assert_eq!(t.flits(), 9 * 40);
        assert!(t.total_events() <= t.flits() * 5);
        assert_eq!(t.cycle_counts(0).len(), 9);
    }

    #[test]
    fn generation_rejects_bad_inputs() {
        let m = NocMesh::new(2, 2).unwrap();
        let bad = TrafficPattern::Uniform {
            injection_rate: 2.0,
        };
        assert!(ActivityTrace::generate(&mut RunCtx::serial(), &m, &bad, 10).is_err());
        let ok = TrafficPattern::Uniform {
            injection_rate: 0.1,
        };
        assert!(ActivityTrace::generate(&mut RunCtx::serial(), &m, &ok, 0).is_err());
    }
}
