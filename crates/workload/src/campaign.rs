//! The chip-scale workload campaign: NoC activity → tile currents →
//! incremental PDN solves → multi-site measurement.
//!
//! [`NocWorkload`] glues the layers end to end:
//!
//! 1. [`ActivityTrace`](crate::noc::ActivityTrace) turns seed-split
//!    traffic streams into per-mesh-tile switching counts;
//! 2. each mesh tile's current (`idle + flit·count`) is spread over its
//!    block of power-grid nodes, and the grid is re-solved every cycle
//!    through [`PowerGrid::solve_delta`] — only blocks whose activity
//!    changed enter the solver, so a 1,600-node grid sustains
//!    1,000-cycle campaigns in well under a second;
//! 3. the per-site rail waveforms and window-centre instants feed the
//!    scan layer's `from_rails` entry points, in memory
//!    ([`NocWorkload::run`]) or streamed record-by-record
//!    ([`NocWorkload::run_streamed`]) with flat memory.
//!
//! Both paths are bit-identical at any worker count, and a
//! `psnt-fault` plan on the context degrades faulted sites instead of
//! aborting the campaign.

use psnt_cells::units::{Current, Resistance, Time, Voltage};
use psnt_core::system::SensorConfig;
use psnt_ctx::RunCtx;
use psnt_engine::RetryPolicy;
use psnt_pdn::grid::PowerGrid;
use psnt_pdn::waveform::Waveform;
use psnt_scan::campaign::{Campaign, DegradationSummary, ResilientCampaignResult, StreamRecord};
use psnt_scan::floorplan::Floorplan;
use psnt_scan::ScanError;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{CheckpointPolicy, WorkloadCheckpoint, CHECKPOINT_VERSION};
use crate::error::WorkloadError;
use crate::noc::NocMesh;
use crate::stepper::CycleStepper;
use crate::traffic::TrafficPattern;

/// Full description of a workload-driven campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocWorkloadConfig {
    /// Mesh rows (routers).
    pub mesh_rows: usize,
    /// Mesh columns (routers).
    pub mesh_cols: usize,
    /// Sensor sites per mesh tile.
    pub sites_per_tile: usize,
    /// Power-grid rows (must be a multiple of `mesh_rows`).
    pub grid_rows: usize,
    /// Power-grid columns (must be a multiple of `mesh_cols`).
    pub grid_cols: usize,
    /// Nominal pad voltage.
    pub v_pad: Voltage,
    /// Mesh segment resistance.
    pub r_mesh: Resistance,
    /// Pad connection resistance.
    pub r_pad: Resistance,
    /// Pad positions as `(row, col)` grid coordinates.
    pub pads: Vec<(usize, usize)>,
    /// The traffic pattern driving the mesh.
    pub pattern: TrafficPattern,
    /// Cycles to simulate.
    pub cycles: usize,
    /// NoC clock period (one activity step per cycle).
    pub cycle_time: Time,
    /// Baseline current of an idle mesh tile.
    pub idle_current: Current,
    /// Extra current per router switching event.
    pub flit_current: Current,
    /// Cycles per measurement window; each window is measured once at
    /// its centre cycle. Trailing cycles that do not fill a window are
    /// simulated but not measured.
    pub measure_every: usize,
    /// The sensor dropped on every site.
    pub sensor: SensorConfig,
}

impl NocWorkloadConfig {
    /// The campaign-scale reference chip: an 8×8 mesh on a 40×40 grid
    /// (5×5 nodes per tile), 4 sensor sites per tile → 256 sites, fed
    /// by a ring of eight pads, running 1,000 cycles of uniform
    /// traffic measured every 100 cycles.
    pub fn chip_8x8() -> NocWorkloadConfig {
        NocWorkloadConfig {
            mesh_rows: 8,
            mesh_cols: 8,
            sites_per_tile: 4,
            grid_rows: 40,
            grid_cols: 40,
            v_pad: Voltage::from_v(1.05),
            r_mesh: Resistance::from_milliohms(120.0),
            r_pad: Resistance::from_milliohms(20.0),
            pads: vec![(0, 0), (0, 39), (39, 0), (39, 39)],
            pattern: TrafficPattern::Uniform {
                injection_rate: 0.25,
            },
            cycles: 1000,
            cycle_time: Time::from_ns(1.0),
            idle_current: Current::from_ma(8.0),
            flit_current: Current::from_ma(2.0),
            measure_every: 100,
            sensor: SensorConfig::default(),
        }
    }

    /// A small smoke-test chip: 2×2 mesh on an 8×8 grid, one site per
    /// tile, 60 cycles measured every 20 — the shape the equivalence
    /// tests and proptests use.
    pub fn small_2x2() -> NocWorkloadConfig {
        NocWorkloadConfig {
            mesh_rows: 2,
            mesh_cols: 2,
            sites_per_tile: 1,
            grid_rows: 8,
            grid_cols: 8,
            v_pad: Voltage::from_v(1.05),
            r_mesh: Resistance::from_milliohms(60.0),
            r_pad: Resistance::from_milliohms(20.0),
            pads: vec![(0, 0), (0, 7), (7, 0), (7, 7)],
            pattern: TrafficPattern::Uniform {
                injection_rate: 0.4,
            },
            cycles: 60,
            cycle_time: Time::from_ns(1.0),
            idle_current: Current::from_ma(8.0),
            flit_current: Current::from_ma(4.0),
            measure_every: 20,
            sensor: SensorConfig::default(),
        }
    }
}

/// Noise statistics of one measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window index.
    pub window: usize,
    /// First cycle of the window.
    pub start_cycle: usize,
    /// The instant the scan campaign measures this window (its centre
    /// cycle's midpoint).
    pub instant: Time,
    /// Worst (lowest) node voltage anywhere on the grid in the window.
    pub min_v: f64,
    /// Grid node holding the worst voltage.
    pub worst_node: usize,
    /// Mean node voltage over the window's cycles.
    pub mean_v: f64,
    /// Mean total chip current over the window, in amperes.
    pub mean_current: f64,
    /// Router switching events inside the window.
    pub events: u64,
}

/// The cycle-wise noise profile of a workload run: one
/// [`WindowStats`] per measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Nominal rail voltage (pads).
    pub v_nom: f64,
    /// Per-window statistics, in time order.
    pub windows: Vec<WindowStats>,
    /// Flits injected over the whole run.
    pub flits: u64,
}

impl NoiseProfile {
    /// The window with the deepest droop.
    pub fn worst(&self) -> Option<&WindowStats> {
        self.windows
            .iter()
            .min_by(|a, b| a.min_v.total_cmp(&b.min_v))
    }

    /// Worst droop below nominal, in volts.
    pub fn worst_droop(&self) -> f64 {
        self.worst().map_or(0.0, |w| self.v_nom - w.min_v)
    }
}

/// An in-memory workload campaign result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocCampaignResult {
    /// The scan campaign's (possibly partially degraded) result.
    pub result: ResilientCampaignResult,
    /// The PDN-side noise profile.
    pub profile: NoiseProfile,
}

/// The summary a streamed workload campaign returns after every record
/// has gone through the sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamedNocResult {
    /// Degradation summary of the scan sweep.
    pub summary: DegradationSummary,
    /// The PDN-side noise profile.
    pub profile: NoiseProfile,
}

/// Solved rails ready for the scan layer.
struct Rails {
    tile_supplies: Vec<Waveform>,
    instants: Vec<Time>,
    profile: NoiseProfile,
}

/// A workload-driven many-core campaign over an instrumented chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocWorkload {
    config: NocWorkloadConfig,
    mesh: NocMesh,
    campaign: Campaign,
    /// Grid nodes of each mesh tile's block, row-major by mesh tile.
    block_nodes: Vec<Vec<usize>>,
}

impl NocWorkload {
    /// Validates the configuration and builds the instrumented chip:
    /// power grid, mesh floorplan ([`Floorplan::mesh`]) and scan
    /// campaign.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for bad workload
    /// parameters and propagates grid/floorplan/sensor validation.
    pub fn new(config: NocWorkloadConfig) -> Result<NocWorkload, WorkloadError> {
        config.pattern.validate()?;
        if config.cycles == 0 {
            return Err(WorkloadError::InvalidConfig {
                name: "cycles",
                reason: "need at least one cycle".into(),
            });
        }
        if config.measure_every == 0 || config.measure_every > config.cycles {
            return Err(WorkloadError::InvalidConfig {
                name: "measure_every",
                reason: format!(
                    "window of {} cycles must be in [1, {}]",
                    config.measure_every, config.cycles
                ),
            });
        }
        if config.cycle_time <= Time::ZERO {
            return Err(WorkloadError::InvalidConfig {
                name: "cycle_time",
                reason: "cycle time must be positive".into(),
            });
        }
        for (name, i) in [
            ("idle_current", config.idle_current),
            ("flit_current", config.flit_current),
        ] {
            if !i.amps().is_finite() || i.amps() < 0.0 {
                return Err(WorkloadError::InvalidConfig {
                    name,
                    reason: format!("{} A must be finite and non-negative", i.amps()),
                });
            }
        }
        let mesh = NocMesh::new(config.mesh_rows, config.mesh_cols)?;
        let grid = PowerGrid::new(
            config.grid_rows,
            config.grid_cols,
            config.v_pad,
            config.r_mesh,
            config.r_pad,
            config.pads.clone(),
        )?;
        let floorplan = Floorplan::mesh(
            grid,
            config.mesh_rows,
            config.mesh_cols,
            config.sites_per_tile,
        )?;
        let campaign = Campaign::new(floorplan, config.sensor.clone())?;
        let (block_rows, block_cols) = (
            config.grid_rows / config.mesh_rows,
            config.grid_cols / config.mesh_cols,
        );
        let mut block_nodes = Vec::with_capacity(mesh.tiles());
        for mr in 0..config.mesh_rows {
            for mc in 0..config.mesh_cols {
                let mut nodes = Vec::with_capacity(block_rows * block_cols);
                for r in mr * block_rows..(mr + 1) * block_rows {
                    for c in mc * block_cols..(mc + 1) * block_cols {
                        nodes.push(r * config.grid_cols + c);
                    }
                }
                block_nodes.push(nodes);
            }
        }
        Ok(NocWorkload {
            config,
            mesh,
            campaign,
            block_nodes,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &NocWorkloadConfig {
        &self.config
    }

    /// The router mesh.
    pub fn mesh(&self) -> &NocMesh {
        &self.mesh
    }

    /// The underlying scan campaign (floorplan, chain, sensor).
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Number of measurement windows.
    pub fn windows(&self) -> usize {
        self.config.cycles / self.config.measure_every
    }

    /// Grid nodes of mesh tile `tile`'s power block.
    pub fn block_nodes(&self, tile: usize) -> &[usize] {
        &self.block_nodes[tile]
    }

    /// The per-node load model: `idle + flit·count` spread over the
    /// tile's block. One closure shared by the stepper and any driver
    /// so both sides compute bit-identical currents.
    pub(crate) fn node_load_fn(&self) -> impl Fn(u32) -> f64 {
        let block = self.block_nodes[0].len() as f64;
        let idle_node = self.config.idle_current.amps() / block;
        let flit_node = self.config.flit_current.amps() / block;
        move |count: u32| idle_node + flit_node * f64::from(count)
    }

    /// Drives the [`CycleStepper`] through the whole run with a neutral
    /// actuation and collects rails + noise profile — the batch entry
    /// points are thin drivers over the per-cycle core.
    fn solve_rails(&self, ctx: &mut RunCtx<'_>) -> Result<Rails, WorkloadError> {
        self.solve_rails_checkpointed(ctx, &CheckpointPolicy::none(), None)
    }

    /// The supervised, resumable cycle loop behind every batch entry
    /// point. With a detached supervisor, no checkpoint policy and no
    /// resume snapshot this is exactly the old unsupervised loop —
    /// supervision costs one atomic load per cycle.
    ///
    /// The context's supervisor is checked once per cycle; a trip
    /// writes a final checkpoint (when `policy.path` is set) and
    /// surfaces as [`WorkloadError::Interrupted`]. Harness-level
    /// faults on the context drive deterministic chaos:
    /// [`Fault::CancelAt`](psnt_fault::Fault::CancelAt) cancels the
    /// supervisor's token at exactly that cycle, and
    /// [`Fault::DeadlineTrip`](psnt_fault::Fault::DeadlineTrip) trips
    /// the wall-clock deadline at the run's midpoint.
    fn solve_rails_checkpointed(
        &self,
        ctx: &mut RunCtx<'_>,
        policy: &CheckpointPolicy,
        resume: Option<&WorkloadCheckpoint>,
    ) -> Result<Rails, WorkloadError> {
        let cfg = &self.config;
        let mut stepper = CycleStepper::new(self, ctx)?;
        if let Some(obs) = ctx.observer() {
            obs.metrics
                .counter_add("workload.flits", stepper.planned_flits());
        }
        let grid = self.campaign.floorplan().grid();
        let n = grid.tiles();
        let v_nom = grid.v_pad().volts();
        let dt = cfg.cycle_time;
        let windows = self.windows();

        let mut solve_span = ctx.observer().map(|o| {
            o.begin_span("workload_solve")
                .attr("cycles", &(cfg.cycles as u64))
                .attr("nodes", &(n as u64))
                .sim_interval_ps(0.0, (dt * cfg.cycles as f64).picoseconds())
        });

        let site_nodes: Vec<usize> = self
            .campaign
            .floorplan()
            .sites()
            .iter()
            .map(|s| s.tile)
            .collect();
        let mut site_points: Vec<Vec<(Time, f64)>> =
            vec![Vec::with_capacity(cfg.cycles); site_nodes.len()];
        let mut stats = self.window_stats_shell();

        let mut start = 0usize;
        if let Some(ckpt) = resume {
            start = self.restore_solve_state(
                ctx,
                ckpt,
                &mut stepper,
                &mut stats,
                &mut site_points,
                site_nodes.len(),
            )?;
        }

        let sup = ctx.supervisor().clone();
        let cancel_at = ctx.fault_plan().and_then(|p| p.cancel_at_cycle());
        let trip_deadline_at = ctx
            .fault_plan()
            .is_some_and(|p| p.deadline_trip())
            .then_some(cfg.cycles / 2);
        let seed = ctx.seed();
        let cadence = policy.every.or_else(|| sup.budget().checkpoint_cadence());
        let snapshot = |stepper: &CycleStepper<'_>,
                        stats: &[WindowStats],
                        site_points: &[Vec<(Time, f64)>]| {
            let done = stepper.cycle();
            let touched = done.div_ceil(cfg.measure_every).min(windows);
            WorkloadCheckpoint {
                version: CHECKPOINT_VERSION,
                seed,
                stepper: stepper.snapshot(),
                stats_done: stats[..touched].to_vec(),
                site_points: site_points.to_vec(),
            }
        };

        for c in start..cfg.cycles {
            if cancel_at == Some(c as u64) {
                sup.token().cancel();
            }
            if trip_deadline_at == Some(c) {
                sup.force_expire();
            }
            if let Err(reason) = sup.check() {
                if let Some(path) = policy.path.as_deref() {
                    snapshot(&stepper, &stats, &site_points).save(path)?;
                }
                if let (Some(obs), Some(span)) = (ctx.observer(), solve_span.take()) {
                    obs.end_span(span);
                }
                return Err(WorkloadError::Interrupted(reason));
            }
            sup.charge_events(1);
            stepper.step()?;
            let t_c = dt * (c as f64 + 0.5);
            for (k, &nd) in site_nodes.iter().enumerate() {
                site_points[k].push((t_c, stepper.voltages()[nd]));
            }
            self.accumulate_window(&mut stats, c, &stepper, n);
            if let (Some(every), Some(path)) = (cadence, policy.path.as_deref()) {
                if (c as u64 + 1).is_multiple_of(every) && c + 1 < cfg.cycles {
                    snapshot(&stepper, &stats, &site_points).save(path)?;
                }
            }
        }

        if let Some(obs) = ctx.observer() {
            obs.metrics
                .counter_add("workload.delta_solves", stepper.delta_solves());
            obs.metrics
                .gauge_set_max("workload.windows", windows as f64);
        }
        if let (Some(obs), Some(span)) = (ctx.observer(), solve_span.take()) {
            obs.end_span(span);
        }

        let mut tile_supplies = vec![Waveform::constant(v_nom); n];
        for (k, points) in site_points.into_iter().enumerate() {
            tile_supplies[site_nodes[k]] = Waveform::from_points(points)?;
        }
        Ok(Rails {
            tile_supplies,
            instants: stats.iter().map(|w| w.instant).collect(),
            profile: NoiseProfile {
                v_nom,
                windows: stats,
                flits: stepper.planned_flits(),
            },
        })
    }

    /// Reinstates a solve checkpoint into a freshly planned run;
    /// returns the cycle the loop continues from.
    fn restore_solve_state(
        &self,
        ctx: &RunCtx<'_>,
        ckpt: &WorkloadCheckpoint,
        stepper: &mut CycleStepper<'_>,
        stats: &mut [WindowStats],
        site_points: &mut [Vec<(Time, f64)>],
        sites: usize,
    ) -> Result<usize, WorkloadError> {
        let invalid = |reason: String| WorkloadError::InvalidConfig {
            name: "resume",
            reason,
        };
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(invalid(format!(
                "checkpoint schema version {}, this build reads {CHECKPOINT_VERSION}",
                ckpt.version
            )));
        }
        if ckpt.seed != ctx.seed() {
            return Err(invalid(format!(
                "checkpoint was captured under seed {}, this run uses {}",
                ckpt.seed,
                ctx.seed()
            )));
        }
        stepper.restore(&ckpt.stepper)?;
        let done = stepper.cycle();
        let touched = done.div_ceil(self.config.measure_every).min(self.windows());
        if ckpt.stats_done.len() != touched {
            return Err(invalid(format!(
                "{} windows captured, cycle {done} expects {touched}",
                ckpt.stats_done.len()
            )));
        }
        stats[..touched].clone_from_slice(&ckpt.stats_done);
        if ckpt.site_points.len() != sites {
            return Err(invalid(format!(
                "{} site series captured, floorplan has {sites}",
                ckpt.site_points.len()
            )));
        }
        for (k, series) in ckpt.site_points.iter().enumerate() {
            if series.len() != done {
                return Err(invalid(format!(
                    "site {k} captured {} rail points, cycle {done} expects {done}",
                    series.len()
                )));
            }
            site_points[k] = series.clone();
        }
        Ok(done)
    }

    /// Empty per-window statistics, one per measurement window.
    pub(crate) fn window_stats_shell(&self) -> Vec<WindowStats> {
        let cfg = &self.config;
        (0..self.windows())
            .map(|w| {
                let centre = w * cfg.measure_every + cfg.measure_every / 2;
                WindowStats {
                    window: w,
                    start_cycle: w * cfg.measure_every,
                    instant: cfg.cycle_time * (centre as f64 + 0.5),
                    min_v: f64::INFINITY,
                    worst_node: 0,
                    mean_v: 0.0,
                    mean_current: 0.0,
                    events: 0,
                }
            })
            .collect()
    }

    /// Folds the stepper's cycle-`c` grid state into its window's
    /// statistics — the same arithmetic, in the same order, as the old
    /// fused loop, so stepped profiles stay bit-identical.
    pub(crate) fn accumulate_window(
        &self,
        stats: &mut [WindowStats],
        c: usize,
        stepper: &CycleStepper<'_>,
        n: usize,
    ) {
        if let Some(w) = stats.get_mut(c / self.config.measure_every) {
            let (node, v_min) = stepper.hotspot();
            if v_min < w.min_v {
                w.min_v = v_min;
                w.worst_node = node;
            }
            let me = self.config.measure_every as f64;
            w.mean_v += stepper.voltages().iter().sum::<f64>() / (n as f64 * me);
            w.mean_current += stepper.solution().loads().iter().sum::<f64>() / me;
            w.events += stepper
                .raw_counts()
                .iter()
                .map(|&x| u64::from(x))
                .sum::<u64>();
        }
    }

    /// Runs the campaign in memory: traffic → per-cycle sparse solves →
    /// resilient multi-site sweep at the window centres.
    ///
    /// # Errors
    ///
    /// Propagates solver and campaign errors; per-site failures (e.g. a
    /// `psnt-fault` [`SitePanic`](psnt_fault::Fault::SitePanic) on the
    /// context) degrade instead of aborting.
    pub fn run(
        &self,
        ctx: &mut RunCtx<'_>,
        retry: RetryPolicy,
    ) -> Result<NocCampaignResult, WorkloadError> {
        let rails = self.solve_rails(ctx)?;
        let result = self.campaign.run_resilient_from_rails(
            ctx,
            rails.tile_supplies,
            None,
            rails.instants,
            retry,
        )?;
        Ok(NocCampaignResult {
            result,
            profile: rails.profile,
        })
    }

    /// Runs the campaign streamed: identical results to
    /// [`NocWorkload::run`], but every per-site series and frame goes
    /// through `sink` as a [`StreamRecord`] instead of accumulating in
    /// memory — the path that keeps a 256-site campaign's footprint
    /// flat.
    ///
    /// # Errors
    ///
    /// As [`NocWorkload::run`]; a sink error aborts the run and is
    /// returned.
    pub fn run_streamed(
        &self,
        ctx: &mut RunCtx<'_>,
        retry: RetryPolicy,
        sink: impl FnMut(StreamRecord) -> Result<(), ScanError>,
    ) -> Result<StreamedNocResult, WorkloadError> {
        let rails = self.solve_rails(ctx)?;
        let summary = self.campaign.run_streamed_from_rails(
            ctx,
            rails.tile_supplies,
            None,
            rails.instants,
            retry,
            sink,
        )?;
        Ok(StreamedNocResult {
            summary,
            profile: rails.profile,
        })
    }

    /// [`NocWorkload::run`] under a checkpoint policy, optionally
    /// resuming from a snapshot: the solve loop writes `policy.path`
    /// at its cadence and on any supervisor trip, and an
    /// interrupted-then-resumed run's result is **bit-identical** to
    /// an uninterrupted one at any worker count.
    ///
    /// The resume snapshot must come from the same workload config and
    /// seed; the scan sweep after the solve is never checkpointed — a
    /// resumed run repeats it from the start, which changes nothing in
    /// the output.
    ///
    /// # Errors
    ///
    /// As [`NocWorkload::run`], plus [`WorkloadError::Interrupted`]
    /// when the context's supervisor trips (a final checkpoint is
    /// written first when a path is configured),
    /// [`WorkloadError::Checkpoint`] on snapshot I/O failures, and
    /// [`WorkloadError::InvalidConfig`] for a mismatched resume
    /// snapshot.
    pub fn run_checkpointed(
        &self,
        ctx: &mut RunCtx<'_>,
        retry: RetryPolicy,
        policy: &CheckpointPolicy,
        resume: Option<&WorkloadCheckpoint>,
    ) -> Result<NocCampaignResult, WorkloadError> {
        let rails = self.solve_rails_checkpointed(ctx, policy, resume)?;
        let result = self.campaign.run_resilient_from_rails(
            ctx,
            rails.tile_supplies,
            None,
            rails.instants,
            retry,
        )?;
        Ok(NocCampaignResult {
            result,
            profile: rails.profile,
        })
    }

    /// [`NocWorkload::run_streamed`] under a checkpoint policy,
    /// optionally resuming from a snapshot — the streamed counterpart
    /// of [`NocWorkload::run_checkpointed`], with the same bit-identity
    /// contract record for record.
    ///
    /// # Errors
    ///
    /// As [`NocWorkload::run_streamed`] plus the checkpoint errors of
    /// [`NocWorkload::run_checkpointed`]. A supervisor trip during the
    /// sweep itself surfaces as the stream's terminal
    /// [`StreamRecord::Aborted`] record and is not checkpointed.
    pub fn run_streamed_checkpointed(
        &self,
        ctx: &mut RunCtx<'_>,
        retry: RetryPolicy,
        policy: &CheckpointPolicy,
        resume: Option<&WorkloadCheckpoint>,
        sink: impl FnMut(StreamRecord) -> Result<(), ScanError>,
    ) -> Result<StreamedNocResult, WorkloadError> {
        let rails = self.solve_rails_checkpointed(ctx, policy, resume)?;
        let summary = self.campaign.run_streamed_from_rails(
            ctx,
            rails.tile_supplies,
            None,
            rails.instants,
            retry,
            sink,
        )?;
        Ok(StreamedNocResult {
            summary,
            profile: rails.profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_engine::Engine;
    use psnt_fault::{Fault, FaultPlan};
    use psnt_scan::campaign::{CampaignResult, SiteOutcome};

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut c = NocWorkloadConfig::small_2x2();
        c.cycles = 0;
        assert!(matches!(
            NocWorkload::new(c),
            Err(WorkloadError::InvalidConfig { name: "cycles", .. })
        ));
        let mut c = NocWorkloadConfig::small_2x2();
        c.measure_every = 61;
        assert!(matches!(
            NocWorkload::new(c),
            Err(WorkloadError::InvalidConfig {
                name: "measure_every",
                ..
            })
        ));
        let mut c = NocWorkloadConfig::small_2x2();
        c.flit_current = Current::from_a(-1.0);
        assert!(NocWorkload::new(c).is_err());
        let mut c = NocWorkloadConfig::small_2x2();
        c.mesh_rows = 3; // 3 does not divide 8
        assert!(matches!(
            NocWorkload::new(c),
            Err(WorkloadError::Scan(ScanError::InvalidMesh { .. }))
        ));
    }

    #[test]
    fn chip_8x8_builds_the_campaign_shape() {
        let w = NocWorkload::new(NocWorkloadConfig::chip_8x8()).unwrap();
        assert_eq!(w.campaign().floorplan().sites().len(), 256);
        assert_eq!(w.campaign().floorplan().grid().tiles(), 1600);
        assert_eq!(w.mesh().tiles(), 64);
        assert_eq!(w.windows(), 10);
    }

    #[test]
    fn small_run_produces_profile_and_measurements() {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let out = w
            .run(&mut RunCtx::serial().with_seed(17), RetryPolicy::none())
            .unwrap();
        assert_eq!(out.result.result.sites.len(), 4);
        assert_eq!(out.result.result.frames.len(), 3);
        assert_eq!(out.profile.windows.len(), 3);
        assert!(out.profile.flits > 0);
        // Activity pulls the rail below nominal somewhere.
        assert!(out.profile.worst_droop() > 0.0);
        for win in &out.profile.windows {
            assert!(win.min_v <= win.mean_v);
            assert!(win.mean_current > 0.0);
        }
        assert!(out
            .result
            .outcomes
            .iter()
            .all(|o| matches!(o, SiteOutcome::Measured)));
    }

    #[test]
    fn run_is_worker_count_independent() {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let base = w
            .run(&mut RunCtx::serial().with_seed(3), RetryPolicy::none())
            .unwrap();
        for jobs in [2usize, 4] {
            let out = w
                .run(
                    &mut RunCtx::new(Engine::new(jobs)).with_seed(3),
                    RetryPolicy::none(),
                )
                .unwrap();
            assert_eq!(out, base, "jobs={jobs}");
        }
    }

    /// Reassembles a streamed run (mirrors the scan-layer test helper).
    fn collect(records: Vec<StreamRecord>) -> ResilientCampaignResult {
        let mut sites = Vec::new();
        let mut outcomes = Vec::new();
        let mut instants = Vec::new();
        let mut frames = Vec::new();
        let mut summary = None;
        for r in records {
            match r {
                StreamRecord::Site {
                    series, outcome, ..
                } => {
                    sites.push(series);
                    outcomes.push(outcome);
                }
                StreamRecord::Frame { instant, frame, .. } => {
                    instants.push(instant);
                    frames.push(frame);
                }
                StreamRecord::Summary { summary: s, .. } => summary = Some(s),
                StreamRecord::Aborted { reason, .. } => panic!("unexpected abort: {reason}"),
            }
        }
        ResilientCampaignResult {
            result: CampaignResult {
                sites,
                instants,
                frames,
            },
            outcomes,
            summary: summary.expect("missing summary"),
        }
    }

    #[test]
    fn streamed_matches_in_memory_at_any_worker_count() {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let in_memory = w
            .run(&mut RunCtx::serial().with_seed(29), RetryPolicy::none())
            .unwrap();
        for jobs in [1usize, 4] {
            let mut records = Vec::new();
            let out = w
                .run_streamed(
                    &mut RunCtx::new(Engine::new(jobs)).with_seed(29),
                    RetryPolicy::none(),
                    |r| {
                        records.push(r);
                        Ok(())
                    },
                )
                .unwrap();
            assert_eq!(out.profile, in_memory.profile, "jobs={jobs}");
            assert_eq!(out.summary, in_memory.result.summary, "jobs={jobs}");
            assert_eq!(collect(records), in_memory.result, "jobs={jobs}");
        }
    }

    #[test]
    fn fault_plan_degrades_sites_without_aborting() {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let plan = || FaultPlan::new().with(Fault::SitePanic { site: 2 });
        let out = w
            .run(
                &mut RunCtx::serial().with_seed(5).with_fault_plan(plan()),
                RetryPolicy::none(),
            )
            .unwrap();
        assert_eq!(out.result.summary.sites_degraded, 1);
        assert!(matches!(
            out.result.outcomes[2],
            SiteOutcome::Degraded { .. }
        ));
        // Streamed path degrades identically.
        let mut records = Vec::new();
        let streamed = w
            .run_streamed(
                &mut RunCtx::serial().with_seed(5).with_fault_plan(plan()),
                RetryPolicy::none(),
                |r| {
                    records.push(r);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(streamed.summary, out.result.summary);
        assert_eq!(collect(records), out.result);
        // A retry recovers the attempt-0-only panic.
        let recovered = w
            .run(
                &mut RunCtx::serial().with_seed(5).with_fault_plan(plan()),
                RetryPolicy::attempts(2),
            )
            .unwrap();
        assert_eq!(recovered.result.summary.sites_degraded, 0);
    }

    fn ckpt_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("psnt-ckpt-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn cancel_at_fault_checkpoints_and_resumes_bit_identically() {
        use psnt_sup::Interrupt;
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let full = w
            .run(&mut RunCtx::serial().with_seed(5), RetryPolicy::none())
            .unwrap();
        let path = ckpt_path("cancel");
        // Cadence far past the horizon: only the trip writes.
        let policy = CheckpointPolicy::to_path(&path, 1000);
        let mut ctx = RunCtx::serial()
            .with_seed(5)
            .with_fault_plan(FaultPlan::new().with(Fault::CancelAt { cycle: 30 }));
        let err = w
            .run_checkpointed(&mut ctx, RetryPolicy::none(), &policy, None)
            .unwrap_err();
        assert_eq!(err, WorkloadError::Interrupted(Interrupt::Cancelled));
        let ckpt = WorkloadCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt.cycle(), 30, "interrupted exactly at the faulted cycle");
        let resumed = w
            .run_checkpointed(
                &mut RunCtx::serial().with_seed(5),
                RetryPolicy::none(),
                &CheckpointPolicy::none(),
                Some(&ckpt),
            )
            .unwrap();
        assert_eq!(resumed, full, "interrupted-then-resumed ≡ uninterrupted");
        // A mismatched seed is refused instead of silently diverging.
        let err = w
            .run_checkpointed(
                &mut RunCtx::serial().with_seed(6),
                RetryPolicy::none(),
                &CheckpointPolicy::none(),
                Some(&ckpt),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::InvalidConfig { name: "resume", .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deadline_trip_fault_interrupts_at_midpoint_and_resumes() {
        use psnt_sup::Interrupt;
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let mut records_full = Vec::new();
        let full = w
            .run_streamed(
                &mut RunCtx::serial().with_seed(7),
                RetryPolicy::none(),
                |r| {
                    records_full.push(r);
                    Ok(())
                },
            )
            .unwrap();
        let path = ckpt_path("deadline");
        let policy = CheckpointPolicy::to_path(&path, 1000);
        let mut ctx = RunCtx::serial()
            .with_seed(7)
            .with_fault_plan(FaultPlan::new().with(Fault::DeadlineTrip));
        let mut early = Vec::new();
        let err = w
            .run_streamed_checkpointed(&mut ctx, RetryPolicy::none(), &policy, None, |r| {
                early.push(r);
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err, WorkloadError::Interrupted(Interrupt::DeadlineExpired));
        assert!(early.is_empty(), "solve tripped before the stream started");
        let ckpt = WorkloadCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt.cycle(), 30, "deadline trips at the run midpoint");
        let mut records_resumed = Vec::new();
        let resumed = w
            .run_streamed_checkpointed(
                &mut RunCtx::serial().with_seed(7),
                RetryPolicy::none(),
                &CheckpointPolicy::none(),
                Some(&ckpt),
                |r| {
                    records_resumed.push(r);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(resumed, full);
        assert_eq!(
            collect(records_resumed),
            collect(records_full),
            "record-for-record identical stream"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cadence_checkpoints_are_resumable_mid_run() {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let path = ckpt_path("cadence");
        let policy = CheckpointPolicy::to_path(&path, 16);
        let full = w
            .run_checkpointed(
                &mut RunCtx::serial().with_seed(9),
                RetryPolicy::none(),
                &policy,
                None,
            )
            .unwrap();
        // 60 cycles at cadence 16: snapshots at 16, 32 and 48 — the
        // file on disk holds the last one.
        let ckpt = WorkloadCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt.cycle(), 48);
        let resumed = w
            .run_checkpointed(
                &mut RunCtx::serial().with_seed(9),
                RetryPolicy::none(),
                &CheckpointPolicy::none(),
                Some(&ckpt),
            )
            .unwrap();
        assert_eq!(resumed, full);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_errors_abort_the_streamed_run() {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let mut delivered = 0usize;
        let mut terminal = None;
        let err = w
            .run_streamed(
                &mut RunCtx::serial().with_seed(1),
                RetryPolicy::none(),
                |r| {
                    delivered += 1;
                    if let StreamRecord::Aborted {
                        sites_completed,
                        reason,
                    } = r
                    {
                        terminal = Some((sites_completed, reason));
                        return Ok(());
                    }
                    if delivered == 2 {
                        Err(ScanError::InvalidConfig {
                            name: "sink",
                            reason: "full".into(),
                        })
                    } else {
                        Ok(())
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::Scan(ScanError::InvalidConfig { name: "sink", .. })
        ));
        // The failed record plus the best-effort terminal abort marker:
        // one site made it downstream before the sink filled up.
        assert_eq!(delivered, 3);
        let (sites_completed, reason) = terminal.expect("terminal abort record");
        assert_eq!(sites_completed, 1);
        assert!(reason.contains("full"), "{reason}");
    }

    #[test]
    fn observer_counts_workload_telemetry() {
        use psnt_obs::Observer;
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let mut obs = Observer::ring(4096);
        let mut ctx = RunCtx::serial().with_seed(9).with_observer(&mut obs);
        w.run(&mut ctx, RetryPolicy::none()).unwrap();
        drop(ctx);
        assert!(obs.metrics.counter_value("workload.flits") > 0);
        assert!(obs.metrics.counter_value("workload.delta_solves") > 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn workload_bit_identity_across_paths_and_workers(
                seed in 0u64..1000,
                rate in 0.05f64..0.9,
                bursty in any::<bool>(),
            ) {
                let mut cfg = NocWorkloadConfig::small_2x2();
                cfg.cycles = 24;
                cfg.measure_every = 12;
                cfg.pattern = if bursty {
                    TrafficPattern::Bursty {
                        injection_rate: rate,
                        on_cycles: 3,
                        off_cycles: 5,
                    }
                } else {
                    TrafficPattern::Uniform { injection_rate: rate }
                };
                let w = NocWorkload::new(cfg).unwrap();
                let base = w
                    .run(&mut RunCtx::serial().with_seed(seed), RetryPolicy::none())
                    .unwrap();
                let par = w
                    .run(
                        &mut RunCtx::new(Engine::new(4)).with_seed(seed),
                        RetryPolicy::none(),
                    )
                    .unwrap();
                prop_assert_eq!(&par, &base);
                let mut records = Vec::new();
                let streamed = w
                    .run_streamed(
                        &mut RunCtx::new(Engine::new(4)).with_seed(seed),
                        RetryPolicy::none(),
                        |r| {
                            records.push(r);
                            Ok(())
                        },
                    )
                    .unwrap();
                prop_assert_eq!(&streamed.profile, &base.profile);
                prop_assert_eq!(collect(records), base.result);
            }
        }
    }
}
