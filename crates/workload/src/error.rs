//! Error types for the workload engine.

use std::error::Error;
use std::fmt;

/// Errors produced by the `psnt-workload` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A workload parameter violated a constraint.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// An error bubbled up from the PDN substrate.
    Pdn(psnt_pdn::PdnError),
    /// An error bubbled up from the scan-chain layer.
    Scan(psnt_scan::ScanError),
    /// An error bubbled up from the sensor core (co-simulation sensing).
    Sensor(psnt_core::SensorError),
    /// An error bubbled up from the control layer (droop mitigation).
    Control(psnt_control::ControlError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { name, reason } => {
                write!(f, "invalid workload configuration {name}: {reason}")
            }
            WorkloadError::Pdn(e) => write!(f, "pdn error: {e}"),
            WorkloadError::Scan(e) => write!(f, "scan error: {e}"),
            WorkloadError::Sensor(e) => write!(f, "sensor error: {e}"),
            WorkloadError::Control(e) => write!(f, "control error: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Pdn(e) => Some(e),
            WorkloadError::Scan(e) => Some(e),
            WorkloadError::Sensor(e) => Some(e),
            WorkloadError::Control(e) => Some(e),
            _ => None,
        }
    }
}

impl From<psnt_pdn::PdnError> for WorkloadError {
    fn from(e: psnt_pdn::PdnError) -> WorkloadError {
        WorkloadError::Pdn(e)
    }
}

impl From<psnt_scan::ScanError> for WorkloadError {
    fn from(e: psnt_scan::ScanError) -> WorkloadError {
        WorkloadError::Scan(e)
    }
}

impl From<psnt_core::SensorError> for WorkloadError {
    fn from(e: psnt_core::SensorError) -> WorkloadError {
        WorkloadError::Sensor(e)
    }
}

impl From<psnt_control::ControlError> for WorkloadError {
    fn from(e: psnt_control::ControlError) -> WorkloadError {
        WorkloadError::Control(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let c = WorkloadError::InvalidConfig {
            name: "cycles",
            reason: "must be non-zero".into(),
        };
        assert!(c.to_string().contains("cycles"));
        let p = WorkloadError::from(psnt_pdn::PdnError::InvalidWaveform("w".into()));
        assert!(Error::source(&p).is_some());
        let s = WorkloadError::from(psnt_scan::ScanError::InvalidPlacement { reason: "x".into() });
        assert!(Error::source(&s).is_some());
        let n = WorkloadError::from(psnt_core::SensorError::InvalidConfig {
            name: "clock_period",
            reason: "y".into(),
        });
        assert!(n.to_string().contains("sensor error"));
        assert!(Error::source(&n).is_some());
        let k = WorkloadError::from(psnt_control::ControlError::InvalidConfig {
            name: "latency",
            reason: "z".into(),
        });
        assert!(k.to_string().contains("control error"));
        assert!(Error::source(&k).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<WorkloadError>();
    }
}
