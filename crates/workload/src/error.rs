//! Error types for the workload engine.

use std::error::Error;
use std::fmt;

/// Errors produced by the `psnt-workload` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A workload parameter violated a constraint.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// An error bubbled up from the PDN substrate.
    Pdn(psnt_pdn::PdnError),
    /// An error bubbled up from the scan-chain layer.
    Scan(psnt_scan::ScanError),
    /// An error bubbled up from the sensor core (co-simulation sensing).
    Sensor(psnt_core::SensorError),
    /// An error bubbled up from the control layer (droop mitigation).
    Control(psnt_control::ControlError),
    /// A supervised campaign was stopped cooperatively (cancellation,
    /// deadline, or budget) before it completed. When the run carried a
    /// checkpoint path, the latest snapshot on disk resumes it.
    Interrupted(psnt_sup::Interrupt),
    /// A checkpoint file could not be written, read, or decoded.
    Checkpoint {
        /// The checkpoint path involved.
        path: String,
        /// Explanation of the failure.
        reason: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { name, reason } => {
                write!(f, "invalid workload configuration {name}: {reason}")
            }
            WorkloadError::Pdn(e) => write!(f, "pdn error: {e}"),
            WorkloadError::Scan(e) => write!(f, "scan error: {e}"),
            WorkloadError::Sensor(e) => write!(f, "sensor error: {e}"),
            WorkloadError::Control(e) => write!(f, "control error: {e}"),
            WorkloadError::Interrupted(reason) => write!(f, "workload interrupted: {reason}"),
            WorkloadError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {path}: {reason}")
            }
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Pdn(e) => Some(e),
            WorkloadError::Scan(e) => Some(e),
            WorkloadError::Sensor(e) => Some(e),
            WorkloadError::Control(e) => Some(e),
            _ => None,
        }
    }
}

// Cooperative stops keep their identity across layer boundaries so
// every caller matches one `Interrupted` variant, no matter how deep
// in the stack the supervisor tripped.
impl From<psnt_pdn::PdnError> for WorkloadError {
    fn from(e: psnt_pdn::PdnError) -> WorkloadError {
        match e {
            psnt_pdn::PdnError::Interrupted(reason) => WorkloadError::Interrupted(reason),
            other => WorkloadError::Pdn(other),
        }
    }
}

impl From<psnt_scan::ScanError> for WorkloadError {
    fn from(e: psnt_scan::ScanError) -> WorkloadError {
        match e {
            psnt_scan::ScanError::Interrupted(reason) => WorkloadError::Interrupted(reason),
            other => WorkloadError::Scan(other),
        }
    }
}

impl From<psnt_core::SensorError> for WorkloadError {
    fn from(e: psnt_core::SensorError) -> WorkloadError {
        match e {
            psnt_core::SensorError::Interrupted(reason) => WorkloadError::Interrupted(reason),
            other => WorkloadError::Sensor(other),
        }
    }
}

impl From<psnt_sup::Interrupt> for WorkloadError {
    fn from(reason: psnt_sup::Interrupt) -> WorkloadError {
        WorkloadError::Interrupted(reason)
    }
}

impl From<psnt_control::ControlError> for WorkloadError {
    fn from(e: psnt_control::ControlError) -> WorkloadError {
        WorkloadError::Control(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let c = WorkloadError::InvalidConfig {
            name: "cycles",
            reason: "must be non-zero".into(),
        };
        assert!(c.to_string().contains("cycles"));
        let p = WorkloadError::from(psnt_pdn::PdnError::InvalidWaveform("w".into()));
        assert!(Error::source(&p).is_some());
        let s = WorkloadError::from(psnt_scan::ScanError::InvalidPlacement { reason: "x".into() });
        assert!(Error::source(&s).is_some());
        let n = WorkloadError::from(psnt_core::SensorError::InvalidConfig {
            name: "clock_period",
            reason: "y".into(),
        });
        assert!(n.to_string().contains("sensor error"));
        assert!(Error::source(&n).is_some());
        let k = WorkloadError::from(psnt_control::ControlError::InvalidConfig {
            name: "latency",
            reason: "z".into(),
        });
        assert!(k.to_string().contains("control error"));
        assert!(Error::source(&k).is_some());
    }

    #[test]
    fn interrupts_keep_their_identity_across_layers() {
        use psnt_sup::Interrupt;
        for e in [
            WorkloadError::from(psnt_pdn::PdnError::Interrupted(Interrupt::Cancelled)),
            WorkloadError::from(psnt_scan::ScanError::Interrupted(Interrupt::Cancelled)),
            WorkloadError::from(psnt_core::SensorError::Interrupted(Interrupt::Cancelled)),
            WorkloadError::from(Interrupt::Cancelled),
        ] {
            assert_eq!(e, WorkloadError::Interrupted(Interrupt::Cancelled));
            assert!(e.to_string().contains("interrupted"));
        }
        let ck = WorkloadError::Checkpoint {
            path: "/tmp/x.ckpt".into(),
            reason: "short read".into(),
        };
        assert!(ck.to_string().contains("/tmp/x.ckpt"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<WorkloadError>();
    }
}
