//! Checkpoint/resume for workload campaigns.
//!
//! A supervised run snapshots its solve-phase state — the
//! [`StepperSnapshot`] plus everything the driver accumulated — at the
//! cadence the supervisor's [`RunBudget`](psnt_sup::RunBudget) asks
//! for, and again the moment a cooperative interrupt trips. The
//! snapshot restores onto a fresh run over the **same workload, seed
//! and worker count**, after which the run is bit-identical,
//! record for record, to one that was never interrupted: the stepper's
//! delta-solve chain continues from the captured floating-point state
//! and the traffic plan (a pure function of the seed) is rebuilt, not
//! stored.
//!
//! Checkpoints cover the cycle loop only. The scan sweep that follows
//! the solve always runs in full — an interrupt during the sweep
//! surfaces as the stream's terminal
//! [`StreamRecord::Aborted`](psnt_scan::campaign::StreamRecord::Aborted)
//! record, and a resumed run re-enters the sweep from its start, which
//! keeps the record stream identical without sweep-side bookkeeping.
//!
//! On-disk format: one JSON document, written atomically (`.tmp` +
//! rename) so a crash mid-write never leaves a truncated checkpoint in
//! place of a good one.

use std::fs;
use std::path::{Path, PathBuf};

use psnt_cells::units::Time;
use psnt_control::Actuation;
use psnt_control::ControlFrame;
use serde::{json, Deserialize, Serialize};

use crate::campaign::WindowStats;
use crate::error::WorkloadError;
use crate::mitigated::ActuationSample;
use crate::stepper::StepperSnapshot;

/// Schema version stamped into every checkpoint; loads refuse other
/// versions instead of misinterpreting the payload.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Where and how often a supervised run snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot destination; `None` disables checkpointing (the run is
    /// still supervised, it just has nothing to resume from).
    pub path: Option<PathBuf>,
    /// Snapshot cadence in cycles. `None` falls back to the
    /// supervisor budget's
    /// [`checkpoint_cadence`](psnt_sup::RunBudget::checkpoint_cadence);
    /// if that is also unset, only interrupts trigger a snapshot.
    pub every: Option<u64>,
}

impl CheckpointPolicy {
    /// No checkpointing.
    pub fn none() -> CheckpointPolicy {
        CheckpointPolicy::default()
    }

    /// Snapshot to `path` every `every` cycles (and on interrupt).
    pub fn to_path(path: impl Into<PathBuf>, every: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            path: Some(path.into()),
            every: Some(every.max(1)),
        }
    }
}

/// A batch-path solve checkpoint ([`NocWorkload::run`] /
/// [`NocWorkload::run_streamed`] drivers).
///
/// [`NocWorkload::run`]: crate::NocWorkload::run
/// [`NocWorkload::run_streamed`]: crate::NocWorkload::run_streamed
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The run seed the snapshot was captured under.
    pub seed: u64,
    /// The stepper's dynamic state at the captured cycle.
    pub stepper: StepperSnapshot,
    /// Window statistics of every window touched so far (a prefix of
    /// the run's windows; untouched windows are rebuilt empty).
    pub stats_done: Vec<WindowStats>,
    /// Per-site sampled rail points so far, one series per sensor
    /// site.
    pub site_points: Vec<Vec<(Time, f64)>>,
}

/// A closed-loop checkpoint ([`NocWorkload::run_mitigated`] driver):
/// the solve state plus the control loop's traces, in-flight frames
/// and policy state.
///
/// [`NocWorkload::run_mitigated`]: crate::NocWorkload::run_mitigated
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigatedCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The run seed the snapshot was captured under.
    pub seed: u64,
    /// The policy name in force (`"open-loop"` for no mitigator);
    /// resume refuses a mismatched policy.
    pub policy: String,
    /// The stepper's dynamic state at the captured cycle.
    pub stepper: StepperSnapshot,
    /// Window statistics of every window touched so far.
    pub stats_done: Vec<WindowStats>,
    /// Per-cycle droop depths so far.
    pub droop_trace: Vec<f64>,
    /// Per-cycle actuation summaries so far.
    pub actuation_trace: Vec<ActuationSample>,
    /// Deepest droop so far, volts.
    pub worst_droop: f64,
    /// Cycle of the deepest droop so far.
    pub worst_droop_cycle: usize,
    /// Cycles run with non-neutral actuation so far.
    pub engaged_cycles: u64,
    /// Site readings dropped by faults so far.
    pub degraded_readings: u64,
    /// Peak throttle backlog so far.
    pub deferred_peak: usize,
    /// Frames in the delay line, oldest first.
    pub in_flight: Vec<ControlFrame>,
    /// The actuation the controller last derived.
    pub act: Actuation,
    /// The mitigator's serialized state
    /// ([`Mitigator::state_snapshot`](psnt_control::Mitigator::state_snapshot));
    /// `None` when the policy is stateless or does not support
    /// snapshots.
    pub mitigator_state: Option<String>,
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> WorkloadError {
    WorkloadError::Checkpoint {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

/// Writes `text` to `path` atomically: a sibling `.tmp` file is
/// written and fsynced, then renamed over the destination.
fn write_atomic(path: &Path, text: &str) -> Result<(), WorkloadError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text).map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

fn load_checked<T: Deserialize>(
    path: &Path,
    version_of: impl Fn(&T) -> u32,
) -> Result<T, WorkloadError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let ckpt: T = json::from_str(&text).map_err(|e| io_err(path, format!("decode: {e:?}")))?;
    let v = version_of(&ckpt);
    if v != CHECKPOINT_VERSION {
        return Err(io_err(
            path,
            format!("schema version {v}, this build reads {CHECKPOINT_VERSION}"),
        ));
    }
    Ok(ckpt)
}

impl WorkloadCheckpoint {
    /// Saves the checkpoint to `path` atomically.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Checkpoint`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), WorkloadError> {
        write_atomic(path, &json::to_string(self))
    }

    /// Loads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Checkpoint`] on I/O failure, undecodable JSON,
    /// or a schema-version mismatch.
    pub fn load(path: &Path) -> Result<WorkloadCheckpoint, WorkloadError> {
        load_checked(path, |c: &WorkloadCheckpoint| c.version)
    }

    /// The cycle the snapshot was captured at.
    pub fn cycle(&self) -> usize {
        self.stepper.cycle()
    }
}

impl MitigatedCheckpoint {
    /// Saves the checkpoint to `path` atomically.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Checkpoint`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), WorkloadError> {
        write_atomic(path, &json::to_string(self))
    }

    /// Loads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Checkpoint`] on I/O failure, undecodable JSON,
    /// or a schema-version mismatch.
    pub fn load(path: &Path) -> Result<MitigatedCheckpoint, WorkloadError> {
        load_checked(path, |c: &MitigatedCheckpoint| c.version)
    }

    /// The cycle the snapshot was captured at.
    pub fn cycle(&self) -> usize {
        self.stepper.cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors() {
        assert_eq!(CheckpointPolicy::none(), CheckpointPolicy::default());
        let p = CheckpointPolicy::to_path("/tmp/x.ckpt", 0);
        assert_eq!(p.every, Some(1), "cadence clamps to ≥ 1");
        assert!(p.path.is_some());
    }

    #[test]
    fn load_rejects_missing_and_garbage_files() {
        let dir = std::env::temp_dir().join("psnt-ckpt-test");
        fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("missing.ckpt");
        assert!(matches!(
            WorkloadCheckpoint::load(&missing),
            Err(WorkloadError::Checkpoint { .. })
        ));
        let garbage = dir.join("garbage.ckpt");
        fs::write(&garbage, "not json").unwrap();
        assert!(matches!(
            MitigatedCheckpoint::load(&garbage),
            Err(WorkloadError::Checkpoint { .. })
        ));
        fs::remove_file(&garbage).unwrap();
    }
}
