//! Telemetry layer for every simulator in the workspace.
//!
//! Simulation results in this workspace are deterministic, but *how*
//! a run got to its result — how many events the gate-level simulator
//! processed, how deep its queue grew, which FSM transitions fired,
//! how the PDN solver spent its steps — was invisible. This crate
//! makes that visible without perturbing the simulation itself:
//!
//! * [`metrics::MetricsRegistry`] — named counters, gauges and
//!   fixed-bucket histograms, interned to integer ids so hot paths
//!   never hash or compare strings;
//! * [`events`] — a structured event log: serde-serialized records
//!   carrying sim time, subsystem and key/value payloads, written
//!   through an [`events::EventSink`] (JSON-Lines file or in-memory
//!   ring buffer);
//! * [`span`] — hierarchical spans carrying wall-clock *and*
//!   simulation-time intervals plus typed attributes, forming a causal
//!   tree (campaign → site → grid-solve → measure);
//! * [`trace`] — exporters rendering that tree as Chrome trace-event
//!   JSON (Perfetto-loadable) and folded flamegraph stacks;
//! * [`manifest::RunManifest`] — the reproducibility header (config
//!   hash, seed, PVT corner, delay codes, git describe) emitted at the
//!   head of every telemetry stream.
//!
//! The [`Observer`] facade ties these together. Simulators accept an
//! `Option<&mut Observer>`-style handle — no globals, no background
//! threads — and every instrumentation site is skipped entirely when
//! no observer is attached, so the detached cost is one branch.
//!
//! ```
//! use psnt_obs::{Observer, events::Event, manifest::RunManifest};
//!
//! let mut obs = Observer::ring(64);
//! obs.manifest(&RunManifest::new("demo").seed(7));
//! let span = psnt_obs::span::Span::begin("phase");
//! obs.event(Event::new("demo", "step").field("k", &1u64));
//! obs.end_span(span);
//! obs.finish();
//! assert!(obs.ring_lines().unwrap().len() >= 4);
//! ```

pub mod events;
pub mod manifest;
pub mod metrics;
pub mod observer;
pub mod span;
pub mod trace;

pub use events::{
    Event, EventSink, JsonlSink, NullSink, Record, RingBufferSink, RotatingJsonlSink, Severity,
};
pub use manifest::RunManifest;
pub use metrics::{
    CounterId, GaugeId, Histogram, HistogramId, MetricsDiff, MetricsRegistry, MetricsSnapshot,
};
pub use observer::Observer;
pub use span::{mask_wall_times, RemoteSpan, Span, SpanRecord};
