//! Trace exporters: Chrome trace-event JSON and folded flamegraph text.
//!
//! The observer retains every closed [`SpanRecord`]; these functions
//! render that causal tree into the two de-facto exchange formats:
//!
//! * **Chrome trace-event JSON** — an object with a `traceEvents`
//!   array of `"ph":"X"` complete events (`ts`/`dur` in microseconds,
//!   one `tid` per execution track), loadable in Perfetto or
//!   `chrome://tracing`. Sim-time bounds and span attributes ride in
//!   each event's `args`.
//! * **Folded stacks** — one `root;child;leaf <self-time-µs>` line per
//!   distinct call path, the input format of `flamegraph.pl` and
//!   `inferno`. Self time is the span's wall time minus its children's.

use serde::{json, Value};

use crate::span::SpanRecord;

/// Renders span records as a Chrome trace-event JSON document.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(spans.len());
    for s in spans {
        let mut args: Vec<(String, Value)> = vec![("id".to_string(), Value::U64(s.id))];
        if let Some(p) = s.parent {
            args.push(("parent".to_string(), Value::U64(p)));
        }
        if let Some(t0) = s.sim_t0_ps {
            args.push(("sim_t0_ps".to_string(), Value::F64(t0)));
        }
        if let Some(t1) = s.sim_t1_ps {
            args.push(("sim_t1_ps".to_string(), Value::F64(t1)));
        }
        args.extend(s.attrs.iter().cloned());
        events.push(Value::Map(vec![
            ("name".to_string(), Value::Str(s.name.clone())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::F64(s.wall_start_us)),
            ("dur".to_string(), Value::F64(s.wall_us)),
            ("pid".to_string(), Value::U64(1)),
            ("tid".to_string(), Value::U64(s.track as u64)),
            ("args".to_string(), Value::Map(args)),
        ]));
    }
    json::to_string(&Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]))
}

/// Renders span records as folded stacks, one aggregated call path per
/// line, sorted lexicographically for deterministic output.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let find = |id: u64| spans.iter().find(|s| s.id == id);
    let mut lines: Vec<(String, f64)> = Vec::new();
    for s in spans {
        // Path: walk parents up to the root.
        let mut path = vec![s.name.as_str()];
        let mut cursor = s.parent;
        while let Some(pid) = cursor {
            match find(pid) {
                Some(p) => {
                    path.push(p.name.as_str());
                    cursor = p.parent;
                }
                None => break,
            }
        }
        path.reverse();
        let path = path.join(";");
        // Self time: wall time not attributed to any child span.
        let child_us: f64 = spans
            .iter()
            .filter(|c| c.parent == Some(s.id))
            .map(|c| c.wall_us)
            .sum();
        let self_us = (s.wall_us - child_us).max(0.0);
        match lines.iter_mut().find(|(p, _)| *p == path) {
            Some((_, total)) => *total += self_us,
            None => lines.push((path, self_us)),
        }
    }
    lines.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (path, us) in lines {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&format!("{}\n", us.round() as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: Option<u64>, name: &str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            track: 0,
            wall_start_us: start,
            wall_us: dur,
            sim_t0_ps: Some(0.0),
            sim_t1_ps: Some(100.0),
            attrs: vec![("tile".to_string(), Value::Str("r0c0".to_string()))],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let spans = vec![
            record(1, None, "campaign", 0.0, 100.0),
            record(2, Some(1), "site", 10.0, 40.0),
        ];
        let doc = json::parse(&chrome_trace_json(&spans)).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        assert_eq!(events.len(), 2);
        let site = &events[1];
        assert_eq!(site.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(site.get("name").and_then(Value::as_str), Some("site"));
        assert_eq!(site.get("ts").and_then(Value::as_f64), Some(10.0));
        assert_eq!(site.get("dur").and_then(Value::as_f64), Some(40.0));
        let args = site.get("args").unwrap();
        assert_eq!(args.get("parent").and_then(Value::as_u64), Some(1));
        assert_eq!(args.get("sim_t1_ps").and_then(Value::as_f64), Some(100.0));
        assert_eq!(args.get("tile").and_then(Value::as_str), Some("r0c0"));
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let spans = vec![
            record(1, None, "campaign", 0.0, 100.0),
            record(2, Some(1), "site", 10.0, 40.0),
            record(3, Some(1), "site", 50.0, 20.0),
        ];
        let folded = folded_stacks(&spans);
        // campaign self time: 100 - (40 + 20) = 40; sites aggregate.
        assert_eq!(folded, "campaign 40\ncampaign;site 60\n");
    }

    #[test]
    fn folded_stacks_clamp_overcommitted_parents() {
        // A parent whose children (on other tracks) overlap can report
        // less wall time than their sum; self time clamps at zero.
        let spans = vec![
            record(1, None, "sweep", 0.0, 30.0),
            record(2, Some(1), "site", 0.0, 25.0),
            record(3, Some(1), "site", 1.0, 25.0),
        ];
        let folded = folded_stacks(&spans);
        assert_eq!(folded, "sweep 0\nsweep;site 50\n");
    }

    #[test]
    fn orphan_parents_fall_back_to_root() {
        let spans = vec![record(7, Some(99), "lost", 0.0, 5.0)];
        assert_eq!(folded_stacks(&spans), "lost 5\n");
    }
}
