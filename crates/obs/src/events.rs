//! Structured event records and the sinks that persist them.
//!
//! A telemetry stream is a sequence of [`Record`]s: one manifest at the
//! head, then events and spans as the run progresses, then one metrics
//! snapshot at the end. Every record serializes to a single flat JSON
//! object with a `"type"` discriminator, so a stream written by
//! [`JsonlSink`] is plain JSON-Lines that any log tooling can consume.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use serde::{json, Serialize, Value};

use crate::manifest::RunManifest;
use crate::span::SpanRecord;
use psnt_cells::units::Time;

/// How important an event is. Observers drop events below their
/// configured minimum before they reach the sink (counted, never
/// silent). The default is [`Severity::Info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Severity {
    /// High-volume diagnostics (per-transition, per-solver-step).
    Debug,
    /// Normal progress events.
    #[default]
    Info,
    /// Degradation the run survived (retries, fallbacks).
    Warn,
    /// Failures surfaced to the caller.
    Error,
}

impl Severity {
    /// The lowercase wire name (`"debug"`, `"info"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One structured event: where it happened, what happened, when in
/// simulated time, and an open key/value payload.
#[derive(Debug, Clone)]
pub struct Event {
    /// Simulated time in picoseconds, when the event is tied to a
    /// point on the simulation clock.
    pub t_ps: Option<f64>,
    /// Which layer emitted it (`"sim"`, `"fsm"`, `"scan"`, `"pdn"`, ...).
    pub subsystem: String,
    /// What happened (`"transition"`, `"trim"`, `"site_done"`, ...).
    pub kind: String,
    /// How important it is; serialized only when not [`Severity::Info`].
    pub severity: Severity,
    /// Additional payload, flattened into the record's JSON object.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event with no timestamp and no payload.
    pub fn new(subsystem: impl Into<String>, kind: impl Into<String>) -> Event {
        Event {
            t_ps: None,
            subsystem: subsystem.into(),
            kind: kind.into(),
            severity: Severity::Info,
            fields: Vec::new(),
        }
    }

    /// Sets the event's severity.
    pub fn severity(mut self, severity: Severity) -> Event {
        self.severity = severity;
        self
    }

    /// Stamps the event with a simulated time.
    pub fn at(self, t: Time) -> Event {
        self.at_ps(t.picoseconds())
    }

    /// Stamps the event with a simulated time in picoseconds.
    pub fn at_ps(mut self, t_ps: f64) -> Event {
        self.t_ps = Some(t_ps);
        self
    }

    /// Attaches one serializable key/value pair.
    pub fn field(mut self, key: impl Into<String>, value: &impl Serialize) -> Event {
        self.fields.push((key.into(), value.to_value()));
        self
    }
}

/// One line of a telemetry stream.
#[derive(Debug, Clone)]
pub enum Record {
    /// The reproducibility header; first line of every stream.
    Manifest(RunManifest),
    /// A structured event.
    Event(Event),
    /// A finished span, with its place in the causal tree.
    Span(SpanRecord),
    /// The final metrics snapshot (already rendered to a value tree).
    Metrics(Value),
}

impl Serialize for Record {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = Vec::new();
        match self {
            Record::Manifest(m) => {
                entries.push(("type".to_string(), Value::Str("manifest".to_string())));
                if let Value::Map(rest) = m.to_value() {
                    entries.extend(rest);
                }
            }
            Record::Event(e) => {
                entries.push(("type".to_string(), Value::Str("event".to_string())));
                if let Some(t) = e.t_ps {
                    entries.push(("t_ps".to_string(), Value::F64(t)));
                }
                entries.push(("subsystem".to_string(), Value::Str(e.subsystem.clone())));
                entries.push(("kind".to_string(), Value::Str(e.kind.clone())));
                if e.severity != Severity::Info {
                    entries.push((
                        "severity".to_string(),
                        Value::Str(e.severity.as_str().to_string()),
                    ));
                }
                entries.extend(e.fields.iter().cloned());
            }
            Record::Span(s) => {
                entries.push(("type".to_string(), Value::Str("span".to_string())));
                entries.push(("id".to_string(), Value::U64(s.id)));
                if let Some(p) = s.parent {
                    entries.push(("parent".to_string(), Value::U64(p)));
                }
                entries.push(("name".to_string(), Value::Str(s.name.clone())));
                entries.push(("track".to_string(), Value::U64(s.track as u64)));
                entries.push(("wall_start_us".to_string(), Value::F64(s.wall_start_us)));
                entries.push(("wall_us".to_string(), Value::F64(s.wall_us)));
                if let Some(t0) = s.sim_t0_ps {
                    entries.push(("t0_ps".to_string(), Value::F64(t0)));
                }
                if let Some(t1) = s.sim_t1_ps {
                    entries.push(("t1_ps".to_string(), Value::F64(t1)));
                }
                entries.extend(s.attrs.iter().cloned());
            }
            Record::Metrics(snapshot) => {
                entries.push(("type".to_string(), Value::Str("metrics".to_string())));
                if let Value::Map(rest) = snapshot {
                    entries.extend(rest.iter().cloned());
                }
            }
        }
        Value::Map(entries)
    }
}

impl Record {
    /// The record as one JSON-Lines line (no trailing newline).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }
}

/// Where records go. Implementations must tolerate being handed
/// records at simulator-event rate.
pub trait EventSink {
    /// Persists one record.
    fn emit(&mut self, record: &Record);

    /// Flushes buffered output; called once when the stream ends.
    fn flush(&mut self) {}

    /// Records this sink has lost (evicted, failed to write, or
    /// deleted by rotation). Promoted to `obs.events_dropped` when the
    /// observer finishes, so truncation is never silent.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every record. Backs trace-only observers, where the span
/// tree is wanted but no stream is.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _record: &Record) {}
}

/// Writes records as JSON-Lines to a file (or any writer).
pub struct JsonlSink {
    out: Box<dyn Write>,
    write_errors: u64,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Box::new(BufWriter::new(file)),
            write_errors: 0,
        })
    }

    /// Wraps an arbitrary writer.
    pub fn from_writer(out: Box<dyn Write>) -> JsonlSink {
        JsonlSink {
            out,
            write_errors: 0,
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, record: &Record) {
        // Telemetry must never abort a simulation; a full disk loses
        // the log line, not the run — but the loss is counted.
        if writeln!(self.out, "{}", record.to_json()).is_err() {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }

    fn dropped(&self) -> u64 {
        self.write_errors
    }
}

/// Bounded-disk JSON-Lines: writes to `path`, and when the active file
/// exceeds `max_bytes` shifts it to `path.1` (older generations move
/// to `path.2`, `path.3`, ...). At most `keep` rotated files survive;
/// records in a deleted generation count as dropped.
pub struct RotatingJsonlSink {
    path: std::path::PathBuf,
    max_bytes: u64,
    keep: usize,
    out: Option<BufWriter<File>>,
    bytes: u64,
    /// Lines written to the active file and to each live rotated
    /// generation (index 0 is `path.1`), so deletions can be counted.
    lines_in_file: u64,
    rotated_lines: Vec<u64>,
    dropped: u64,
    write_errors: u64,
}

impl RotatingJsonlSink {
    /// Creates (truncating) the active file at `path`.
    ///
    /// `max_bytes` bounds the active file (at least one record is
    /// always written before rotating); `keep` is how many rotated
    /// generations survive (0 means rotation deletes immediately).
    pub fn create(
        path: impl AsRef<Path>,
        max_bytes: u64,
        keep: usize,
    ) -> std::io::Result<RotatingJsonlSink> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(RotatingJsonlSink {
            path,
            max_bytes: max_bytes.max(1),
            keep,
            out: Some(BufWriter::new(file)),
            bytes: 0,
            lines_in_file: 0,
            rotated_lines: Vec::new(),
            dropped: 0,
            write_errors: 0,
        })
    }

    fn generation_path(&self, gen: usize) -> std::path::PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(format!(".{gen}"));
        std::path::PathBuf::from(os)
    }

    fn rotate(&mut self) {
        drop(self.out.take());
        // Shift generations up: path.(keep-1) -> path.keep, ...,
        // path -> path.1. The generation pushed past `keep` dies.
        if self.rotated_lines.len() >= self.keep {
            if let Some(lost) = self.rotated_lines.pop() {
                self.dropped += lost;
            }
            let _ = std::fs::remove_file(self.generation_path(self.keep.max(1)));
        }
        for gen in (1..=self.rotated_lines.len()).rev() {
            let _ = std::fs::rename(self.generation_path(gen), self.generation_path(gen + 1));
        }
        if self.keep == 0 {
            self.dropped += self.lines_in_file;
            let _ = std::fs::remove_file(&self.path);
        } else {
            let _ = std::fs::rename(&self.path, self.generation_path(1));
            self.rotated_lines.insert(0, self.lines_in_file);
        }
        self.lines_in_file = 0;
        self.bytes = 0;
        self.out = File::create(&self.path).map(BufWriter::new).ok();
    }
}

impl EventSink for RotatingJsonlSink {
    fn emit(&mut self, record: &Record) {
        if self.bytes >= self.max_bytes {
            self.rotate();
        }
        let line = record.to_json();
        let wrote = match self.out.as_mut() {
            Some(out) => writeln!(out, "{line}").is_ok(),
            None => false,
        };
        if wrote {
            self.bytes += line.len() as u64 + 1;
            self.lines_in_file += 1;
        } else {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped + self.write_errors
    }
}

/// Shared handle to the lines captured by a [`RingBufferSink`].
pub type RingHandle = Rc<RefCell<VecDeque<String>>>;

/// Keeps the most recent `capacity` records in memory as rendered
/// JSON lines — for tests and for post-mortem inspection in-process.
pub struct RingBufferSink {
    capacity: usize,
    lines: RingHandle,
    evicted: u64,
}

impl RingBufferSink {
    /// A sink retaining the last `capacity` records, plus a handle for
    /// reading them back while the sink is owned by an observer.
    pub fn new(capacity: usize) -> (RingBufferSink, RingHandle) {
        let lines: RingHandle = Rc::new(RefCell::new(VecDeque::new()));
        (
            RingBufferSink {
                capacity: capacity.max(1),
                lines: Rc::clone(&lines),
                evicted: 0,
            },
            lines,
        )
    }
}

impl EventSink for RingBufferSink {
    fn emit(&mut self, record: &Record) {
        let mut lines = self.lines.borrow_mut();
        if lines.len() == self.capacity {
            lines.pop_front();
            self.evicted += 1;
        }
        lines.push_back(record.to_json());
    }

    fn dropped(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_record(name: &str, wall_us: f64) -> Record {
        Record::Span(SpanRecord {
            id: 1,
            parent: None,
            name: name.to_string(),
            track: 0,
            wall_start_us: 0.0,
            wall_us,
            sim_t0_ps: None,
            sim_t1_ps: None,
            attrs: Vec::new(),
        })
    }

    #[test]
    fn severity_serializes_only_when_not_info() {
        let info = Record::Event(Event::new("a", "b")).to_json();
        assert!(!info.contains("severity"), "info is the default: {info}");
        let warn = Record::Event(Event::new("a", "b").severity(Severity::Warn)).to_json();
        let v = json::parse(&warn).unwrap();
        assert_eq!(v.get("severity").and_then(Value::as_str), Some("warn"));
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn span_record_serializes_tree_fields() {
        let line = Record::Span(SpanRecord {
            id: 5,
            parent: Some(2),
            name: "site".to_string(),
            track: 3,
            wall_start_us: 1.5,
            wall_us: 9.0,
            sim_t0_ps: Some(0.0),
            sim_t1_ps: Some(250.0),
            attrs: vec![("tile".to_string(), Value::Str("r1c0".to_string()))],
        })
        .to_json();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("span"));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("parent").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("track").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("t0_ps").and_then(Value::as_f64), Some(0.0));
        assert_eq!(v.get("t1_ps").and_then(Value::as_f64), Some(250.0));
        assert_eq!(v.get("tile").and_then(Value::as_str), Some("r1c0"));
    }

    #[test]
    fn ring_buffer_counts_evictions() {
        let (mut sink, _lines) = RingBufferSink::new(2);
        for _ in 0..5 {
            sink.emit(&span_record("s", 1.0));
        }
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn rotating_sink_rotates_and_counts_deleted_lines() {
        let dir = std::env::temp_dir().join("psnt_obs_rotate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        // Tiny budget: every record overflows the active file, so each
        // emit after the first rotates. Keep one generation.
        let mut sink = RotatingJsonlSink::create(&path, 8, 1).unwrap();
        for i in 0..4 {
            sink.emit(&span_record(&format!("s{i}"), 1.0));
        }
        sink.flush();
        // Active file holds s3, path.1 holds s2; s0 and s1 died.
        assert_eq!(sink.dropped(), 2);
        let active = std::fs::read_to_string(&path).unwrap();
        assert!(active.contains("s3"), "active file: {active}");
        let gen1 = std::fs::read_to_string(dir.join("out.jsonl.1")).unwrap();
        assert!(gen1.contains("s2"), "rotated file: {gen1}");
        assert!(!dir.join("out.jsonl.2").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotating_sink_under_budget_drops_nothing() {
        let dir = std::env::temp_dir().join("psnt_obs_rotate_nodrop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let mut sink = RotatingJsonlSink::create(&path, 1 << 20, 2).unwrap();
        for _ in 0..50 {
            sink.emit(&span_record("s", 1.0));
        }
        sink.flush();
        assert_eq!(sink.dropped(), 0);
        let active = std::fs::read_to_string(&path).unwrap();
        assert_eq!(active.lines().count(), 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_record_is_flat_json() {
        let e = Event::new("fsm", "transition")
            .at(Time::from_ns(2.0))
            .field("from", &"Idle")
            .field("to", &"Ready");
        let line = Record::Event(e).to_json();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("event"));
        assert_eq!(v.get("t_ps").and_then(Value::as_f64), Some(2000.0));
        assert_eq!(v.get("subsystem").and_then(Value::as_str), Some("fsm"));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("transition"));
        assert_eq!(v.get("from").and_then(Value::as_str), Some("Idle"));
        assert_eq!(v.get("to").and_then(Value::as_str), Some("Ready"));
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let (mut sink, lines) = RingBufferSink::new(2);
        for i in 0..5u64 {
            sink.emit(&Record::Event(Event::new("t", "n").field("i", &i)));
        }
        let lines = lines.borrow();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"i\":3"));
        assert!(lines[1].contains("\"i\":4"));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("psnt_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&span_record("a", 1.5));
            sink.emit(&span_record("b", 2.5));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("type").and_then(Value::as_str), Some("span"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
