//! Structured event records and the sinks that persist them.
//!
//! A telemetry stream is a sequence of [`Record`]s: one manifest at the
//! head, then events and spans as the run progresses, then one metrics
//! snapshot at the end. Every record serializes to a single flat JSON
//! object with a `"type"` discriminator, so a stream written by
//! [`JsonlSink`] is plain JSON-Lines that any log tooling can consume.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use serde::{json, Serialize, Value};

use crate::manifest::RunManifest;
use psnt_cells::units::Time;

/// One structured event: where it happened, what happened, when in
/// simulated time, and an open key/value payload.
#[derive(Debug, Clone)]
pub struct Event {
    /// Simulated time in picoseconds, when the event is tied to a
    /// point on the simulation clock.
    pub t_ps: Option<f64>,
    /// Which layer emitted it (`"sim"`, `"fsm"`, `"scan"`, `"pdn"`, ...).
    pub subsystem: String,
    /// What happened (`"transition"`, `"trim"`, `"site_done"`, ...).
    pub kind: String,
    /// Additional payload, flattened into the record's JSON object.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event with no timestamp and no payload.
    pub fn new(subsystem: impl Into<String>, kind: impl Into<String>) -> Event {
        Event {
            t_ps: None,
            subsystem: subsystem.into(),
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Stamps the event with a simulated time.
    pub fn at(self, t: Time) -> Event {
        self.at_ps(t.picoseconds())
    }

    /// Stamps the event with a simulated time in picoseconds.
    pub fn at_ps(mut self, t_ps: f64) -> Event {
        self.t_ps = Some(t_ps);
        self
    }

    /// Attaches one serializable key/value pair.
    pub fn field(mut self, key: impl Into<String>, value: &impl Serialize) -> Event {
        self.fields.push((key.into(), value.to_value()));
        self
    }
}

/// One line of a telemetry stream.
#[derive(Debug, Clone)]
pub enum Record {
    /// The reproducibility header; first line of every stream.
    Manifest(RunManifest),
    /// A structured event.
    Event(Event),
    /// A finished wall-clock span.
    Span {
        /// Span name, e.g. the experiment or phase it wraps.
        name: String,
        /// Wall-clock duration in microseconds.
        wall_us: f64,
    },
    /// The final metrics snapshot (already rendered to a value tree).
    Metrics(Value),
}

impl Serialize for Record {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = Vec::new();
        match self {
            Record::Manifest(m) => {
                entries.push(("type".to_string(), Value::Str("manifest".to_string())));
                if let Value::Map(rest) = m.to_value() {
                    entries.extend(rest);
                }
            }
            Record::Event(e) => {
                entries.push(("type".to_string(), Value::Str("event".to_string())));
                if let Some(t) = e.t_ps {
                    entries.push(("t_ps".to_string(), Value::F64(t)));
                }
                entries.push(("subsystem".to_string(), Value::Str(e.subsystem.clone())));
                entries.push(("kind".to_string(), Value::Str(e.kind.clone())));
                entries.extend(e.fields.iter().cloned());
            }
            Record::Span { name, wall_us } => {
                entries.push(("type".to_string(), Value::Str("span".to_string())));
                entries.push(("name".to_string(), Value::Str(name.clone())));
                entries.push(("wall_us".to_string(), Value::F64(*wall_us)));
            }
            Record::Metrics(snapshot) => {
                entries.push(("type".to_string(), Value::Str("metrics".to_string())));
                if let Value::Map(rest) = snapshot {
                    entries.extend(rest.iter().cloned());
                }
            }
        }
        Value::Map(entries)
    }
}

impl Record {
    /// The record as one JSON-Lines line (no trailing newline).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }
}

/// Where records go. Implementations must tolerate being handed
/// records at simulator-event rate.
pub trait EventSink {
    /// Persists one record.
    fn emit(&mut self, record: &Record);

    /// Flushes buffered output; called once when the stream ends.
    fn flush(&mut self) {}
}

/// Writes records as JSON-Lines to a file (or any writer).
pub struct JsonlSink {
    out: Box<dyn Write>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Box::new(BufWriter::new(file)),
        })
    }

    /// Wraps an arbitrary writer.
    pub fn from_writer(out: Box<dyn Write>) -> JsonlSink {
        JsonlSink { out }
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, record: &Record) {
        // Telemetry must never abort a simulation; a full disk loses
        // the log line, not the run.
        let _ = writeln!(self.out, "{}", record.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Shared handle to the lines captured by a [`RingBufferSink`].
pub type RingHandle = Rc<RefCell<VecDeque<String>>>;

/// Keeps the most recent `capacity` records in memory as rendered
/// JSON lines — for tests and for post-mortem inspection in-process.
pub struct RingBufferSink {
    capacity: usize,
    lines: RingHandle,
}

impl RingBufferSink {
    /// A sink retaining the last `capacity` records, plus a handle for
    /// reading them back while the sink is owned by an observer.
    pub fn new(capacity: usize) -> (RingBufferSink, RingHandle) {
        let lines: RingHandle = Rc::new(RefCell::new(VecDeque::new()));
        (
            RingBufferSink {
                capacity: capacity.max(1),
                lines: Rc::clone(&lines),
            },
            lines,
        )
    }
}

impl EventSink for RingBufferSink {
    fn emit(&mut self, record: &Record) {
        let mut lines = self.lines.borrow_mut();
        if lines.len() == self.capacity {
            lines.pop_front();
        }
        lines.push_back(record.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_record_is_flat_json() {
        let e = Event::new("fsm", "transition")
            .at(Time::from_ns(2.0))
            .field("from", &"Idle")
            .field("to", &"Ready");
        let line = Record::Event(e).to_json();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("event"));
        assert_eq!(v.get("t_ps").and_then(Value::as_f64), Some(2000.0));
        assert_eq!(v.get("subsystem").and_then(Value::as_str), Some("fsm"));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("transition"));
        assert_eq!(v.get("from").and_then(Value::as_str), Some("Idle"));
        assert_eq!(v.get("to").and_then(Value::as_str), Some("Ready"));
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let (mut sink, lines) = RingBufferSink::new(2);
        for i in 0..5u64 {
            sink.emit(&Record::Event(Event::new("t", "n").field("i", &i)));
        }
        let lines = lines.borrow();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"i\":3"));
        assert!(lines[1].contains("\"i\":4"));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("psnt_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&Record::Span {
                name: "a".to_string(),
                wall_us: 1.5,
            });
            sink.emit(&Record::Span {
                name: "b".to_string(),
                wall_us: 2.5,
            });
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("type").and_then(Value::as_str), Some("span"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
