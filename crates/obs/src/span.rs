//! Wall-clock span timing for phase-level profiling.
//!
//! A [`Span`] is begun wherever convenient (no observer needed) and
//! handed to [`crate::Observer::end_span`], which emits a span record
//! and folds the duration into a per-span-name histogram. Spans
//! measure *wall* time — the only clock that exists outside the
//! simulation — so they profile the simulator, not the circuit.

use std::time::Instant;

/// An open span: a name plus the instant it started.
#[derive(Debug)]
pub struct Span {
    name: String,
    started: Instant,
}

impl Span {
    /// Starts the clock on a named span.
    pub fn begin(name: impl Into<String>) -> Span {
        Span {
            name: name.into(),
            started: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wall time elapsed since [`Span::begin`], in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let span = Span::begin("work");
        let a = span.elapsed_us();
        let b = span.elapsed_us();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert_eq!(span.name(), "work");
    }
}
