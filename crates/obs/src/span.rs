//! Hierarchical spans: wall-clock + sim-time intervals in a causal tree.
//!
//! A [`Span`] is begun either standalone ([`Span::begin`], no observer
//! needed) or through [`crate::Observer::begin_span`], which assigns it
//! an id and a parent from the observer's open-span stack so closed
//! spans form a causal tree (campaign → site → grid-solve → measure).
//! Either way it is handed to [`crate::Observer::end_span`], which
//! emits a span record and folds the duration into a per-span-name
//! histogram.
//!
//! Spans carry two clocks. Wall time profiles the *simulator* and is
//! nondeterministic; equivalence tests mask it with
//! [`mask_wall_times`]. The optional simulation-time interval
//! (picoseconds) ties a span to the *circuit's* clock and is fully
//! deterministic, so tests compare it exactly.
//!
//! Worker threads cannot reach the observer, so they record
//! [`RemoteSpan`] trees against the observer's epoch instant and the
//! engine folds them in after the join via
//! [`crate::Observer::emit_remote_tree`] — in job order, so the stream
//! is independent of worker count.

use std::time::Instant;

use serde::{json, Serialize, Value};

/// An open span: a name, the instant it started, and optional
/// sim-time bounds and attributes attached as the phase progresses.
#[derive(Debug)]
pub struct Span {
    name: String,
    started: Instant,
    pub(crate) id: Option<u64>,
    pub(crate) parent: Option<u64>,
    pub(crate) wall_start_us: Option<f64>,
    pub(crate) sim_t0_ps: Option<f64>,
    pub(crate) sim_t1_ps: Option<f64>,
    pub(crate) attrs: Vec<(String, Value)>,
}

impl Span {
    /// Starts the clock on a named span.
    ///
    /// A span begun this way has no id until it is closed; prefer
    /// [`crate::Observer::begin_span`] when children will open inside
    /// it, so they can name it as their parent.
    pub fn begin(name: impl Into<String>) -> Span {
        Span {
            name: name.into(),
            started: Instant::now(),
            id: None,
            parent: None,
            wall_start_us: None,
            sim_t0_ps: None,
            sim_t1_ps: None,
            attrs: Vec::new(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The id assigned by [`crate::Observer::begin_span`], if any.
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Wall time elapsed since [`Span::begin`], in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e6
    }

    /// Stamps the simulated interval this span covers (picoseconds).
    pub fn sim_interval_ps(mut self, t0_ps: f64, t1_ps: f64) -> Span {
        self.sim_t0_ps = Some(t0_ps);
        self.sim_t1_ps = Some(t1_ps);
        self
    }

    /// Extends the simulated interval to include `t_ps` — call as the
    /// simulation advances when the final bound is not known up front.
    pub fn cover_sim_ps(&mut self, t_ps: f64) {
        self.sim_t0_ps = Some(self.sim_t0_ps.map_or(t_ps, |t0| t0.min(t_ps)));
        self.sim_t1_ps = Some(self.sim_t1_ps.map_or(t_ps, |t1| t1.max(t_ps)));
    }

    /// Attaches one typed attribute (flattened into the span record).
    pub fn attr(mut self, key: impl Into<String>, value: &impl Serialize) -> Span {
        self.attrs.push((key.into(), value.to_value()));
        self
    }
}

/// A closed span as stored in the observer's trace and serialized as a
/// `"type":"span"` record.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within the stream, assigned in close (or emit) order.
    pub id: u64,
    /// The enclosing span's id; `None` for roots.
    pub parent: Option<u64>,
    /// Span name (experiment, phase, site, ...).
    pub name: String,
    /// Which execution track ran it: 0 is the observer's own thread,
    /// `w + 1` is engine worker `w`.
    pub track: u32,
    /// Wall-clock start, microseconds since the observer's epoch.
    pub wall_start_us: f64,
    /// Wall-clock duration in microseconds.
    pub wall_us: f64,
    /// Simulated-time interval covered, picoseconds (deterministic).
    pub sim_t0_ps: Option<f64>,
    /// End of the simulated interval, picoseconds.
    pub sim_t1_ps: Option<f64>,
    /// Typed attributes, flattened into the JSON record.
    pub attrs: Vec<(String, Value)>,
}

/// A span recorded on a worker thread, away from the observer.
///
/// Workers time their phases against the observer's epoch (an
/// [`Instant`] is `Copy + Send`, so the engine hands it into jobs) and
/// return finished trees in their job results; the observer assigns
/// ids and emits the records after the join, in job order, keeping the
/// stream deterministic under any worker count.
#[derive(Debug, Clone)]
pub struct RemoteSpan {
    pub(crate) name: String,
    pub(crate) track: u32,
    pub(crate) wall_start_us: f64,
    pub(crate) wall_us: f64,
    pub(crate) sim_t0_ps: Option<f64>,
    pub(crate) sim_t1_ps: Option<f64>,
    pub(crate) attrs: Vec<(String, Value)>,
    pub(crate) children: Vec<RemoteSpan>,
    started: Instant,
}

impl RemoteSpan {
    /// Starts a remote span on `track` (worker index + 1), timed
    /// against the observer's `epoch`.
    pub fn begin(name: impl Into<String>, epoch: Instant, track: u32) -> RemoteSpan {
        let now = Instant::now();
        RemoteSpan {
            name: name.into(),
            track,
            wall_start_us: now
                .checked_duration_since(epoch)
                .unwrap_or_default()
                .as_secs_f64()
                * 1e6,
            wall_us: 0.0,
            sim_t0_ps: None,
            sim_t1_ps: None,
            attrs: Vec::new(),
            children: Vec::new(),
            started: now,
        }
    }

    /// Stamps the simulated interval this span covers (picoseconds).
    pub fn sim_interval_ps(mut self, t0_ps: f64, t1_ps: f64) -> RemoteSpan {
        self.sim_t0_ps = Some(t0_ps);
        self.sim_t1_ps = Some(t1_ps);
        self
    }

    /// Attaches one typed attribute.
    pub fn attr(mut self, key: impl Into<String>, value: &impl Serialize) -> RemoteSpan {
        self.attrs.push((key.into(), value.to_value()));
        self
    }

    /// Adds a finished child span.
    pub fn child(&mut self, child: RemoteSpan) {
        self.children.push(child);
    }

    /// Stops the clock. Children opened after this keep their own
    /// timings; the parent's duration is frozen here.
    pub fn end(mut self) -> RemoteSpan {
        self.wall_us = self.started.elapsed().as_secs_f64() * 1e6;
        self
    }
}

/// Masks the nondeterministic wall-clock parts of one telemetry line
/// so equivalence tests can compare everything else exactly.
///
/// On `"type":"span"` records, `wall_us` and `wall_start_us` are
/// replaced with `"<wall>"` and `track` with `"<track>"` (worker-side
/// spans carry the executing worker's scheduling-dependent track); on
/// the `"type":"metrics"` snapshot, the `span.*_us` histograms (whose
/// buckets hold wall durations) are replaced likewise. Ids, parents,
/// names, sim-time intervals and attributes — the deterministic
/// structure — pass through untouched, as does any line that is not
/// valid JSON.
pub fn mask_wall_times(line: &str) -> String {
    let Ok(v) = json::parse(line) else {
        return line.to_string();
    };
    let Value::Map(mut entries) = v else {
        return line.to_string();
    };
    let type_of = |entries: &[(String, Value)]| {
        entries
            .iter()
            .find(|(k, _)| k == "type")
            .and_then(|(_, v)| v.as_str().map(str::to_string))
    };
    match type_of(&entries).as_deref() {
        Some("span") => {
            for (k, v) in entries.iter_mut() {
                if k == "wall_us" || k == "wall_start_us" {
                    *v = Value::Str("<wall>".to_string());
                } else if k == "track" {
                    *v = Value::Str("<track>".to_string());
                }
            }
        }
        Some("metrics") => {
            for (k, v) in entries.iter_mut() {
                if k != "histograms" {
                    continue;
                }
                if let Value::Map(hists) = v {
                    for (name, h) in hists.iter_mut() {
                        if name.starts_with("span.") && name.ends_with("_us") {
                            *h = Value::Str("<wall>".to_string());
                        }
                    }
                }
            }
        }
        _ => {}
    }
    json::to_string(&Value::Map(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let span = Span::begin("work");
        let a = span.elapsed_us();
        let b = span.elapsed_us();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert_eq!(span.name(), "work");
    }

    #[test]
    fn cover_sim_grows_the_interval() {
        let mut span = Span::begin("sweep");
        span.cover_sim_ps(50.0);
        span.cover_sim_ps(10.0);
        span.cover_sim_ps(30.0);
        assert_eq!(span.sim_t0_ps, Some(10.0));
        assert_eq!(span.sim_t1_ps, Some(50.0));
    }

    #[test]
    fn remote_span_times_against_epoch() {
        let epoch = Instant::now();
        let mut site = RemoteSpan::begin("site", epoch, 3).sim_interval_ps(0.0, 100.0);
        site.child(RemoteSpan::begin("measure", epoch, 3).end());
        let site = site.end();
        assert!(site.wall_start_us >= 0.0);
        assert!(site.wall_us >= 0.0);
        assert_eq!(site.track, 3);
        assert_eq!(site.children.len(), 1);
        assert!(site.children[0].wall_start_us >= site.wall_start_us);
    }

    #[test]
    fn mask_replaces_wall_but_keeps_structure() {
        let line = r#"{"type":"span","id":4,"parent":2,"name":"site","track":1,"wall_start_us":12.5,"wall_us":99.0,"t0_ps":0.0,"t1_ps":100.0,"tile":"r0c1"}"#;
        let masked = mask_wall_times(line);
        assert!(masked.contains("\"wall_us\":\"<wall>\""));
        assert!(masked.contains("\"wall_start_us\":\"<wall>\""));
        assert!(masked.contains("\"id\":4"));
        assert!(masked.contains("\"parent\":2"));
        assert!(masked.contains("\"t1_ps\":100"));
        assert!(masked.contains("\"tile\":\"r0c1\""));
    }

    #[test]
    fn mask_scrubs_span_histograms_in_snapshot() {
        let line = r#"{"type":"metrics","counters":{"n":1},"histograms":{"span.fig9_us":{"count":1},"sim.queue_depth":{"count":2}}}"#;
        let masked = mask_wall_times(line);
        assert!(masked.contains("\"span.fig9_us\":\"<wall>\""));
        assert!(masked.contains("\"sim.queue_depth\":{\"count\":2}"));
        assert!(masked.contains("\"n\":1"));
    }

    #[test]
    fn mask_passes_non_span_lines_through() {
        let event = r#"{"type":"event","subsystem":"fsm","kind":"transition"}"#;
        assert_eq!(mask_wall_times(event), event);
        assert_eq!(mask_wall_times("not json"), "not json");
    }
}
