//! The [`Observer`] facade: one handle a simulator threads through its
//! hot paths to reach metrics, the event log and span timing at once.

use serde::Serialize;

use crate::events::{Event, EventSink, JsonlSink, Record, RingBufferSink, RingHandle};
use crate::manifest::RunManifest;
use crate::metrics::MetricsRegistry;
use crate::span::Span;

/// What optional (higher-volume) instrumentation an observer wants.
///
/// Phase-level events and counters are always on — they are cheap and
/// an observer was explicitly attached. Per-simulation-event streams
/// are opt-in because they can dominate the log.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObserverConfig {
    /// Emit one event per net value transition in the gate-level
    /// simulator (high volume).
    pub net_transitions: bool,
    /// Emit one event per PDN solver step (high volume).
    pub solver_steps: bool,
}

/// The telemetry handle simulators accept as `Option<&mut Observer>`.
///
/// Holds the run's [`MetricsRegistry`], the configured [`EventSink`],
/// and the record framing: [`Observer::manifest`] at the head,
/// [`Observer::finish`] with a metrics snapshot at the end.
pub struct Observer {
    /// The run's metrics; public so call sites can intern ids once
    /// and update by id in hot loops.
    pub metrics: MetricsRegistry,
    config: ObserverConfig,
    sink: Box<dyn EventSink>,
    ring: Option<RingHandle>,
    finished: bool,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("metrics", &self.metrics)
            .field("config", &self.config)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl Observer {
    /// An observer writing JSON-Lines to `path` (truncates).
    pub fn jsonl(path: impl AsRef<std::path::Path>) -> std::io::Result<Observer> {
        Ok(Observer::with_sink(Box::new(JsonlSink::create(path)?)))
    }

    /// An observer retaining the last `capacity` records in memory,
    /// readable back through [`Observer::ring_lines`].
    pub fn ring(capacity: usize) -> Observer {
        let (sink, handle) = RingBufferSink::new(capacity);
        let mut obs = Observer::with_sink(Box::new(sink));
        obs.ring = Some(handle);
        obs
    }

    /// An observer over any sink.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Observer {
        Observer {
            metrics: MetricsRegistry::new(),
            config: ObserverConfig::default(),
            sink,
            ring: None,
            finished: false,
        }
    }

    /// Enables or disables per-net transition events.
    pub fn net_transitions(mut self, on: bool) -> Observer {
        self.config.net_transitions = on;
        self
    }

    /// Enables or disables per-solver-step events.
    pub fn solver_steps(mut self, on: bool) -> Observer {
        self.config.solver_steps = on;
        self
    }

    /// The current instrumentation configuration.
    pub fn config(&self) -> ObserverConfig {
        self.config
    }

    /// Emits the run manifest; call once, before any event.
    pub fn manifest(&mut self, manifest: &RunManifest) {
        self.sink.emit(&Record::Manifest(manifest.clone()));
    }

    /// Emits one structured event.
    pub fn event(&mut self, event: Event) {
        self.sink.emit(&Record::Event(event));
    }

    /// Closes a span: emits its record and folds the duration into the
    /// `span.<name>_us` histogram (log-spaced 1µs..10s buckets).
    pub fn end_span(&mut self, span: Span) {
        let wall_us = span.elapsed_us();
        let hist = self.metrics.histogram(
            &format!("span.{}_us", span.name()),
            &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7],
        );
        self.metrics.record(hist, wall_us);
        self.sink.emit(&Record::Span {
            name: span.name().to_string(),
            wall_us,
        });
    }

    /// Ends the stream: emits the final metrics snapshot and flushes.
    /// Idempotent; later calls only re-flush.
    pub fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.sink
                .emit(&Record::Metrics(self.metrics.snapshot_value()));
        }
        self.sink.flush();
    }

    /// The retained lines when this observer uses a ring buffer.
    pub fn ring_lines(&self) -> Option<Vec<String>> {
        self.ring
            .as_ref()
            .map(|r| r.borrow().iter().cloned().collect())
    }
}

/// Extension helpers for the `Option<&mut Observer>` handles that
/// simulators store: instrument a site in one expression without an
/// `if let` at every call site.
pub trait ObserverExt {
    /// Runs `f` on the observer when one is attached.
    fn observe(&mut self, f: impl FnOnce(&mut Observer));
}

impl ObserverExt for Option<&mut Observer> {
    fn observe(&mut self, f: impl FnOnce(&mut Observer)) {
        if let Some(obs) = self.as_deref_mut() {
            f(obs);
        }
    }
}

impl Observer {
    /// Convenience: emits a subsystem/kind event with serializable
    /// fields, skipping the builder chain at simple call sites.
    pub fn emit(
        &mut self,
        subsystem: &str,
        kind: &str,
        t_ps: Option<f64>,
        fields: &[(&str, &dyn ErasedSerialize)],
    ) {
        let mut e = Event::new(subsystem, kind);
        if let Some(t) = t_ps {
            e = e.at_ps(t);
        }
        for (k, v) in fields {
            e.fields.push(((*k).to_string(), v.erased_to_value()));
        }
        self.event(e);
    }
}

/// Object-safe serialization, so field lists can mix value types.
pub trait ErasedSerialize {
    /// [`Serialize::to_value`] behind a vtable.
    fn erased_to_value(&self) -> serde::Value;
}

impl<T: Serialize> ErasedSerialize for T {
    fn erased_to_value(&self) -> serde::Value {
        self.to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{json, Value};

    #[test]
    fn stream_has_manifest_events_spans_and_snapshot() {
        let mut obs = Observer::ring(32);
        obs.manifest(&RunManifest::new("test").seed(1));
        let span = Span::begin("phase");
        let c = obs.metrics.counter("n");
        obs.metrics.inc(c);
        obs.event(Event::new("sub", "did").field("x", &3u64));
        obs.end_span(span);
        obs.finish();

        let lines = obs.ring_lines().unwrap();
        let types: Vec<String> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("type")
                    .and_then(Value::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(types, ["manifest", "event", "span", "metrics"]);

        let snapshot = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(
            snapshot
                .get("counters")
                .and_then(|c| c.get("n"))
                .and_then(Value::as_u64),
            Some(1)
        );
        // end_span folded the duration into a histogram.
        assert!(snapshot
            .get("histograms")
            .and_then(|h| h.get("span.phase_us"))
            .is_some());
    }

    #[test]
    fn finish_is_idempotent() {
        let mut obs = Observer::ring(8);
        obs.finish();
        obs.finish();
        assert_eq!(obs.ring_lines().unwrap().len(), 1);
    }

    #[test]
    fn observe_helper_skips_detached() {
        let mut none: Option<&mut Observer> = None;
        none.observe(|_| panic!("must not run detached"));

        let mut obs = Observer::ring(8);
        let mut some: Option<&mut Observer> = Some(&mut obs);
        some.observe(|o| o.metrics.counter_add("hits", 1));
        assert_eq!(obs.metrics.counter_value("hits"), 1);
    }

    #[test]
    fn emit_helper_builds_flat_events() {
        let mut obs = Observer::ring(8);
        obs.emit(
            "fsm",
            "transition",
            Some(1.5),
            &[("from", &"A"), ("to", &"B")],
        );
        let lines = obs.ring_lines().unwrap();
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("from").and_then(Value::as_str), Some("A"));
        assert_eq!(v.get("t_ps").and_then(Value::as_f64), Some(1.5));
    }
}
