//! The [`Observer`] facade: one handle a simulator threads through its
//! hot paths to reach metrics, the event log and span timing at once.

use std::time::Instant;

use serde::Serialize;

use crate::events::{
    Event, EventSink, JsonlSink, NullSink, Record, RingBufferSink, RingHandle, RotatingJsonlSink,
    Severity,
};
use crate::manifest::RunManifest;
use crate::metrics::MetricsRegistry;
use crate::span::{RemoteSpan, Span, SpanRecord};

/// What optional (higher-volume) instrumentation an observer wants.
///
/// Phase-level events and counters are always on — they are cheap and
/// an observer was explicitly attached. Per-simulation-event streams
/// are opt-in because they can dominate the log.
#[derive(Debug, Clone, Copy)]
pub struct ObserverConfig {
    /// Emit one event per net value transition in the gate-level
    /// simulator (high volume).
    pub net_transitions: bool,
    /// Emit one event per PDN solver step (high volume).
    pub solver_steps: bool,
    /// Events below this severity are dropped (and counted) before
    /// reaching the sink. Default: [`Severity::Debug`], i.e. keep all.
    pub min_severity: Severity,
    /// Keep one event in `sample_every`; the rest are dropped (and
    /// counted). Default 1 — no sampling. Sampling is deterministic:
    /// it counts events, not time.
    pub sample_every: u32,
}

impl Default for ObserverConfig {
    fn default() -> ObserverConfig {
        ObserverConfig {
            net_transitions: false,
            solver_steps: false,
            min_severity: Severity::Debug,
            sample_every: 1,
        }
    }
}

/// The telemetry handle simulators accept as `Option<&mut Observer>`.
///
/// Holds the run's [`MetricsRegistry`], the configured [`EventSink`],
/// and the record framing: [`Observer::manifest`] at the head,
/// [`Observer::finish`] with a metrics snapshot at the end.
pub struct Observer {
    /// The run's metrics; public so call sites can intern ids once
    /// and update by id in hot loops.
    pub metrics: MetricsRegistry,
    config: ObserverConfig,
    sink: Box<dyn EventSink>,
    ring: Option<RingHandle>,
    finished: bool,
    /// Wall-clock zero for every span in this stream.
    epoch: Instant,
    next_span_id: u64,
    /// Ids of spans opened via [`Observer::begin_span`] and not yet
    /// closed — the causal stack new spans take their parent from.
    stack: Vec<u64>,
    /// Every closed span, retained for trace export.
    trace: Vec<SpanRecord>,
    /// Events that passed the severity filter (sampling counts these).
    event_seq: u64,
    filtered: u64,
    sampled_out: u64,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("metrics", &self.metrics)
            .field("config", &self.config)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl Observer {
    /// An observer writing JSON-Lines to `path` (truncates).
    pub fn jsonl(path: impl AsRef<std::path::Path>) -> std::io::Result<Observer> {
        Ok(Observer::with_sink(Box::new(JsonlSink::create(path)?)))
    }

    /// An observer retaining the last `capacity` records in memory,
    /// readable back through [`Observer::ring_lines`].
    pub fn ring(capacity: usize) -> Observer {
        let (sink, handle) = RingBufferSink::new(capacity);
        let mut obs = Observer::with_sink(Box::new(sink));
        obs.ring = Some(handle);
        obs
    }

    /// An observer with bounded-disk output: JSON-Lines at `path`,
    /// rotated past `max_bytes` with `keep` old generations retained.
    pub fn rotating(
        path: impl AsRef<std::path::Path>,
        max_bytes: u64,
        keep: usize,
    ) -> std::io::Result<Observer> {
        Ok(Observer::with_sink(Box::new(RotatingJsonlSink::create(
            path, max_bytes, keep,
        )?)))
    }

    /// An observer that records metrics and the span tree but streams
    /// nothing — for trace-only runs (`repro --trace` without
    /// `--telemetry`).
    pub fn null() -> Observer {
        Observer::with_sink(Box::new(NullSink))
    }

    /// An observer over any sink.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Observer {
        Observer {
            metrics: MetricsRegistry::new(),
            config: ObserverConfig::default(),
            sink,
            ring: None,
            finished: false,
            epoch: Instant::now(),
            next_span_id: 1,
            stack: Vec::new(),
            trace: Vec::new(),
            event_seq: 0,
            filtered: 0,
            sampled_out: 0,
        }
    }

    /// Enables or disables per-net transition events.
    pub fn net_transitions(mut self, on: bool) -> Observer {
        self.config.net_transitions = on;
        self
    }

    /// Enables or disables per-solver-step events.
    pub fn solver_steps(mut self, on: bool) -> Observer {
        self.config.solver_steps = on;
        self
    }

    /// Drops (and counts) events below `min` before they hit the sink.
    pub fn min_severity(mut self, min: Severity) -> Observer {
        self.config.min_severity = min;
        self
    }

    /// Keeps one event in `n` (deterministically, by event count);
    /// the rest are dropped and counted. `n <= 1` disables sampling.
    pub fn sample_events(mut self, n: u32) -> Observer {
        self.config.sample_every = n.max(1);
        self
    }

    /// The current instrumentation configuration.
    pub fn config(&self) -> ObserverConfig {
        self.config
    }

    /// Emits the run manifest; call once, before any event.
    pub fn manifest(&mut self, manifest: &RunManifest) {
        self.sink.emit(&Record::Manifest(manifest.clone()));
    }

    /// Emits one structured event, subject to the severity floor and
    /// 1-in-N sampling; dropped events are counted, never silent.
    pub fn event(&mut self, event: Event) {
        if event.severity < self.config.min_severity {
            self.filtered += 1;
            return;
        }
        self.event_seq += 1;
        if self.config.sample_every > 1
            && !(self.event_seq - 1).is_multiple_of(u64::from(self.config.sample_every))
        {
            self.sampled_out += 1;
            return;
        }
        self.sink.emit(&Record::Event(event));
    }

    /// The wall-clock zero of this stream. `Copy + Send`, so worker
    /// threads can time [`RemoteSpan`]s against it.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Opens a span as a child of the innermost span still open from a
    /// previous `begin_span` — the causal tree grows here. Close it
    /// with [`Observer::end_span`].
    pub fn begin_span(&mut self, name: impl Into<String>) -> Span {
        let id = self.next_span_id;
        self.next_span_id += 1;
        let parent = self.stack.last().copied();
        self.stack.push(id);
        let mut span = Span::begin(name);
        span.id = Some(id);
        span.parent = parent;
        span.wall_start_us = Some(self.since_epoch_us());
        span
    }

    /// Closes a span: emits its record, retains it for trace export,
    /// and folds the duration into the `span.<name>_us` histogram
    /// (log-spaced 1µs..10s buckets).
    ///
    /// Spans begun with the free [`Span::begin`] (no observer) get an
    /// id here and parent under the innermost open span, so legacy
    /// call sites still land in the tree.
    pub fn end_span(&mut self, span: Span) {
        let wall_us = span.elapsed_us();
        let (id, parent) = match span.id {
            Some(id) => {
                if let Some(pos) = self.stack.iter().rposition(|&s| s == id) {
                    self.stack.remove(pos);
                }
                (id, span.parent)
            }
            None => {
                let id = self.next_span_id;
                self.next_span_id += 1;
                (id, self.stack.last().copied())
            }
        };
        let wall_start_us = span
            .wall_start_us
            .unwrap_or_else(|| (self.since_epoch_us() - wall_us).max(0.0));
        let record = SpanRecord {
            id,
            parent,
            name: span.name().to_string(),
            track: 0,
            wall_start_us,
            wall_us,
            sim_t0_ps: span.sim_t0_ps,
            sim_t1_ps: span.sim_t1_ps,
            attrs: span.attrs,
        };
        self.record_span(record);
    }

    /// Folds a worker-recorded span tree into the stream: ids are
    /// assigned depth-first here (so call order — job order — fixes
    /// the stream, not worker scheduling), parented under the
    /// innermost open span.
    pub fn emit_remote_tree(&mut self, root: &RemoteSpan) {
        let parent = self.stack.last().copied();
        self.emit_remote(root, parent);
    }

    fn emit_remote(&mut self, span: &RemoteSpan, parent: Option<u64>) {
        let id = self.next_span_id;
        self.next_span_id += 1;
        let record = SpanRecord {
            id,
            parent,
            name: span.name.clone(),
            track: span.track,
            wall_start_us: span.wall_start_us,
            wall_us: span.wall_us,
            sim_t0_ps: span.sim_t0_ps,
            sim_t1_ps: span.sim_t1_ps,
            attrs: span.attrs.clone(),
        };
        self.record_span(record);
        for child in &span.children {
            self.emit_remote(child, Some(id));
        }
    }

    fn record_span(&mut self, record: SpanRecord) {
        let hist = self.metrics.histogram(
            &format!("span.{}_us", record.name),
            &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7],
        );
        self.metrics.record(hist, record.wall_us);
        self.sink.emit(&Record::Span(record.clone()));
        self.trace.push(record);
    }

    fn since_epoch_us(&self) -> f64 {
        Instant::now()
            .checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e6
    }

    /// Every span closed so far, in emission order.
    pub fn trace_records(&self) -> &[SpanRecord] {
        &self.trace
    }

    /// The trace as Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::chrome_trace_json(&self.trace)
    }

    /// The trace as folded flamegraph stacks.
    pub fn folded_stacks(&self) -> String {
        crate::trace::folded_stacks(&self.trace)
    }

    /// Ends the stream: promotes drop accounting into the metrics,
    /// emits the final snapshot and flushes. Idempotent; later calls
    /// only re-flush.
    pub fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            let sink_dropped = self.sink.dropped();
            let dropped = self.filtered + self.sampled_out + sink_dropped;
            // Registered only when nonzero, so lossless streams keep
            // their exact pre-existing snapshot shape.
            if self.filtered > 0 {
                self.metrics
                    .counter_add("obs.events_filtered", self.filtered);
            }
            if self.sampled_out > 0 {
                self.metrics
                    .counter_add("obs.events_sampled_out", self.sampled_out);
            }
            if sink_dropped > 0 {
                self.metrics
                    .counter_add("obs.events_sink_dropped", sink_dropped);
            }
            if dropped > 0 {
                self.metrics.counter_add("obs.events_dropped", dropped);
            }
            self.sink
                .emit(&Record::Metrics(self.metrics.snapshot_value()));
        }
        self.sink.flush();
    }

    /// The retained lines when this observer uses a ring buffer.
    pub fn ring_lines(&self) -> Option<Vec<String>> {
        self.ring
            .as_ref()
            .map(|r| r.borrow().iter().cloned().collect())
    }
}

/// Extension helpers for the `Option<&mut Observer>` handles that
/// simulators store: instrument a site in one expression without an
/// `if let` at every call site.
pub trait ObserverExt {
    /// Runs `f` on the observer when one is attached.
    fn observe(&mut self, f: impl FnOnce(&mut Observer));
}

impl ObserverExt for Option<&mut Observer> {
    fn observe(&mut self, f: impl FnOnce(&mut Observer)) {
        if let Some(obs) = self.as_deref_mut() {
            f(obs);
        }
    }
}

impl Observer {
    /// Convenience: emits a subsystem/kind event with serializable
    /// fields, skipping the builder chain at simple call sites.
    pub fn emit(
        &mut self,
        subsystem: &str,
        kind: &str,
        t_ps: Option<f64>,
        fields: &[(&str, &dyn ErasedSerialize)],
    ) {
        let mut e = Event::new(subsystem, kind);
        if let Some(t) = t_ps {
            e = e.at_ps(t);
        }
        for (k, v) in fields {
            e.fields.push(((*k).to_string(), v.erased_to_value()));
        }
        self.event(e);
    }
}

/// Object-safe serialization, so field lists can mix value types.
pub trait ErasedSerialize {
    /// [`Serialize::to_value`] behind a vtable.
    fn erased_to_value(&self) -> serde::Value;
}

impl<T: Serialize> ErasedSerialize for T {
    fn erased_to_value(&self) -> serde::Value {
        self.to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{json, Value};

    #[test]
    fn stream_has_manifest_events_spans_and_snapshot() {
        let mut obs = Observer::ring(32);
        obs.manifest(&RunManifest::new("test").seed(1));
        let span = Span::begin("phase");
        let c = obs.metrics.counter("n");
        obs.metrics.inc(c);
        obs.event(Event::new("sub", "did").field("x", &3u64));
        obs.end_span(span);
        obs.finish();

        let lines = obs.ring_lines().unwrap();
        let types: Vec<String> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("type")
                    .and_then(Value::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(types, ["manifest", "event", "span", "metrics"]);

        let snapshot = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(
            snapshot
                .get("counters")
                .and_then(|c| c.get("n"))
                .and_then(Value::as_u64),
            Some(1)
        );
        // end_span folded the duration into a histogram.
        assert!(snapshot
            .get("histograms")
            .and_then(|h| h.get("span.phase_us"))
            .is_some());
    }

    #[test]
    fn finish_is_idempotent() {
        let mut obs = Observer::ring(8);
        obs.finish();
        obs.finish();
        assert_eq!(obs.ring_lines().unwrap().len(), 1);
    }

    #[test]
    fn observe_helper_skips_detached() {
        let mut none: Option<&mut Observer> = None;
        none.observe(|_| panic!("must not run detached"));

        let mut obs = Observer::ring(8);
        let mut some: Option<&mut Observer> = Some(&mut obs);
        some.observe(|o| o.metrics.counter_add("hits", 1));
        assert_eq!(obs.metrics.counter_value("hits"), 1);
    }

    #[test]
    fn begin_span_builds_a_causal_tree() {
        let mut obs = Observer::ring(32);
        let campaign = obs.begin_span("campaign");
        let solve = obs.begin_span("grid_solve").sim_interval_ps(0.0, 500.0);
        obs.end_span(solve);
        let sweep = obs.begin_span("measure_sweep");
        obs.end_span(sweep);
        obs.end_span(campaign);

        let t = obs.trace_records();
        assert_eq!(t.len(), 3);
        // Close order: grid_solve, measure_sweep, campaign.
        assert_eq!(t[0].name, "grid_solve");
        assert_eq!(t[0].id, 2);
        assert_eq!(t[0].parent, Some(1));
        assert_eq!(t[0].sim_t1_ps, Some(500.0));
        assert_eq!(t[1].name, "measure_sweep");
        assert_eq!(t[1].parent, Some(1));
        assert_eq!(t[2].name, "campaign");
        assert_eq!(t[2].id, 1);
        assert_eq!(t[2].parent, None);
        assert!(t[2].wall_us >= t[0].wall_us);
    }

    #[test]
    fn legacy_free_spans_nest_under_open_stack() {
        let mut obs = Observer::ring(8);
        let outer = obs.begin_span("outer");
        let legacy = Span::begin("legacy");
        obs.end_span(legacy);
        obs.end_span(outer);
        let t = obs.trace_records();
        assert_eq!(t[0].name, "legacy");
        assert_eq!(t[0].parent, Some(1));
    }

    #[test]
    fn remote_trees_are_parented_and_ordered_by_call() {
        let mut obs = Observer::ring(32);
        let sweep = obs.begin_span("measure_sweep");
        let epoch = obs.epoch();
        // Two "workers" finish out of order; the observer is handed
        // their trees in job order, which fixes ids and the stream.
        let mut site1 = RemoteSpan::begin("site", epoch, 2).attr("site", &1u64);
        site1.child(RemoteSpan::begin("measure", epoch, 2).end());
        let site1 = site1.end();
        let site0 = RemoteSpan::begin("site", epoch, 1)
            .attr("site", &0u64)
            .end();
        obs.emit_remote_tree(&site0);
        obs.emit_remote_tree(&site1);
        obs.end_span(sweep);

        let t = obs.trace_records();
        let names: Vec<&str> = t.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["site", "site", "measure", "measure_sweep"]);
        assert_eq!(t[0].id, 2);
        assert_eq!(t[0].parent, Some(1), "sites hang under the sweep");
        assert_eq!(t[1].id, 3);
        assert_eq!(t[2].parent, Some(3), "measure under its own site");
        assert_eq!(t[0].track, 1);
        assert_eq!(t[1].track, 2);
    }

    #[test]
    fn severity_floor_and_sampling_count_drops() {
        let mut obs = Observer::ring(64)
            .min_severity(Severity::Info)
            .sample_events(3);
        for _ in 0..2 {
            obs.event(Event::new("sim", "noise").severity(Severity::Debug));
        }
        for _ in 0..7 {
            obs.event(Event::new("sim", "step"));
        }
        obs.finish();

        let lines = obs.ring_lines().unwrap();
        let events = lines.iter().filter(|l| l.contains("\"step\"")).count();
        assert_eq!(events, 3, "kept 1-in-3 of 7: events 1, 4, 7");
        assert_eq!(obs.metrics.counter_value("obs.events_filtered"), 2);
        assert_eq!(obs.metrics.counter_value("obs.events_sampled_out"), 4);
        assert_eq!(obs.metrics.counter_value("obs.events_dropped"), 6);
    }

    #[test]
    fn ring_overflow_is_promoted_to_events_dropped() {
        let mut obs = Observer::ring(2);
        for i in 0..5u64 {
            obs.event(Event::new("t", "n").field("i", &i));
        }
        obs.finish();
        // 3 evictions from the 5 events, plus later records (metrics
        // snapshot itself) may evict more — at least 3.
        assert!(obs.metrics.counter_value("obs.events_dropped") >= 3);
    }

    #[test]
    fn lossless_streams_register_no_drop_counters() {
        let mut obs = Observer::ring(64);
        obs.event(Event::new("a", "b"));
        obs.finish();
        assert_eq!(obs.metrics.counter_value("obs.events_dropped"), 0);
        let last = obs.ring_lines().unwrap().last().unwrap().clone();
        assert!(
            !last.contains("events_dropped"),
            "snapshot unchanged when lossless: {last}"
        );
    }

    #[test]
    fn trace_exports_render() {
        let mut obs = Observer::null();
        let root = obs.begin_span("campaign");
        let child = obs.begin_span("site");
        obs.end_span(child);
        obs.end_span(root);
        let chrome = obs.chrome_trace_json();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        let folded = obs.folded_stacks();
        assert!(folded.contains("campaign;site "));
    }

    #[test]
    fn emit_helper_builds_flat_events() {
        let mut obs = Observer::ring(8);
        obs.emit(
            "fsm",
            "transition",
            Some(1.5),
            &[("from", &"A"), ("to", &"B")],
        );
        let lines = obs.ring_lines().unwrap();
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("from").and_then(Value::as_str), Some("A"));
        assert_eq!(v.get("t_ps").and_then(Value::as_f64), Some(1.5));
    }
}
