//! Counters, gauges and fixed-bucket histograms.
//!
//! Metrics are registered by name once (interning returns a copyable
//! id) and updated by id afterwards, so per-event hot paths do no
//! string work. By-name convenience updaters exist for cold paths like
//! end-of-run promotion of accumulated statistics.

use serde::Value;

/// Id of an interned counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Id of an interned gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Id of an interned histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge
/// of bucket `i`, with one extra overflow bucket at the end.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram over the given bucket bounds. Public so
    /// standalone profiles (e.g. the kernel's `SimProfile`) can own
    /// histograms outside a registry and fold them in later.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn new(bounds: &[f64]) -> Histogram {
        Histogram::with_bounds(bounds)
    }

    /// Records one sample into its bucket.
    pub fn record(&mut self, value: f64) {
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (exact — from the running sum, not the
    /// bucket edges), or `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Per-bucket counts (last bucket is overflow past the top bound).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper edges (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The inclusive upper edge of the bucket holding the `p`-th
    /// percentile sample (`p` in `0..=100`).
    ///
    /// Fixed-bucket histograms cannot interpolate inside a bucket, so
    /// the answer is quantized to bucket edges: `percentile(50.0)` of a
    /// histogram whose median sample landed in the `(1, 10]` bucket is
    /// `10.0`. Samples past the top bound live in the overflow bucket
    /// and report [`f64::INFINITY`]. Returns `None` while empty.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.count == 0 {
            return None;
        }
        // Rank of the percentile sample, 1-based, nearest-rank method.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Folds `other`'s samples into `self` bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics when the bucket bounds differ.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub(crate) fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "bounds".to_string(),
                Value::Seq(self.bounds.iter().map(|&b| Value::F64(b)).collect()),
            ),
            (
                "counts".to_string(),
                Value::Seq(self.counts.iter().map(|&c| Value::U64(c)).collect()),
            ),
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::F64(self.sum)),
        ])
    }
}

impl std::fmt::Display for Histogram {
    /// One-line summary: `count=52 sum=103.4 p50=10 p99=1000`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "count={} sum={}", self.count, self.sum)?;
        for p in [50.0, 99.0] {
            match self.percentile(p) {
                Some(v) if v.is_finite() => write!(f, " p{p:.0}={v}")?,
                Some(_) => write!(f, " p{p:.0}=overflow")?,
                None => write!(f, " p{p:.0}=-")?,
            }
        }
        Ok(())
    }
}

/// The registry holding every metric of a run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter and returns its id.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge and returns its id.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram with the given bucket bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds to a counter by id.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Increments a counter by id.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge by id.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Raises a gauge to `value` if it is above the current reading —
    /// a running maximum, e.g. peak queue depth.
    pub fn set_max(&mut self, id: GaugeId, value: f64) {
        let g = &mut self.gauges[id.0].1;
        if value > *g {
            *g = value;
        }
    }

    /// Lowers a gauge to `value` if it is below the current reading —
    /// a running minimum, e.g. worst supply droop.
    pub fn set_min(&mut self, id: GaugeId, value: f64) {
        let g = &mut self.gauges[id.0].1;
        if value < *g {
            *g = value;
        }
    }

    /// Records a sample into a histogram by id.
    pub fn record(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// Bucket-merges a standalone histogram into a registered one —
    /// how drained profiles fold their samples in.
    ///
    /// # Panics
    ///
    /// Panics when the bucket bounds differ.
    pub fn histogram_merge(&mut self, id: HistogramId, other: &Histogram) {
        self.histograms[id.0].1.merge_from(other);
    }

    /// Adds to a counter by name (cold paths only).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let id = self.counter(name);
        self.add(id, delta);
    }

    /// Sets a gauge by name (cold paths only).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let id = self.gauge(name);
        self.set(id, value);
    }

    /// Running-maximum gauge update by name (cold paths only).
    pub fn gauge_set_max(&mut self, name: &str, value: f64) {
        let id = self.gauge(name);
        self.set_max(id, value);
    }

    /// Running-minimum gauge update by name (cold paths only).
    pub fn gauge_set_min(&mut self, name: &str, value: f64) {
        let id = self.gauge(name);
        self.set_min(id, value);
    }

    /// Current counter value, zero if never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Current gauge reading, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Folds `other` into `self` — the join step when several workers
    /// accumulated metrics independently (e.g. one registry per worker
    /// thread of a parallel batch).
    ///
    /// Merge policy, chosen so the merged snapshot is independent of
    /// how work was split across workers:
    ///
    /// * **counters** — summed (they count events, and events
    ///   partition across workers);
    /// * **histograms** — bucket-wise summed; both registries must use
    ///   the same bounds for a shared name;
    /// * **gauges** — the **maximum** reading wins. Every cross-worker
    ///   gauge in this workspace is a running peak (worst droop in mV,
    ///   peak queue depth, workers used); a running *minimum* must be
    ///   stored negated (or folded manually) to survive a merge.
    ///
    /// Metrics present only in `other` are registered in `self`;
    /// registration order is `self`'s entries first, then `other`'s
    /// new names in `other`'s order.
    ///
    /// # Panics
    ///
    /// Panics when a histogram name is present in both registries with
    /// different bucket bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            let id = self.counter(name);
            self.add(id, *v);
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = mine.max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge_from(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A serializable snapshot of every metric, in registration order.
    pub fn snapshot_value(&self) -> Value {
        Value::Map(vec![
            (
                "counters".to_string(),
                Value::Map(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::F64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Map(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// An owned, displayable snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// An owned point-in-time copy of a registry's metrics, sorted by name
/// so two snapshots of the same run compare position-by-position
/// regardless of registration order.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Counter value by name, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Gauge reading by name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The change from `earlier` to `self`: counter deltas, gauge
    /// before/after pairs, histogram count deltas. Names present in
    /// only one snapshot show against an implicit zero/absent side.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsDiff {
        let mut counters: Vec<(String, i128)> = Vec::new();
        let mut names: Vec<&String> = self
            .counters
            .iter()
            .chain(&earlier.counters)
            .map(|(n, _)| n)
            .collect();
        names.sort();
        names.dedup();
        for name in names {
            let delta = self.counter(name) as i128 - earlier.counter(name) as i128;
            if delta != 0 {
                counters.push((name.clone(), delta));
            }
        }

        let mut gauges: Vec<(String, Option<f64>, Option<f64>)> = Vec::new();
        let mut names: Vec<&String> = self
            .gauges
            .iter()
            .chain(&earlier.gauges)
            .map(|(n, _)| n)
            .collect();
        names.sort();
        names.dedup();
        for name in names {
            let (before, after) = (earlier.gauge(name), self.gauge(name));
            if before != after {
                gauges.push((name.clone(), before, after));
            }
        }

        let mut histograms: Vec<(String, u64)> = Vec::new();
        let mut names: Vec<&String> = self
            .histograms
            .iter()
            .chain(&earlier.histograms)
            .map(|(n, _)| n)
            .collect();
        names.sort();
        names.dedup();
        for name in names {
            let before = earlier.histogram(name).map_or(0, Histogram::count);
            let after = self.histogram(name).map_or(0, Histogram::count);
            if after > before {
                histograms.push((name.clone(), after - before));
            }
        }

        MetricsDiff {
            counters,
            gauges,
            histograms,
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    /// A human-readable table, one metric per line, sorted by name
    /// within each section.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in counters {
            writeln!(f, "  {name:<width$}  {v}")?;
        }
        let mut gauges: Vec<_> = self.gauges.iter().collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in gauges {
            writeln!(f, "  {name:<width$}  {v:.6}")?;
        }
        let mut histograms: Vec<_> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in histograms {
            writeln!(f, "  {name:<width$}  {h}")?;
        }
        Ok(())
    }
}

/// The change between two [`MetricsSnapshot`]s, as produced by
/// [`MetricsSnapshot::diff`]. Unchanged metrics are omitted.
#[derive(Debug, Clone)]
pub struct MetricsDiff {
    /// Counter deltas (`new - old`), by name.
    counters: Vec<(String, i128)>,
    /// Changed gauges as `(name, before, after)`.
    gauges: Vec<(String, Option<f64>, Option<f64>)>,
    /// Newly recorded histogram samples (`new count - old count`).
    histograms: Vec<(String, u64)>,
}

impl MetricsDiff {
    /// True when the two snapshots were identical.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter delta by name, zero when unchanged.
    pub fn counter_delta(&self, name: &str) -> i128 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

impl std::fmt::Display for MetricsDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return writeln!(f, "  (no change)");
        }
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, ..)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (name, delta) in &self.counters {
            writeln!(f, "  {name:<width$}  {delta:+}")?;
        }
        for (name, before, after) in &self.gauges {
            let fmt_g = |g: &Option<f64>| match g {
                Some(v) => format!("{v:.6}"),
                None => "-".to_string(),
            };
            writeln!(f, "  {name:<width$}  {} -> {}", fmt_g(before), fmt_g(after))?;
        }
        for (name, added) in &self.histograms {
            writeln!(f, "  {name:<width$}  +{added} samples")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("events");
        assert_eq!(m.counter("events"), c, "interning is idempotent");
        m.inc(c);
        m.add(c, 4);
        assert_eq!(m.counter_value("events"), 5);
        assert_eq!(m.counter_value("missing"), 0);

        let g = m.gauge("depth");
        m.set(g, 3.0);
        m.set_max(g, 7.0);
        m.set_max(g, 2.0);
        assert_eq!(m.gauge_value("depth"), Some(7.0));
        m.set_min(g, -1.0);
        m.set_min(g, 4.0);
        assert_eq!(m.gauge_value("depth"), Some(-1.0));
    }

    #[test]
    fn histogram_buckets() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("dt", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            m.record(h, v);
        }
        let hist = m.histogram_value("dt").unwrap();
        // 0.5 and 1.0 land in the first bucket (inclusive upper edge).
        assert_eq!(hist.counts(), &[2, 1, 1, 1]);
        assert_eq!(hist.count(), 5);
        assert!((hist.sum() - 556.5).abs() < 1e-9);
        assert!((hist.mean().unwrap() - 556.5 / 5.0).abs() < 1e-9);
        assert_eq!(Histogram::with_bounds(&[1.0]).mean(), None);
    }

    #[test]
    fn merge_sums_counters_and_histograms_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add("jobs", 3);
        a.gauge_set("peak", 2.0);
        let ha = a.histogram("us", &[1.0, 10.0]);
        a.record(ha, 0.5);
        a.record(ha, 5.0);

        let mut b = MetricsRegistry::new();
        b.counter_add("jobs", 4);
        b.counter_add("only_b", 1);
        b.gauge_set("peak", 7.0);
        b.gauge_set("neg_only_b", -3.0);
        let hb = b.histogram("us", &[1.0, 10.0]);
        b.record(hb, 50.0);
        let hb2 = b.histogram("only_b_hist", &[1.0]);
        b.record(hb2, 2.0);

        a.merge(&b);
        assert_eq!(a.counter_value("jobs"), 7);
        assert_eq!(a.counter_value("only_b"), 1);
        assert_eq!(a.gauge_value("peak"), Some(7.0));
        // Absent gauges are adopted verbatim, not maxed against 0.
        assert_eq!(a.gauge_value("neg_only_b"), Some(-3.0));
        let h = a.histogram_value("us").unwrap();
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-12);
        assert_eq!(a.histogram_value("only_b_hist").unwrap().count(), 1);
    }

    #[test]
    fn merge_keeps_higher_existing_gauge() {
        let mut a = MetricsRegistry::new();
        a.gauge_set("peak", 9.0);
        let mut b = MetricsRegistry::new();
        b.gauge_set("peak", 4.0);
        a.merge(&b);
        assert_eq!(a.gauge_value("peak"), Some(9.0));
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", 2);
        let before = a.counter_value("n");
        a.merge(&MetricsRegistry::new());
        assert_eq!(a.counter_value("n"), before);

        let mut empty = MetricsRegistry::new();
        empty.merge(&a);
        assert_eq!(empty.counter_value("n"), 2);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_histogram_bounds() {
        let mut a = MetricsRegistry::new();
        a.histogram("h", &[1.0, 2.0]);
        let mut b = MetricsRegistry::new();
        b.histogram("h", &[1.0, 3.0]);
        a.merge(&b);
    }

    #[test]
    fn percentile_quantizes_to_bucket_edges() {
        let mut h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        assert_eq!(h.percentile(50.0), None, "empty histogram has no p50");

        // Samples: 1 in (..=1], 2 in (1, 10], 1 in (10, 100].
        for v in [1.0, 2.0, 10.0, 100.0] {
            h.record(v);
        }
        // Nearest-rank: p0 and p25 both resolve to the 1st sample.
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(25.0), Some(1.0));
        // Rank 2 (p50 of 4 samples) lands in the (1, 10] bucket, whose
        // inclusive upper edge is 10.
        assert_eq!(h.percentile(50.0), Some(10.0));
        assert_eq!(h.percentile(75.0), Some(10.0));
        // p100 is the last sample: the (10, 100] bucket edge.
        assert_eq!(h.percentile(100.0), Some(100.0));

        // An overflow sample reports infinity at the top percentile.
        h.record(1e9);
        assert_eq!(h.percentile(100.0), Some(f64::INFINITY));
        assert_eq!(h.percentile(80.0), Some(100.0));
    }

    #[test]
    fn percentile_single_sample_every_p_same_bucket() {
        let mut h = Histogram::with_bounds(&[5.0]);
        h.record(3.0);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(5.0));
        }
    }

    #[test]
    #[should_panic(expected = "percentile must be in 0..=100")]
    fn percentile_rejects_out_of_range() {
        Histogram::with_bounds(&[1.0]).percentile(101.0);
    }

    #[test]
    fn snapshot_diff_reports_deltas_and_display_renders() {
        let mut m = MetricsRegistry::new();
        m.counter_add("jobs", 2);
        m.gauge_set("peak", 1.0);
        let h = m.histogram("lat", &[1.0, 10.0]);
        m.record(h, 0.5);
        let before = m.snapshot();

        m.counter_add("jobs", 3);
        m.counter_add("fresh", 1);
        m.gauge_set("peak", 4.0);
        m.record(h, 5.0);
        let after = m.snapshot();

        let diff = after.diff(&before);
        assert!(!diff.is_empty());
        assert_eq!(diff.counter_delta("jobs"), 3);
        assert_eq!(diff.counter_delta("fresh"), 1);
        assert_eq!(diff.counter_delta("unchanged"), 0);

        let table = diff.to_string();
        assert!(table.contains("jobs"), "diff table lists jobs: {table}");
        assert!(table.contains("+3"), "delta is signed: {table}");
        assert!(table.contains("1.000000 -> 4.000000"), "gauges: {table}");
        assert!(table.contains("+1 samples"), "histograms: {table}");

        assert!(after.diff(&after).is_empty());
        assert_eq!(after.diff(&after).to_string(), "  (no change)\n");

        let snap_table = after.to_string();
        assert!(snap_table.contains("jobs"));
        assert!(snap_table.contains("p50"));
    }

    #[test]
    fn snapshot_shape() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("n");
        m.inc(c);
        let snap = m.snapshot_value();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("n"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert!(snap.get("gauges").is_some());
        assert!(snap.get("histograms").is_some());
    }
}
