//! Counters, gauges and fixed-bucket histograms.
//!
//! Metrics are registered by name once (interning returns a copyable
//! id) and updated by id afterwards, so per-event hot paths do no
//! string work. By-name convenience updaters exist for cold paths like
//! end-of-run promotion of accumulated statistics.

use serde::Value;

/// Id of an interned counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Id of an interned gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Id of an interned histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge
/// of bucket `i`, with one extra overflow bucket at the end.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn record(&mut self, value: f64) {
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts (last bucket is overflow past the top bound).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "bounds".to_string(),
                Value::Seq(self.bounds.iter().map(|&b| Value::F64(b)).collect()),
            ),
            (
                "counts".to_string(),
                Value::Seq(self.counts.iter().map(|&c| Value::U64(c)).collect()),
            ),
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::F64(self.sum)),
        ])
    }
}

/// The registry holding every metric of a run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter and returns its id.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge and returns its id.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram with the given bucket bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds to a counter by id.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Increments a counter by id.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge by id.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Raises a gauge to `value` if it is above the current reading —
    /// a running maximum, e.g. peak queue depth.
    pub fn set_max(&mut self, id: GaugeId, value: f64) {
        let g = &mut self.gauges[id.0].1;
        if value > *g {
            *g = value;
        }
    }

    /// Lowers a gauge to `value` if it is below the current reading —
    /// a running minimum, e.g. worst supply droop.
    pub fn set_min(&mut self, id: GaugeId, value: f64) {
        let g = &mut self.gauges[id.0].1;
        if value < *g {
            *g = value;
        }
    }

    /// Records a sample into a histogram by id.
    pub fn record(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// Adds to a counter by name (cold paths only).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let id = self.counter(name);
        self.add(id, delta);
    }

    /// Sets a gauge by name (cold paths only).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let id = self.gauge(name);
        self.set(id, value);
    }

    /// Running-maximum gauge update by name (cold paths only).
    pub fn gauge_set_max(&mut self, name: &str, value: f64) {
        let id = self.gauge(name);
        self.set_max(id, value);
    }

    /// Running-minimum gauge update by name (cold paths only).
    pub fn gauge_set_min(&mut self, name: &str, value: f64) {
        let id = self.gauge(name);
        self.set_min(id, value);
    }

    /// Current counter value, zero if never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Current gauge reading, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Folds `other` into `self` — the join step when several workers
    /// accumulated metrics independently (e.g. one registry per worker
    /// thread of a parallel batch).
    ///
    /// Merge policy, chosen so the merged snapshot is independent of
    /// how work was split across workers:
    ///
    /// * **counters** — summed (they count events, and events
    ///   partition across workers);
    /// * **histograms** — bucket-wise summed; both registries must use
    ///   the same bounds for a shared name;
    /// * **gauges** — the **maximum** reading wins. Every cross-worker
    ///   gauge in this workspace is a running peak (worst droop in mV,
    ///   peak queue depth, workers used); a running *minimum* must be
    ///   stored negated (or folded manually) to survive a merge.
    ///
    /// Metrics present only in `other` are registered in `self`;
    /// registration order is `self`'s entries first, then `other`'s
    /// new names in `other`'s order.
    ///
    /// # Panics
    ///
    /// Panics when a histogram name is present in both registries with
    /// different bucket bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            let id = self.counter(name);
            self.add(id, *v);
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = mine.max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge_from(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A serializable snapshot of every metric, in registration order.
    pub fn snapshot_value(&self) -> Value {
        Value::Map(vec![
            (
                "counters".to_string(),
                Value::Map(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::F64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Map(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("events");
        assert_eq!(m.counter("events"), c, "interning is idempotent");
        m.inc(c);
        m.add(c, 4);
        assert_eq!(m.counter_value("events"), 5);
        assert_eq!(m.counter_value("missing"), 0);

        let g = m.gauge("depth");
        m.set(g, 3.0);
        m.set_max(g, 7.0);
        m.set_max(g, 2.0);
        assert_eq!(m.gauge_value("depth"), Some(7.0));
        m.set_min(g, -1.0);
        m.set_min(g, 4.0);
        assert_eq!(m.gauge_value("depth"), Some(-1.0));
    }

    #[test]
    fn histogram_buckets() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("dt", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            m.record(h, v);
        }
        let hist = m.histogram_value("dt").unwrap();
        // 0.5 and 1.0 land in the first bucket (inclusive upper edge).
        assert_eq!(hist.counts(), &[2, 1, 1, 1]);
        assert_eq!(hist.count(), 5);
        assert!((hist.sum() - 556.5).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_counters_and_histograms_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add("jobs", 3);
        a.gauge_set("peak", 2.0);
        let ha = a.histogram("us", &[1.0, 10.0]);
        a.record(ha, 0.5);
        a.record(ha, 5.0);

        let mut b = MetricsRegistry::new();
        b.counter_add("jobs", 4);
        b.counter_add("only_b", 1);
        b.gauge_set("peak", 7.0);
        b.gauge_set("neg_only_b", -3.0);
        let hb = b.histogram("us", &[1.0, 10.0]);
        b.record(hb, 50.0);
        let hb2 = b.histogram("only_b_hist", &[1.0]);
        b.record(hb2, 2.0);

        a.merge(&b);
        assert_eq!(a.counter_value("jobs"), 7);
        assert_eq!(a.counter_value("only_b"), 1);
        assert_eq!(a.gauge_value("peak"), Some(7.0));
        // Absent gauges are adopted verbatim, not maxed against 0.
        assert_eq!(a.gauge_value("neg_only_b"), Some(-3.0));
        let h = a.histogram_value("us").unwrap();
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-12);
        assert_eq!(a.histogram_value("only_b_hist").unwrap().count(), 1);
    }

    #[test]
    fn merge_keeps_higher_existing_gauge() {
        let mut a = MetricsRegistry::new();
        a.gauge_set("peak", 9.0);
        let mut b = MetricsRegistry::new();
        b.gauge_set("peak", 4.0);
        a.merge(&b);
        assert_eq!(a.gauge_value("peak"), Some(9.0));
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", 2);
        let before = a.counter_value("n");
        a.merge(&MetricsRegistry::new());
        assert_eq!(a.counter_value("n"), before);

        let mut empty = MetricsRegistry::new();
        empty.merge(&a);
        assert_eq!(empty.counter_value("n"), 2);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_histogram_bounds() {
        let mut a = MetricsRegistry::new();
        a.histogram("h", &[1.0, 2.0]);
        let mut b = MetricsRegistry::new();
        b.histogram("h", &[1.0, 3.0]);
        a.merge(&b);
    }

    #[test]
    fn snapshot_shape() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("n");
        m.inc(c);
        let snap = m.snapshot_value();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("n"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert!(snap.get("gauges").is_some());
        assert!(snap.get("histograms").is_some());
    }
}
