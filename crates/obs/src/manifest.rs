//! The run manifest: who produced this telemetry stream, from what
//! configuration, and how to reproduce it.
//!
//! The manifest is always the first record of a stream, so a consumer
//! can interpret everything after it without out-of-band context.

use serde::{json, Serialize, Value};
use std::process::Command;

/// The reproducibility header of a telemetry stream.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Experiment or program name (`"fig9"`, `"characterize"`, ...).
    pub experiment: String,
    /// FNV-1a hash of the serialized configuration, when one exists.
    pub config_hash: Option<u64>,
    /// RNG seed for randomized runs.
    pub seed: Option<u64>,
    /// PVT corner label, e.g. `"TT"` / `"SS"` / `"FF"`.
    pub pvt: Option<String>,
    /// High-sense pulse generator delay code.
    pub hs_code: Option<u8>,
    /// Low-sense pulse generator delay code.
    pub ls_code: Option<u8>,
    /// `git describe` of the producing tree, when available.
    pub git: Option<String>,
    /// Free-form additional entries.
    pub extra: Vec<(String, Value)>,
}

impl RunManifest {
    /// A manifest for the named experiment.
    pub fn new(experiment: impl Into<String>) -> RunManifest {
        RunManifest {
            experiment: experiment.into(),
            ..RunManifest::default()
        }
    }

    /// Records the hash of the run's configuration.
    pub fn config(mut self, config: &impl Serialize) -> RunManifest {
        self.config_hash = Some(config_hash(config));
        self
    }

    /// Records the RNG seed.
    pub fn seed(mut self, seed: u64) -> RunManifest {
        self.seed = Some(seed);
        self
    }

    /// Records the PVT corner label.
    pub fn pvt(mut self, corner: impl Into<String>) -> RunManifest {
        self.pvt = Some(corner.into());
        self
    }

    /// Records the pulse-generator delay codes.
    pub fn delay_codes(mut self, hs: u8, ls: u8) -> RunManifest {
        self.hs_code = Some(hs);
        self.ls_code = Some(ls);
        self
    }

    /// Stamps the manifest with `git describe` of the working tree,
    /// silently skipped when git or the repository is unavailable.
    pub fn with_git_describe(mut self) -> RunManifest {
        self.git = git_describe();
        self
    }

    /// Attaches one extra serializable entry.
    pub fn extra(mut self, key: impl Into<String>, value: &impl Serialize) -> RunManifest {
        self.extra.push((key.into(), value.to_value()));
        self
    }
}

impl Serialize for RunManifest {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = Vec::new();
        entries.push((
            "experiment".to_string(),
            Value::Str(self.experiment.clone()),
        ));
        if let Some(h) = self.config_hash {
            // Hex keeps the 64-bit hash readable and avoids any
            // consumer-side integer-precision trouble.
            entries.push(("config_hash".to_string(), Value::Str(format!("{h:016x}"))));
        }
        if let Some(s) = self.seed {
            entries.push(("seed".to_string(), Value::U64(s)));
        }
        if let Some(p) = &self.pvt {
            entries.push(("pvt".to_string(), Value::Str(p.clone())));
        }
        if let Some(c) = self.hs_code {
            entries.push(("hs_code".to_string(), Value::U64(c as u64)));
        }
        if let Some(c) = self.ls_code {
            entries.push(("ls_code".to_string(), Value::U64(c as u64)));
        }
        if let Some(g) = &self.git {
            entries.push(("git".to_string(), Value::Str(g.clone())));
        }
        entries.extend(self.extra.iter().cloned());
        Value::Map(entries)
    }
}

/// FNV-1a hash of a configuration's canonical JSON rendering.
pub fn config_hash(config: &impl Serialize) -> u64 {
    let rendered = json::to_string(config);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `git describe --always --dirty` of the current directory, if git
/// and a repository are present.
pub fn git_describe() -> Option<String> {
    let out = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let text = text.trim();
    if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_serializes_set_fields_only() {
        let m = RunManifest::new("fig9").seed(7).pvt("TT").delay_codes(3, 3);
        let v = m.to_value();
        assert_eq!(v.get("experiment").and_then(Value::as_str), Some("fig9"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("pvt").and_then(Value::as_str), Some("TT"));
        assert_eq!(v.get("hs_code").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("ls_code").and_then(Value::as_u64), Some(3));
        assert!(v.get("config_hash").is_none());
        assert!(v.get("git").is_none());
    }

    #[test]
    fn config_hash_distinguishes_configs() {
        let a = config_hash(&(1u32, 2u32));
        let b = config_hash(&(1u32, 3u32));
        assert_ne!(a, b);
        assert_eq!(a, config_hash(&(1u32, 2u32)));
    }

    #[test]
    fn extras_flatten_into_manifest() {
        let m = RunManifest::new("x").extra("tiles", &4u64);
        assert_eq!(m.to_value().get("tiles").and_then(Value::as_u64), Some(4));
    }
}
