//! # psnt-sup — run supervision
//!
//! Every long-running path in the workspace — 1,000-cycle NoC
//! campaigns, 1,016-plan fault sweeps, closed-loop mitigation runs —
//! needs a way to be cancelled, bounded and resumed without losing
//! work. This crate supplies the vocabulary, kept dependency-free on
//! purpose so the lowest layers (`psnt-netlist`, `psnt-engine`,
//! `psnt-pdn`) can link it without cycles:
//!
//! * [`CancelToken`] — a shared cooperative cancellation flag;
//! * [`RunBudget`] — wall-clock deadline, sim-time budget, global
//!   event budget and checkpoint cadence;
//! * [`Supervisor`] — token + budget + start instant, checked cheaply
//!   (two relaxed atomic loads on the fast path) at coarse loop
//!   boundaries: netlist events, engine chunk claims, PDN sweep steps,
//!   Monte-Carlo trials and workload cycles;
//! * [`Interrupt`] — the structured reason a check tripped;
//! * [`Supervised`] — `Done(T)` or `Interrupted { at, reason,
//!   partial }`, the result shape of every supervised entry point: an
//!   interruption carries the completed-so-far prefix, never a panic
//!   and never a hang.
//!
//! # Determinism contract
//!
//! A **detached** supervisor ([`Supervisor::detached`], the default on
//! a `RunCtx`) never trips: supervised entry points driven by one are
//! bit-identical to their unsupervised twins. Cancellation and
//! wall-clock deadlines are inherently timing-dependent — *where* a
//! run is interrupted varies — but *what* is returned at any
//! interruption point is a deterministic prefix of the full run, and
//! resuming from a checkpoint reproduces the uninterrupted run
//! record-for-record (pinned by the resume proptests at the workspace
//! root). The chaos harness makes interruption itself deterministic by
//! tripping at an exact cycle ([`Supervisor::force_expire`] and the
//! `CancelAt` fault in `psnt-fault`).
//!
//! ```
//! use psnt_sup::{CancelToken, Interrupt, RunBudget, Supervisor};
//!
//! let token = CancelToken::new();
//! let sup = Supervisor::new(token.clone(), RunBudget::unlimited().events(1000));
//! assert!(sup.check().is_ok());
//! token.cancel();
//! assert_eq!(sup.check(), Err(Interrupt::Cancelled));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative cancellation flag: clone it anywhere (another
/// thread, a signal handler, a service frontend), call
/// [`CancelToken::cancel`] once, and every [`Supervisor`] carrying the
/// token trips at its next check. Cancellation is sticky — there is no
/// un-cancel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The budgets a supervised run honours. The default
/// ([`RunBudget::unlimited`]) bounds nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunBudget {
    deadline: Option<Duration>,
    sim_time_ps: Option<f64>,
    events: Option<u64>,
    checkpoint_every: Option<u64>,
}

impl RunBudget {
    /// No deadline, no sim-time or event budget, no checkpoint cadence.
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// Caps the run's wall-clock time, measured from the supervisor's
    /// construction.
    #[must_use]
    pub fn deadline(mut self, wall: Duration) -> RunBudget {
        self.deadline = Some(wall);
        self
    }

    /// Caps the simulated time a run may cover, in picoseconds
    /// (checked by [`Supervisor::check_at`]).
    #[must_use]
    pub fn sim_time_ps(mut self, ps: f64) -> RunBudget {
        self.sim_time_ps = Some(ps);
        self
    }

    /// Caps the global event/iteration count charged through
    /// [`Supervisor::charge_events`] across every layer of the run.
    #[must_use]
    pub fn events(mut self, budget: u64) -> RunBudget {
        self.events = Some(budget);
        self
    }

    /// Asks checkpointing entry points to snapshot every `cycles`
    /// cycles (advisory — only paths with a checkpoint sink honour it).
    #[must_use]
    pub fn checkpoint_every(mut self, cycles: u64) -> RunBudget {
        self.checkpoint_every = Some(cycles.max(1));
        self
    }

    /// The wall-clock deadline, if any.
    pub fn wall_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The sim-time budget in picoseconds, if any.
    pub fn sim_budget_ps(&self) -> Option<f64> {
        self.sim_time_ps
    }

    /// The global event budget, if any.
    pub fn event_budget(&self) -> Option<u64> {
        self.events
    }

    /// The checkpoint cadence in cycles, if any.
    pub fn checkpoint_cadence(&self) -> Option<u64> {
        self.checkpoint_every
    }

    /// True when no budget is set (a supervisor over such a budget can
    /// only trip through its token or [`Supervisor::force_expire`]).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.sim_time_ps.is_none()
            && self.events.is_none()
            && self.checkpoint_every.is_none()
    }
}

/// Why a supervised run stopped early.
#[derive(Debug, Clone, PartialEq)]
pub enum Interrupt {
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline expired (or the supervisor was
    /// [`force_expire`](Supervisor::force_expire)d by the chaos
    /// harness's `DeadlineTrip` fault).
    DeadlineExpired,
    /// The simulated-time budget was exhausted.
    SimTimeBudget {
        /// The configured budget, picoseconds.
        budget_ps: f64,
        /// The simulated instant that overran it, picoseconds.
        at_ps: f64,
    },
    /// The global event budget was exhausted.
    EventBudget {
        /// The configured budget.
        budget: u64,
        /// Events charged when the check tripped.
        used: u64,
    },
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "run cancelled"),
            Interrupt::DeadlineExpired => write!(f, "wall-clock deadline expired"),
            Interrupt::SimTimeBudget { budget_ps, at_ps } => write!(
                f,
                "sim-time budget exhausted: at {at_ps} ps against a budget of {budget_ps} ps"
            ),
            Interrupt::EventBudget { budget, used } => write!(
                f,
                "event budget exhausted: {used} events charged against a budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for Interrupt {}

/// The supervision handle threaded through `RunCtx`: a [`CancelToken`],
/// a [`RunBudget`] and the start instant the deadline is measured from.
///
/// Clones share the token, the global event counter and the forced-trip
/// flag, so a supervisor handed to a worker thread observes the same
/// trip the consumer does.
#[derive(Debug, Clone)]
pub struct Supervisor {
    token: CancelToken,
    budget: RunBudget,
    started: Instant,
    events: Arc<AtomicU64>,
    forced: Arc<AtomicBool>,
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor::detached()
    }
}

impl Supervisor {
    /// The never-tripping supervisor every `RunCtx` starts with: fresh
    /// token, unlimited budget. Supervised entry points driven by a
    /// detached supervisor behave bit-identically to their
    /// unsupervised twins.
    pub fn detached() -> Supervisor {
        Supervisor::new(CancelToken::new(), RunBudget::unlimited())
    }

    /// A supervisor over `token` and `budget`; the wall-clock deadline
    /// starts counting now.
    pub fn new(token: CancelToken, budget: RunBudget) -> Supervisor {
        Supervisor {
            token,
            budget,
            started: Instant::now(),
            events: Arc::new(AtomicU64::new(0)),
            forced: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The supervisor's cancellation token (clone it to cancel from
    /// elsewhere).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// The budget this supervisor enforces.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Wall-clock time elapsed since the supervisor was constructed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Charges `n` events/iterations against the global event budget
    /// and returns the new total. Cheap (one relaxed atomic add); call
    /// at coarse boundaries (per chunk, per kilocycle), not per event.
    pub fn charge_events(&self, n: u64) -> u64 {
        self.events.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Events charged so far across every clone.
    pub fn events_used(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Trips the wall-clock deadline immediately, regardless of the
    /// budget — the deterministic lever the chaos harness's
    /// `DeadlineTrip` fault pulls so the genuine deadline path is
    /// exercised without waiting out a real deadline.
    pub fn force_expire(&self) {
        self.forced.store(true, Ordering::Relaxed);
    }

    /// The cooperative check every supervised loop calls at its
    /// boundary. Fast path (detached supervisor): two relaxed atomic
    /// loads. Checks, in order: cancellation, forced/real deadline,
    /// event budget.
    ///
    /// # Errors
    ///
    /// Returns the [`Interrupt`] describing the first tripped
    /// condition.
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.token.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        if self.forced.load(Ordering::Relaxed) {
            return Err(Interrupt::DeadlineExpired);
        }
        if let Some(d) = self.budget.deadline {
            if self.started.elapsed() >= d {
                return Err(Interrupt::DeadlineExpired);
            }
        }
        if let Some(b) = self.budget.events {
            let used = self.events.load(Ordering::Relaxed);
            if used > b {
                return Err(Interrupt::EventBudget { budget: b, used });
            }
        }
        Ok(())
    }

    /// [`Supervisor::check`] plus the sim-time budget against the
    /// current simulated instant `at_ps`.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::check`], plus [`Interrupt::SimTimeBudget`].
    pub fn check_at(&self, at_ps: f64) -> Result<(), Interrupt> {
        self.check()?;
        if let Some(b) = self.budget.sim_time_ps {
            if at_ps > b {
                return Err(Interrupt::SimTimeBudget {
                    budget_ps: b,
                    at_ps,
                });
            }
        }
        Ok(())
    }
}

/// The result of a supervised run: completed, or interrupted with the
/// completed-so-far prefix. `P` is the partial payload an interruption
/// carries (a checkpoint, a profile prefix, completed campaign maps) —
/// by default the same type as the full result.
#[derive(Debug, Clone, PartialEq)]
pub enum Supervised<T, P = T> {
    /// The run completed; results are bit-identical to the
    /// unsupervised path.
    Done(T),
    /// The run was interrupted cooperatively — no panic, no hang, no
    /// lost partials.
    Interrupted {
        /// The loop index (cycle, trial, chunk) the run stopped at:
        /// everything strictly before `at` completed.
        at: u64,
        /// Why the run stopped.
        reason: Interrupt,
        /// The completed-so-far payload.
        partial: P,
    },
}

impl<T, P> Supervised<T, P> {
    /// True for [`Supervised::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, Supervised::Done(_))
    }

    /// The completed result, consuming the value.
    pub fn done(self) -> Option<T> {
        match self {
            Supervised::Done(t) => Some(t),
            Supervised::Interrupted { .. } => None,
        }
    }

    /// The completed result by reference.
    pub fn as_done(&self) -> Option<&T> {
        match self {
            Supervised::Done(t) => Some(t),
            Supervised::Interrupted { .. } => None,
        }
    }

    /// The interruption `(at, reason, partial)` by reference, if the
    /// run was interrupted.
    pub fn interrupted(&self) -> Option<(u64, &Interrupt, &P)> {
        match self {
            Supervised::Done(_) => None,
            Supervised::Interrupted {
                at,
                reason,
                partial,
            } => Some((*at, reason, partial)),
        }
    }
}

/// A stride counter for amortising supervision checks inside hot
/// loops: `tick()` returns true every `stride`-th call, so a
/// per-event loop pays one decrement per event and the supervisor's
/// atomics only every `stride` events.
#[derive(Debug, Clone)]
pub struct Pacer {
    stride: u32,
    left: u32,
}

impl Pacer {
    /// A pacer firing every `stride` ticks (clamped to at least 1).
    pub fn new(stride: u32) -> Pacer {
        let stride = stride.max(1);
        Pacer {
            stride,
            left: stride,
        }
    }

    /// Counts one iteration; true when this tick crosses the stride
    /// boundary (time to check the supervisor).
    pub fn tick(&mut self) -> bool {
        self.left -= 1;
        if self.left == 0 {
            self.left = self.stride;
            true
        } else {
            false
        }
    }

    /// The configured stride.
    pub fn stride(&self) -> u32 {
        self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_supervisor_never_trips() {
        let sup = Supervisor::detached();
        for _ in 0..100 {
            assert!(sup.check().is_ok());
            assert!(sup.check_at(1e12).is_ok());
        }
        sup.charge_events(u64::MAX / 2);
        assert!(sup.check().is_ok(), "no budget, no trip");
        assert!(Supervisor::default().check().is_ok());
    }

    #[test]
    fn cancellation_is_shared_and_sticky() {
        let token = CancelToken::new();
        let sup = Supervisor::new(token.clone(), RunBudget::unlimited());
        let clone = sup.clone();
        assert!(sup.check().is_ok());
        token.cancel();
        assert_eq!(sup.check(), Err(Interrupt::Cancelled));
        assert_eq!(clone.check(), Err(Interrupt::Cancelled), "clones share");
        token.cancel();
        assert!(token.is_cancelled(), "idempotent");
    }

    #[test]
    fn event_budget_trips_across_clones() {
        let sup = Supervisor::new(CancelToken::new(), RunBudget::unlimited().events(100));
        let worker = sup.clone();
        assert_eq!(worker.charge_events(60), 60);
        assert!(sup.check().is_ok());
        assert_eq!(sup.charge_events(60), 120, "counter is global");
        let err = worker.check().unwrap_err();
        assert_eq!(
            err,
            Interrupt::EventBudget {
                budget: 100,
                used: 120
            }
        );
        assert_eq!(sup.events_used(), 120);
    }

    #[test]
    fn sim_time_budget_checks_only_check_at() {
        let sup = Supervisor::new(
            CancelToken::new(),
            RunBudget::unlimited().sim_time_ps(500.0),
        );
        assert!(sup.check().is_ok(), "plain check ignores sim time");
        assert!(sup.check_at(500.0).is_ok(), "inclusive bound");
        assert_eq!(
            sup.check_at(501.0),
            Err(Interrupt::SimTimeBudget {
                budget_ps: 500.0,
                at_ps: 501.0
            })
        );
    }

    #[test]
    fn deadline_and_force_expire() {
        // A zero deadline has already expired.
        let sup = Supervisor::new(
            CancelToken::new(),
            RunBudget::unlimited().deadline(Duration::ZERO),
        );
        assert_eq!(sup.check(), Err(Interrupt::DeadlineExpired));
        // force_expire trips the same path without any deadline set.
        let sup = Supervisor::detached();
        assert!(sup.check().is_ok());
        sup.force_expire();
        assert_eq!(sup.check(), Err(Interrupt::DeadlineExpired));
        assert_eq!(sup.clone().check(), Err(Interrupt::DeadlineExpired));
    }

    #[test]
    fn budget_builders_compose() {
        let b = RunBudget::unlimited()
            .deadline(Duration::from_secs(5))
            .sim_time_ps(1e6)
            .events(1_000_000)
            .checkpoint_every(0);
        assert_eq!(b.wall_deadline(), Some(Duration::from_secs(5)));
        assert_eq!(b.sim_budget_ps(), Some(1e6));
        assert_eq!(b.event_budget(), Some(1_000_000));
        assert_eq!(b.checkpoint_cadence(), Some(1), "cadence clamps to 1");
        assert!(!b.is_unlimited());
        assert!(RunBudget::unlimited().is_unlimited());
    }

    #[test]
    fn supervised_accessors() {
        let done: Supervised<u32> = Supervised::Done(7);
        assert!(done.is_done());
        assert_eq!(done.as_done(), Some(&7));
        assert_eq!(done.interrupted(), None);
        assert_eq!(done.done(), Some(7));
        let cut: Supervised<u32, Vec<u32>> = Supervised::Interrupted {
            at: 3,
            reason: Interrupt::Cancelled,
            partial: vec![0, 1, 2],
        };
        assert!(!cut.is_done());
        let (at, reason, partial) = cut.interrupted().unwrap();
        assert_eq!((at, partial.len()), (3, 3));
        assert_eq!(reason, &Interrupt::Cancelled);
        assert_eq!(cut.done(), None);
    }

    #[test]
    fn pacer_fires_every_stride() {
        let mut p = Pacer::new(4);
        let fired: Vec<bool> = (0..9).map(|_| p.tick()).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, true, false]
        );
        assert_eq!(p.stride(), 4);
        // Degenerate stride clamps to 1: every tick fires.
        let mut every = Pacer::new(0);
        assert!(every.tick() && every.tick());
    }

    #[test]
    fn interrupt_displays_and_is_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Interrupt>();
        assert!(Interrupt::Cancelled.to_string().contains("cancelled"));
        assert!(Interrupt::DeadlineExpired.to_string().contains("deadline"));
        assert!(Interrupt::SimTimeBudget {
            budget_ps: 1.0,
            at_ps: 2.0
        }
        .to_string()
        .contains("sim-time"));
        assert!(Interrupt::EventBudget { budget: 1, used: 2 }
            .to_string()
            .contains("event budget"));
    }

    #[test]
    fn supervisor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Supervisor>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<Interrupt>();
    }
}
