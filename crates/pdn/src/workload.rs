//! Load-current profiles of the circuit under test.
//!
//! The PSN a sensor sees is driven by what the CUT *does*: pipelines
//! issuing bursts, clock gates opening, units powering up. These
//! generators produce per-time current draws (amperes) to feed
//! [`crate::rlc::LumpedPdn::transient`] or
//! [`crate::grid::PowerGrid::quasi_static_transient`].
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Current, Time};
//! use psnt_pdn::workload::WorkloadBuilder;
//!
//! let load = WorkloadBuilder::new(Current::from_a(0.3))
//!     .span(Time::ZERO, Time::from_ns(500.0))
//!     .burst(Time::from_ns(100.0), Time::from_ns(50.0), Current::from_a(1.2))
//!     .build()?;
//! assert!(load.sample(Time::from_ns(120.0)) > load.sample(Time::from_ns(50.0)));
//! # Ok::<(), psnt_pdn::error::PdnError>(())
//! ```

use psnt_cells::units::{Current, Frequency, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PdnError;
use crate::waveform::Waveform;

/// One workload feature over the base draw.
#[derive(Debug, Clone)]
enum Feature {
    Burst {
        start: Time,
        duration: Time,
        peak: f64,
    },
    Step {
        at: Time,
        to: f64,
    },
    Periodic {
        period: Time,
        duty: f64,
        peak: f64,
    },
}

/// Builder for synthetic CUT current profiles.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    base: f64,
    start: Time,
    end: Time,
    resolution: Time,
    features: Vec<Feature>,
    activity: Option<(f64, u64, Time)>,
}

impl WorkloadBuilder {
    /// Starts from a constant base (leakage + idle clocking) draw. The
    /// default span is 0–1 µs at 500 ps resolution.
    pub fn new(base: Current) -> WorkloadBuilder {
        WorkloadBuilder {
            base: base.amps(),
            start: Time::ZERO,
            end: Time::from_us(1.0),
            resolution: Time::from_ps(500.0),
            features: Vec::new(),
            activity: None,
        }
    }

    /// Sets the generated span.
    pub fn span(mut self, start: Time, end: Time) -> WorkloadBuilder {
        self.start = start;
        self.end = end;
        self
    }

    /// Sets the sample resolution.
    pub fn resolution(mut self, dt: Time) -> WorkloadBuilder {
        self.resolution = dt;
        self
    }

    /// Adds a rectangular compute burst: the draw rises to `peak` for
    /// `duration` starting at `start`.
    pub fn burst(mut self, start: Time, duration: Time, peak: Current) -> WorkloadBuilder {
        self.features.push(Feature::Burst {
            start,
            duration,
            peak: peak.amps(),
        });
        self
    }

    /// Adds a persistent level change at `at` (e.g. a clock gate opening).
    pub fn step(mut self, at: Time, to: Current) -> WorkloadBuilder {
        self.features.push(Feature::Step { at, to: to.amps() });
        self
    }

    /// Adds a periodic draw at `freq` with the given duty cycle and peak —
    /// the signature of a loop executing at a fixed cadence (the stimulus
    /// that excites package resonance hardest when `freq` matches it).
    pub fn periodic(mut self, freq: Frequency, duty: f64, peak: Current) -> WorkloadBuilder {
        self.features.push(Feature::Periodic {
            period: Time::period_of(freq),
            duty: duty.clamp(0.0, 1.0),
            peak: peak.amps(),
        });
        self
    }

    /// Adds per-sample random activity: instruction-level current noise
    /// uniform in `[0, amplitude]`, re-rolled every `granularity`.
    pub fn random_activity(
        mut self,
        amplitude: Current,
        granularity: Time,
        seed: u64,
    ) -> WorkloadBuilder {
        self.activity = Some((amplitude.amps(), seed, granularity));
        self
    }

    /// Generates the profile (amperes).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for a non-positive span or
    /// resolution.
    pub fn build(self) -> Result<Waveform, PdnError> {
        if self.end <= self.start {
            return Err(PdnError::InvalidParameter {
                name: "span",
                reason: "end must exceed start".into(),
            });
        }
        if self.resolution <= Time::ZERO {
            return Err(PdnError::InvalidParameter {
                name: "resolution",
                reason: "must be positive".into(),
            });
        }
        let n = (((self.end - self.start) / self.resolution).ceil() as usize).max(1);
        let base = self.base;
        let features = self.features;
        let mut act = self.activity.map(|(amp, seed, gran)| {
            (
                amp,
                StdRng::seed_from_u64(seed),
                gran,
                Time::from_seconds(-1.0),
                0.0,
            )
        });
        let start = self.start;
        Waveform::sample_fn(self.start, self.end, n, move |t| {
            let mut i = base;
            for f in &features {
                match *f {
                    Feature::Burst {
                        start,
                        duration,
                        peak,
                    } => {
                        if t >= start && t < start + duration {
                            i = i.max(peak);
                        }
                    }
                    Feature::Step { at, to } => {
                        if t >= at {
                            i = to.max(i - base + to); // re-base subsequent features
                        }
                    }
                    Feature::Periodic { period, duty, peak } => {
                        let phase = ((t - start) / period).fract();
                        if phase < duty {
                            i = i.max(peak);
                        }
                    }
                }
            }
            if let Some((amp, rng, gran, last, held)) = act.as_mut() {
                if t - *last >= *gran {
                    *held = rng.gen_range(0.0..=*amp);
                    *last = t;
                }
                i += *held;
            }
            i
        })
    }
}

/// A canonical "CPU runs a hot loop" profile: base draw, random
/// instruction activity, and a periodic burst train at `loop_freq`
/// (maximally excites the PDN when tuned to its resonance).
///
/// # Errors
///
/// Propagates builder validation.
pub fn resonant_loop(
    base: Current,
    peak: Current,
    loop_freq: Frequency,
    end: Time,
    seed: u64,
) -> Result<Waveform, PdnError> {
    WorkloadBuilder::new(base)
        .span(Time::ZERO, end)
        .resolution(Time::period_of(loop_freq) / 20.0)
        .periodic(loop_freq, 0.5, peak)
        .random_activity(base * 0.2, Time::from_ns(1.0), seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(t: f64) -> Time {
        Time::from_ns(t)
    }

    fn a(x: f64) -> Current {
        Current::from_a(x)
    }

    #[test]
    fn base_level_everywhere_without_features() {
        let w = WorkloadBuilder::new(a(0.25))
            .span(Time::ZERO, ns(100.0))
            .build()
            .unwrap();
        assert!((w.min_value() - 0.25).abs() < 1e-12);
        assert!((w.max_value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn burst_raises_draw_within_interval_only() {
        let w = WorkloadBuilder::new(a(0.2))
            .span(Time::ZERO, ns(300.0))
            .resolution(Time::from_ps(500.0))
            .burst(ns(100.0), ns(50.0), a(1.0))
            .build()
            .unwrap();
        assert!((w.sample(ns(50.0)) - 0.2).abs() < 1e-9);
        assert!((w.sample(ns(120.0)) - 1.0).abs() < 1e-9);
        assert!((w.sample(ns(200.0)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn step_changes_level_permanently() {
        let w = WorkloadBuilder::new(a(0.2))
            .span(Time::ZERO, ns(200.0))
            .step(ns(80.0), a(0.9))
            .build()
            .unwrap();
        assert!((w.sample(ns(40.0)) - 0.2).abs() < 1e-9);
        assert!((w.sample(ns(100.0)) - 0.9).abs() < 1e-9);
        assert!((w.sample(ns(199.0)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn periodic_duty_cycle() {
        let w = WorkloadBuilder::new(a(0.1))
            .span(Time::ZERO, ns(200.0))
            .resolution(Time::from_ps(250.0))
            .periodic(Frequency::from_mhz(50.0), 0.5, a(0.8))
            .build()
            .unwrap();
        // Period 20 ns: first 10 ns high, next 10 ns low.
        assert!((w.sample(ns(4.0)) - 0.8).abs() < 1e-9);
        assert!((w.sample(ns(15.0)) - 0.1).abs() < 1e-9);
        assert!((w.sample(ns(24.0)) - 0.8).abs() < 1e-9);
        // Mean ≈ duty-weighted average.
        let mean = w.mean_over(Time::ZERO, ns(200.0));
        assert!((mean - 0.45).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn random_activity_seeded_and_bounded() {
        let build = |seed| {
            WorkloadBuilder::new(a(0.3))
                .span(Time::ZERO, ns(100.0))
                .random_activity(a(0.2), ns(2.0), seed)
                .build()
                .unwrap()
        };
        let w1 = build(9);
        let w2 = build(9);
        let w3 = build(10);
        assert_eq!(w1, w2);
        assert_ne!(w1, w3);
        assert!(w1.min_value() >= 0.3 - 1e-12);
        assert!(w1.max_value() <= 0.5 + 1e-12);
    }

    #[test]
    fn resonant_loop_profile() {
        let w = resonant_loop(a(0.2), a(1.0), Frequency::from_mhz(50.0), ns(400.0), 1).unwrap();
        assert!(w.max_value() >= 1.0);
        assert!(w.min_value() >= 0.2 - 1e-12);
        // It must actually oscillate: many transitions above/below midline.
        let mid = 0.6;
        let crossings = w
            .points()
            .windows(2)
            .filter(|p| (p[0].1 < mid) != (p[1].1 < mid))
            .count();
        assert!(crossings > 20, "only {crossings} crossings");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(WorkloadBuilder::new(a(0.1))
            .span(ns(10.0), ns(10.0))
            .build()
            .is_err());
        assert!(WorkloadBuilder::new(a(0.1))
            .resolution(Time::ZERO)
            .build()
            .is_err());
    }
}
