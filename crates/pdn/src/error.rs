//! Error types for the PDN substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the `psnt-pdn` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdnError {
    /// A waveform was constructed from invalid breakpoints.
    InvalidWaveform(String),
    /// A circuit element value was outside its physical domain.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A grid coordinate was out of bounds.
    OutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// The iterative grid solver failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual at abort.
        residual: f64,
    },
    /// A supervised solve loop (e.g. `quasi_static_transient` driven by
    /// a context whose supervisor is armed) was stopped cooperatively.
    Interrupted(psnt_sup::Interrupt),
    /// A windowed waveform query received an empty interval.
    EmptyInterval {
        /// Window start.
        from: psnt_cells::units::Time,
        /// Window end (before `from`, or equal where a width is needed).
        to: psnt_cells::units::Time,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::InvalidWaveform(why) => write!(f, "invalid waveform: {why}"),
            PdnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            PdnError::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => {
                write!(f, "tile ({row}, {col}) outside {rows}×{cols} grid")
            }
            PdnError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(f, "grid solver did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            PdnError::Interrupted(reason) => {
                write!(f, "pdn solve interrupted: {reason}")
            }
            PdnError::EmptyInterval { from, to } => {
                write!(f, "empty waveform interval [{from}, {to}]")
            }
        }
    }
}

impl Error for PdnError {}

impl From<psnt_sup::Interrupt> for PdnError {
    fn from(reason: psnt_sup::Interrupt) -> PdnError {
        PdnError::Interrupted(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PdnError::InvalidWaveform("x".into())
            .to_string()
            .contains("x"));
        assert!(PdnError::OutOfBounds {
            row: 9,
            col: 1,
            rows: 4,
            cols: 4
        }
        .to_string()
        .contains("9"));
        assert!(PdnError::NoConvergence {
            iterations: 10,
            residual: 1.0
        }
        .to_string()
        .contains("converge"));
        assert!(PdnError::InvalidParameter {
            name: "r",
            reason: "neg".into()
        }
        .to_string()
        .contains("r"));
        assert!(PdnError::EmptyInterval {
            from: psnt_cells::units::Time::from_ns(2.0),
            to: psnt_cells::units::Time::from_ns(1.0),
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PdnError>();
    }
}
