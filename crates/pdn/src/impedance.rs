//! Frequency-domain PDN impedance analysis.
//!
//! The standard way to reason about PSN (the paper's refs. \[1\]\[2\]) is the
//! impedance profile `|Z(f)|` the die sees looking into its power
//! delivery: supply noise under a current excitation `I(f)` is
//! `V(f) = Z(f)·I(f)`, so the *worst* workload is the one whose spectrum
//! sits on the impedance peak — the package anti-resonance. This module
//! computes `Z(f)` for the [`LumpedPdn`] network analytically and locates
//! its peak, which the `xp_impedance` experiment then confirms in the
//! time domain: a periodic workload swept across frequencies droops the
//! rail most exactly at the peak.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::Frequency;
//! use psnt_pdn::impedance::impedance_magnitude;
//! use psnt_pdn::rlc::LumpedPdn;
//!
//! let pdn = LumpedPdn::typical_90nm_package();
//! let at_dc = impedance_magnitude(&pdn, Frequency::from_hz(1.0));
//! assert!((at_dc.ohms() - pdn.r().ohms()).abs() < 1e-6);
//! ```

use psnt_cells::units::{Frequency, Resistance};
use serde::{Deserialize, Serialize};

use crate::rlc::LumpedPdn;

/// Minimal complex arithmetic for the impedance math (kept private to
/// avoid a dependency for one formula).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }

    fn magnitude(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// The die-side impedance of the lumped network at frequency `f`:
/// the series branch `R + jωL` in parallel with the decap `1/jωC`.
///
/// At DC this is exactly `R`; it peaks near the tank resonance and rolls
/// off as `1/ωC` above it.
pub fn impedance_magnitude(pdn: &LumpedPdn, f: Frequency) -> Resistance {
    let w = std::f64::consts::TAU * f.hertz();
    let series = Complex::new(pdn.r().ohms(), w * pdn.l().henries());
    if w == 0.0 {
        return pdn.r();
    }
    let decap = Complex::new(0.0, -1.0 / (w * pdn.c().farads()));
    let z = series.mul(decap).div(series.add(decap));
    Resistance::from_ohms(z.magnitude())
}

/// One point of an impedance profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpedancePoint {
    /// The analysis frequency.
    pub frequency: Frequency,
    /// `|Z|` at that frequency.
    pub magnitude: Resistance,
}

/// Sweeps `|Z(f)|` over `n` log-spaced points between `lo` and `hi`.
///
/// # Panics
///
/// Panics if `n < 2` or the bounds are not positive and increasing.
pub fn impedance_profile(
    pdn: &LumpedPdn,
    lo: Frequency,
    hi: Frequency,
    n: usize,
) -> Vec<ImpedancePoint> {
    assert!(n >= 2, "need at least two sweep points");
    assert!(
        lo.hertz() > 0.0 && hi > lo,
        "bounds must be positive and increasing"
    );
    let (l0, l1) = (lo.hertz().log10(), hi.hertz().log10());
    (0..n)
        .map(|i| {
            let f = Frequency::from_hz(10f64.powf(l0 + (l1 - l0) * i as f64 / (n - 1) as f64));
            ImpedancePoint {
                frequency: f,
                magnitude: impedance_magnitude(pdn, f),
            }
        })
        .collect()
}

/// Locates the impedance peak by golden-section search inside
/// `[lo, hi]`; returns `(frequency, |Z|)`.
///
/// # Panics
///
/// Panics if the bounds are not positive and increasing.
pub fn impedance_peak(pdn: &LumpedPdn, lo: Frequency, hi: Frequency) -> (Frequency, Resistance) {
    assert!(lo.hertz() > 0.0 && hi > lo, "bad search bounds");
    // Golden-section search on -|Z| over log-frequency.
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo.hertz().log10(), hi.hertz().log10());
    let eval = |x: f64| impedance_magnitude(pdn, Frequency::from_hz(10f64.powf(x))).ohms();
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (eval(c), eval(d));
    for _ in 0..200 {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = eval(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = eval(d);
        }
        if (b - a).abs() < 1e-9 {
            break;
        }
    }
    let f = Frequency::from_hz(10f64.powf((a + b) / 2.0));
    (f, impedance_magnitude(pdn, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdn() -> LumpedPdn {
        LumpedPdn::typical_90nm_package()
    }

    #[test]
    fn dc_impedance_is_series_resistance() {
        let z = impedance_magnitude(&pdn(), Frequency::from_hz(0.0));
        assert_eq!(z, pdn().r());
        let z1 = impedance_magnitude(&pdn(), Frequency::from_hz(10.0));
        assert!((z1.ohms() - pdn().r().ohms()).abs() / pdn().r().ohms() < 1e-3);
    }

    #[test]
    fn peak_sits_at_the_tank_resonance() {
        let p = pdn();
        let (f_peak, z_peak) =
            impedance_peak(&p, Frequency::from_mhz(1.0), Frequency::from_ghz(1.0));
        let f_res = p.resonance_frequency();
        let rel = (f_peak.hertz() - f_res.hertz()).abs() / f_res.hertz();
        assert!(
            rel < 0.05,
            "peak at {:.3e} vs resonance {:.3e}",
            f_peak.hertz(),
            f_res.hertz()
        );
        // Peak magnitude ≈ Q·Z0 for an underdamped tank.
        let expect = p.q_factor() * p.characteristic_impedance().ohms();
        assert!(
            (z_peak.ohms() - expect).abs() / expect < 0.15,
            "peak {} vs Q·Z0 {:.4}",
            z_peak,
            expect
        );
    }

    #[test]
    fn rolls_off_capacitively_above_resonance() {
        let p = pdn();
        let f1 = Frequency::from_mhz(500.0);
        let f2 = Frequency::from_ghz(1.0);
        let z1 = impedance_magnitude(&p, f1).ohms();
        let z2 = impedance_magnitude(&p, f2).ohms();
        assert!(z2 < z1, "must roll off");
        // Asymptote 1/(ωC): doubling f halves |Z| (within 20 %).
        assert!((z1 / z2 - 2.0).abs() < 0.4, "ratio {}", z1 / z2);
    }

    #[test]
    fn profile_is_log_spaced_and_peaked() {
        let p = pdn();
        let profile = impedance_profile(&p, Frequency::from_mhz(1.0), Frequency::from_ghz(1.0), 61);
        assert_eq!(profile.len(), 61);
        // Log spacing: constant frequency ratio between points.
        let r0 = profile[1].frequency.hertz() / profile[0].frequency.hertz();
        let r1 = profile[40].frequency.hertz() / profile[39].frequency.hertz();
        assert!((r0 - r1).abs() / r0 < 1e-9);
        // Single interior maximum near resonance.
        let max_idx = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.magnitude.total_cmp(&b.1.magnitude))
            .map(|(i, _)| i)
            .unwrap();
        assert!(max_idx > 0 && max_idx < 60);
        let f_at_max = profile[max_idx].frequency.hertz();
        let f_res = p.resonance_frequency().hertz();
        assert!((f_at_max - f_res).abs() / f_res < 0.15);
    }

    #[test]
    fn time_domain_agrees_with_frequency_domain() {
        // Drive the network with a sinusoidal current at and off the
        // resonance: the steady-state ripple amplitude must scale with
        // |Z(f)|.
        use crate::waveform::Waveform;
        use psnt_cells::units::Time;
        let p = pdn();
        let ripple_at = |f: Frequency| -> f64 {
            let period = Time::period_of(f);
            let end = period * 60.0;
            let load = Waveform::sample_fn(Time::ZERO, end, 4000, |t| {
                1.0 + 0.5 * (std::f64::consts::TAU * f.hertz() * t.seconds()).sin()
            })
            .unwrap();
            let v = p
                .transient(&mut psnt_ctx::RunCtx::serial(), &load, period / 40.0, end)
                .unwrap();
            // Measure over the last 10 periods (steady state).
            let from = end - period * 10.0;
            v.max_over(from, end) - v.min_over(from, end)
        };
        let f_res = p.resonance_frequency();
        let on_peak = ripple_at(f_res);
        let off_peak = ripple_at(Frequency::from_hz(f_res.hertz() * 3.0));
        let z_ratio = impedance_magnitude(&p, f_res).ohms()
            / impedance_magnitude(&p, Frequency::from_hz(f_res.hertz() * 3.0)).ohms();
        let ripple_ratio = on_peak / off_peak;
        assert!(
            (ripple_ratio / z_ratio - 1.0).abs() < 0.35,
            "time-domain ratio {ripple_ratio:.2} vs |Z| ratio {z_ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn profile_needs_points() {
        impedance_profile(
            &pdn(),
            Frequency::from_mhz(1.0),
            Frequency::from_mhz(2.0),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "bad search bounds")]
    fn peak_bounds_checked() {
        impedance_peak(&pdn(), Frequency::from_mhz(2.0), Frequency::from_mhz(1.0));
    }
}
