//! Synthetic supply-noise generators.
//!
//! The paper measures its sensor against noisy `VDD-n` / `GND-n` rails
//! produced by a loaded power grid. This module synthesises the standard
//! PSN ingredients directly, for tests and experiments that need a known
//! ground truth:
//!
//! * **static IR drop** — a constant offset below nominal;
//! * **resonance** — the mid-frequency (tens–hundreds of MHz) sinusoid of
//!   the package-L / die-C tank;
//! * **di/dt droop events** — exponentially damped rings triggered by
//!   load steps;
//! * **broadband noise** — seeded uniform jitter.
//!
//! All components compose through [`SupplyNoiseBuilder`] into a single
//! [`Waveform`] in volts.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Frequency, Time, Voltage};
//! use psnt_pdn::sources::SupplyNoiseBuilder;
//!
//! let vdd = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
//!     .span(Time::ZERO, Time::from_ns(200.0))
//!     .ir_drop(Voltage::from_mv(20.0))
//!     .resonance(Frequency::from_mhz(100.0), Voltage::from_mv(30.0), 0.0)
//!     .build()?;
//! assert!(vdd.min_value() < 1.0 - 0.019);
//! # Ok::<(), psnt_pdn::error::PdnError>(())
//! ```

use std::f64::consts::TAU;

use psnt_cells::units::{Frequency, Time, Voltage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PdnError;
use crate::waveform::Waveform;

/// One additive noise component (deviation from nominal, in volts).
#[derive(Debug, Clone)]
enum Component {
    IrDrop(f64),
    Ramp {
        to: f64,
        start: Time,
        end: Time,
    },
    Resonance {
        freq_hz: f64,
        amp: f64,
        phase: f64,
    },
    Droop {
        at: Time,
        depth: f64,
        tau: Time,
        ring_hz: f64,
    },
    Overshoot {
        at: Time,
        height: f64,
        tau: Time,
    },
}

impl Component {
    fn eval(&self, t: Time) -> f64 {
        match *self {
            Component::IrDrop(v) => -v,
            Component::Ramp { to, start, end } => {
                if t <= start {
                    0.0
                } else if t >= end {
                    to
                } else {
                    to * ((t - start) / (end - start))
                }
            }
            Component::Resonance {
                freq_hz,
                amp,
                phase,
            } => amp * (TAU * freq_hz * t.seconds() + phase).sin(),
            Component::Droop {
                at,
                depth,
                tau,
                ring_hz,
            } => {
                if t < at {
                    0.0
                } else {
                    // Damped ring: full `depth` dip at the event, decaying
                    // cosine afterwards.
                    let dt = t - at;
                    let envelope = (-(dt / tau)).exp();
                    -depth * envelope * (TAU * ring_hz * dt.seconds()).cos()
                }
            }
            Component::Overshoot { at, height, tau } => {
                if t < at {
                    0.0
                } else {
                    height * (-((t - at) / tau)).exp()
                }
            }
        }
    }
}

/// Builder composing noise components onto a nominal rail voltage.
#[derive(Debug, Clone)]
pub struct SupplyNoiseBuilder {
    nominal: Voltage,
    start: Time,
    end: Time,
    resolution: Time,
    components: Vec<Component>,
    white: Option<(f64, u64)>,
}

impl SupplyNoiseBuilder {
    /// Starts a builder around a nominal rail level; the default span is
    /// 0–1 µs at 100 ps resolution.
    pub fn new(nominal: Voltage) -> SupplyNoiseBuilder {
        SupplyNoiseBuilder {
            nominal,
            start: Time::ZERO,
            end: Time::from_us(1.0),
            resolution: Time::from_ps(100.0),
            components: Vec::new(),
            white: None,
        }
    }

    /// Sets the time span of the generated waveform.
    pub fn span(mut self, start: Time, end: Time) -> SupplyNoiseBuilder {
        self.start = start;
        self.end = end;
        self
    }

    /// Sets the sampling resolution (breakpoint spacing).
    pub fn resolution(mut self, dt: Time) -> SupplyNoiseBuilder {
        self.resolution = dt;
        self
    }

    /// Adds a static IR drop (constant reduction).
    pub fn ir_drop(mut self, drop: Voltage) -> SupplyNoiseBuilder {
        self.components.push(Component::IrDrop(drop.volts()));
        self
    }

    /// Adds a linear drift reaching `delta` (signed) between `start` and
    /// `end`, held afterwards — models a slow thermal/regulator drift or a
    /// commanded DVFS ramp.
    pub fn ramp(mut self, delta: Voltage, start: Time, end: Time) -> SupplyNoiseBuilder {
        self.components.push(Component::Ramp {
            to: delta.volts(),
            start,
            end,
        });
        self
    }

    /// Adds a sustained sinusoid at the package-resonance frequency.
    pub fn resonance(
        mut self,
        freq: Frequency,
        amplitude: Voltage,
        phase: f64,
    ) -> SupplyNoiseBuilder {
        self.components.push(Component::Resonance {
            freq_hz: freq.hertz(),
            amp: amplitude.volts(),
            phase,
        });
        self
    }

    /// Adds an `L·di/dt` droop event: a dip of `depth` at `at`, recovering
    /// with time constant `tau` while ringing at `ring` (first droop lobe
    /// modelled; decaying cosine envelope).
    pub fn droop(
        mut self,
        at: Time,
        depth: Voltage,
        tau: Time,
        ring: Frequency,
    ) -> SupplyNoiseBuilder {
        self.components.push(Component::Droop {
            at,
            depth: depth.volts(),
            tau,
            ring_hz: ring.hertz(),
        });
        self
    }

    /// Adds a recovery overshoot (positive exponential pulse) — what a
    /// sudden load *release* does to the rail.
    pub fn overshoot(mut self, at: Time, height: Voltage, tau: Time) -> SupplyNoiseBuilder {
        self.components.push(Component::Overshoot {
            at,
            height: height.volts(),
            tau,
        });
        self
    }

    /// Adds seeded uniform broadband noise in `[-amplitude, +amplitude]`.
    pub fn white_noise(mut self, amplitude: Voltage, seed: u64) -> SupplyNoiseBuilder {
        self.white = Some((amplitude.volts(), seed));
        self
    }

    /// Generates the composite waveform.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for a non-positive span or
    /// resolution.
    pub fn build(self) -> Result<Waveform, PdnError> {
        if self.end <= self.start {
            return Err(PdnError::InvalidParameter {
                name: "span",
                reason: format!("end {} must exceed start {}", self.end, self.start),
            });
        }
        if self.resolution <= Time::ZERO {
            return Err(PdnError::InvalidParameter {
                name: "resolution",
                reason: "must be positive".into(),
            });
        }
        let n = ((self.end - self.start) / self.resolution).ceil() as usize;
        let n = n.max(1);
        let mut rng = self
            .white
            .map(|(amp, seed)| (amp, StdRng::seed_from_u64(seed)));
        let nominal = self.nominal.volts();
        let components = self.components;
        Waveform::sample_fn(self.start, self.end, n, move |t| {
            let mut v = nominal;
            for c in &components {
                v += c.eval(t);
            }
            if let Some((amp, rng)) = rng.as_mut() {
                v += rng.gen_range(-*amp..=*amp);
            }
            v
        })
    }
}

/// A ground-bounce waveform: nominal 0 V plus a *positive* resonance and
/// optional bounce events (the LOW-SENSE array of the paper measures this
/// rail). Returns volts above true ground.
///
/// # Errors
///
/// Propagates waveform construction failures.
pub fn ground_bounce(
    span_end: Time,
    resonance_freq: Frequency,
    amplitude: Voltage,
    seed: u64,
) -> Result<Waveform, PdnError> {
    SupplyNoiseBuilder::new(Voltage::ZERO)
        .span(Time::ZERO, span_end)
        .resonance(resonance_freq, amplitude, 0.0)
        .white_noise(amplitude * 0.1, seed)
        .build()
        // Ground bounce is referenced upward: |deviation| above 0 V.
        .map(|w| w.map(f64::abs))
}

/// A step between two supply levels at `at` — the simplest Fig. 3-style
/// stimulus (first measure at `v0`, second at `v1`).
///
/// # Errors
///
/// Returns [`PdnError::InvalidParameter`] when `at` is not inside
/// `(0, end)`.
pub fn supply_step(v0: Voltage, v1: Voltage, at: Time, end: Time) -> Result<Waveform, PdnError> {
    if at <= Time::ZERO || at >= end {
        return Err(PdnError::InvalidParameter {
            name: "at",
            reason: format!("step instant {at} must lie inside (0, {end})"),
        });
    }
    // A 1 ps transition edge keeps the waveform strictly increasing in time.
    let eps = Time::from_ps(1.0);
    Waveform::from_points(vec![
        (Time::ZERO, v0.volts()),
        (at, v0.volts()),
        (at + eps, v1.volts()),
        (end, v1.volts()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(t: f64) -> Time {
        Time::from_ns(t)
    }

    fn mv(v: f64) -> Voltage {
        Voltage::from_mv(v)
    }

    #[test]
    fn ir_drop_shifts_mean() {
        let w = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, ns(100.0))
            .ir_drop(mv(25.0))
            .build()
            .unwrap();
        assert!((w.sample(ns(50.0)) - 0.975).abs() < 1e-12);
        assert!(w.is_constant() || w.len() > 1);
    }

    #[test]
    fn resonance_oscillates_around_nominal() {
        let w = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, ns(100.0))
            .resolution(Time::from_ps(50.0))
            .resonance(Frequency::from_mhz(100.0), mv(30.0), 0.0)
            .build()
            .unwrap();
        assert!(w.max_value() > 1.025);
        assert!(w.min_value() < 0.975);
        let mean = w.mean_over(Time::ZERO, ns(100.0)); // 10 full periods
        assert!((mean - 1.0).abs() < 2e-3, "mean {mean}");
    }

    #[test]
    fn droop_event_dips_then_recovers() {
        let w = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, ns(200.0))
            .resolution(Time::from_ps(100.0))
            .droop(ns(50.0), mv(80.0), ns(10.0), Frequency::from_mhz(150.0))
            .build()
            .unwrap();
        // Before the event: clean nominal.
        assert!((w.sample(ns(40.0)) - 1.0).abs() < 1e-9);
        // Right after: a significant dip.
        assert!(w.min_over(ns(50.0), ns(60.0)) < 0.94);
        // Long after: recovered.
        assert!((w.sample(ns(190.0)) - 1.0).abs() < 0.005);
    }

    #[test]
    fn overshoot_rises_then_recovers() {
        let w = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, ns(200.0))
            .overshoot(ns(50.0), mv(50.0), ns(15.0))
            .build()
            .unwrap();
        assert!(w.max_over(ns(50.0), ns(60.0)) > 1.03);
        assert!((w.sample(ns(195.0)) - 1.0).abs() < 0.005);
    }

    #[test]
    fn ramp_reaches_target_and_holds() {
        let w = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, ns(100.0))
            .ramp(mv(-100.0), ns(20.0), ns(60.0))
            .build()
            .unwrap();
        assert!((w.sample(ns(10.0)) - 1.0).abs() < 1e-9);
        assert!((w.sample(ns(40.0)) - 0.95).abs() < 2e-3);
        assert!((w.sample(ns(80.0)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn white_noise_is_seeded_and_bounded() {
        let build = |seed| {
            SupplyNoiseBuilder::new(Voltage::from_v(1.0))
                .span(Time::ZERO, ns(100.0))
                .white_noise(mv(10.0), seed)
                .build()
                .unwrap()
        };
        let a = build(1);
        let b = build(1);
        let c = build(2);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.max_value() <= 1.010 + 1e-12);
        assert!(a.min_value() >= 0.990 - 1e-12);
    }

    #[test]
    fn components_compose_additively() {
        let w = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, ns(100.0))
            .ir_drop(mv(20.0))
            .ramp(mv(-30.0), ns(0.0), ns(100.0))
            .build()
            .unwrap();
        // At the end: 1.0 − 0.02 − 0.03.
        assert!((w.sample(ns(100.0)) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn invalid_spans_rejected() {
        assert!(SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(ns(10.0), ns(10.0))
            .build()
            .is_err());
        assert!(SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .resolution(Time::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn supply_step_profile() {
        let w = supply_step(
            Voltage::from_v(1.0),
            Voltage::from_v(0.9),
            ns(50.0),
            ns(100.0),
        )
        .unwrap();
        assert_eq!(w.sample(ns(25.0)), 1.0);
        assert_eq!(w.sample(ns(75.0)), 0.9);
        assert!(supply_step(
            Voltage::from_v(1.0),
            Voltage::from_v(0.9),
            Time::ZERO,
            ns(100.0)
        )
        .is_err());
        assert!(supply_step(
            Voltage::from_v(1.0),
            Voltage::from_v(0.9),
            ns(100.0),
            ns(100.0)
        )
        .is_err());
    }

    #[test]
    fn ground_bounce_non_negative() {
        let w = ground_bounce(ns(100.0), Frequency::from_mhz(120.0), mv(40.0), 3).unwrap();
        assert!(w.min_value() >= 0.0);
        assert!(w.max_value() > 0.03);
    }
}
