//! # psnt-pdn — power-delivery and supply-noise substrate
//!
//! The analog environment of the `psn-thermometer` workspace
//! (reproduction of Graziano & Vittori, IEEE SOCC 2009). The sensor under
//! reproduction observes noisy `VDD-n(t)` / `GND-n(t)` rails; this crate
//! produces them:
//!
//! * [`waveform`] — piecewise-linear analog waveforms (the exchange type
//!   between PDN models and sensors);
//! * [`sources`] — composable synthetic noise (IR drop, package
//!   resonance, di/dt droops, broadband noise) with known ground truth;
//! * [`rlc`] — a lumped series-R-L / shunt-C package+die model integrated
//!   with RK4, for physically derived waveforms;
//! * [`grid`] — a 2-D resistive on-die grid for spatial IR-drop maps (the
//!   scan-chain experiments);
//! * [`impedance`] — frequency-domain |Z(f)| analysis of the lumped
//!   network (the anti-resonance that makes some workloads worst-case);
//! * [`workload`] — CUT current-draw generators that drive the models.
//!
//! # Example: physically derived supply noise
//!
//! ```
//! use psnt_cells::units::{Current, Frequency, Time};
//! use psnt_pdn::rlc::LumpedPdn;
//! use psnt_pdn::workload::resonant_loop;
//!
//! let pdn = LumpedPdn::typical_90nm_package();
//! // A hot loop pulsing current near the PDN resonance…
//! let load = resonant_loop(
//!     Current::from_a(0.2), Current::from_a(1.5),
//!     pdn.resonance_frequency(), Time::from_ns(500.0), 42,
//! )?;
//! // …produces a strongly oscillating on-die supply.
//! let mut ctx = psnt_ctx::RunCtx::serial();
//! let vdd = pdn.transient(&mut ctx, &load, Time::from_ps(200.0), Time::from_ns(500.0))?;
//! assert!(vdd.max_value() - vdd.min_value() > 0.02);
//! # Ok::<(), psnt_pdn::error::PdnError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod grid;
pub mod impedance;
pub mod rlc;
pub mod sources;
pub mod waveform;
pub mod workload;

pub use error::PdnError;
pub use grid::{GridFactor, GridSolution, PowerGrid};
pub use impedance::{impedance_magnitude, impedance_peak, impedance_profile, ImpedancePoint};
pub use rlc::LumpedPdn;
pub use sources::{ground_bounce, supply_step, SupplyNoiseBuilder};
pub use waveform::Waveform;
pub use workload::{resonant_loop, WorkloadBuilder};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Waveform>();
        assert_send_sync::<crate::LumpedPdn>();
        assert_send_sync::<crate::PowerGrid>();
    }
}
