//! Two-dimensional on-die power grid (IR-drop map).
//!
//! The paper's headline architectural claim is that sensor arrays "can be
//! multiplied, so that measures in many points of the CUT are possible" —
//! a PSN *scan chain*. Exercising that requires supply voltages that
//! differ from point to point. [`PowerGrid`] models the on-die grid as a
//! `rows × cols` resistive mesh fed from pad nodes, with a load current
//! per tile; solving the nodal equations gives each tile's local supply.
//!
//! The solver is a Gauss–Seidel relaxation with successive
//! over-relaxation — entirely adequate for the few-hundred-node grids the
//! experiments use, with a convergence guard returning
//! [`PdnError::NoConvergence`] otherwise.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Resistance, Voltage};
//! use psnt_pdn::grid::PowerGrid;
//!
//! // A 4×4 grid fed from the four corners.
//! let grid = PowerGrid::new(4, 4, Voltage::from_v(1.0),
//!     Resistance::from_milliohms(40.0), Resistance::from_milliohms(10.0),
//!     vec![(0, 0), (0, 3), (3, 0), (3, 3)])?;
//! // 100 mA drawn at the centre tiles.
//! let mut loads = vec![0.0; 16];
//! loads[5] = 0.1; loads[6] = 0.1; loads[9] = 0.1; loads[10] = 0.1;
//! let v = grid.solve(&loads)?;
//! // Centre tiles sag more than the corners next to the pads.
//! assert!(v[5] < v[0]);
//! # Ok::<(), psnt_pdn::error::PdnError>(())
//! ```

use psnt_cells::units::{Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::error::PdnError;
use crate::waveform::Waveform;

/// A rectangular resistive power grid with pad connections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerGrid {
    rows: usize,
    cols: usize,
    v_pad: Voltage,
    /// Conductance of each mesh segment between adjacent tiles.
    g_mesh: f64,
    /// Conductance from a pad tile up to the package plane.
    g_pad: f64,
    /// Pad tile indices (row-major).
    pads: Vec<usize>,
}

impl PowerGrid {
    /// Creates a grid.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for an empty grid,
    /// non-positive resistances or no pads, and [`PdnError::OutOfBounds`]
    /// for pad coordinates outside the grid.
    pub fn new(
        rows: usize,
        cols: usize,
        v_pad: Voltage,
        r_mesh: Resistance,
        r_pad: Resistance,
        pads: Vec<(usize, usize)>,
    ) -> Result<PowerGrid, PdnError> {
        if rows == 0 || cols == 0 {
            return Err(PdnError::InvalidParameter {
                name: "rows/cols",
                reason: "grid must be non-empty".into(),
            });
        }
        if r_mesh.ohms() <= 0.0 || r_pad.ohms() <= 0.0 {
            return Err(PdnError::InvalidParameter {
                name: "r_mesh/r_pad",
                reason: "resistances must be positive".into(),
            });
        }
        if pads.is_empty() {
            return Err(PdnError::InvalidParameter {
                name: "pads",
                reason: "at least one pad connection required".into(),
            });
        }
        let mut pad_idx = Vec::with_capacity(pads.len());
        for (r, c) in pads {
            if r >= rows || c >= cols {
                return Err(PdnError::OutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
            pad_idx.push(r * cols + c);
        }
        pad_idx.sort_unstable();
        pad_idx.dedup();
        Ok(PowerGrid {
            rows,
            cols,
            v_pad,
            g_mesh: 1.0 / r_mesh.ohms(),
            g_pad: 1.0 / r_pad.ohms(),
            pads: pad_idx,
        })
    }

    /// A square grid with pads on all four corners — the configuration the
    /// scan-chain experiments use.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn corner_fed(
        side: usize,
        v_pad: Voltage,
        r_mesh: Resistance,
        r_pad: Resistance,
    ) -> Result<PowerGrid, PdnError> {
        let last = side.saturating_sub(1);
        PowerGrid::new(
            side,
            side,
            v_pad,
            r_mesh,
            r_pad,
            vec![(0, 0), (0, last), (last, 0), (last, last)],
        )
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// The pad (package-side) voltage.
    pub fn v_pad(&self) -> Voltage {
        self.v_pad
    }

    /// Converts a (row, col) coordinate to a tile index.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::OutOfBounds`] outside the grid.
    pub fn tile_index(&self, row: usize, col: usize) -> Result<usize, PdnError> {
        if row >= self.rows || col >= self.cols {
            return Err(PdnError::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(row * self.cols + col)
    }

    fn neighbours(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = (idx / self.cols, idx % self.cols);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(idx - self.cols);
        }
        if r + 1 < self.rows {
            out.push(idx + self.cols);
        }
        if c > 0 {
            out.push(idx - 1);
        }
        if c + 1 < self.cols {
            out.push(idx + 1);
        }
        out.into_iter()
    }

    /// The tile adjacency flattened to CSR (offsets + neighbour
    /// indices), built once per solve so the relaxation sweep performs
    /// no per-node allocation. Order matches [`PowerGrid::neighbours`]
    /// (up, down, left, right) so the accumulated sums are bit-identical
    /// to the iterator form.
    fn neighbour_csr(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.tiles();
        let mut off = Vec::with_capacity(n + 1);
        let mut data = Vec::with_capacity(4 * n);
        off.push(0u32);
        for i in 0..n {
            data.extend(self.neighbours(i).map(|nb| nb as u32));
            off.push(data.len() as u32);
        }
        (off, data)
    }

    /// The Gauss–Seidel/SOR sweep shared by [`PowerGrid::solve`] and
    /// [`PowerGrid::solve_from`]: starts from `v0` (pad voltage
    /// everywhere when `None`) and returns the solution together with
    /// the iteration count, so tests can pin the warm-start advantage.
    fn relax(&self, v0: Option<&[f64]>, loads: &[f64]) -> Result<(Vec<f64>, usize), PdnError> {
        if loads.len() != self.tiles() {
            return Err(PdnError::InvalidParameter {
                name: "loads",
                reason: format!(
                    "expected {} tile currents, got {}",
                    self.tiles(),
                    loads.len()
                ),
            });
        }
        let n = self.tiles();
        let vp = self.v_pad.volts();
        let mut v = match v0 {
            Some(prior) => {
                if prior.len() != n {
                    return Err(PdnError::InvalidParameter {
                        name: "prior",
                        reason: format!("expected {} tile voltages, got {}", n, prior.len()),
                    });
                }
                prior.to_vec()
            }
            None => vec![vp; n],
        };
        let (off, adj) = self.neighbour_csr();
        let is_pad: Vec<bool> = {
            let mut m = vec![false; n];
            for &p in &self.pads {
                m[p] = true;
            }
            m
        };

        const MAX_ITER: usize = 20_000;
        const TOL: f64 = 1e-12;
        const OMEGA: f64 = 1.6; // SOR factor for a 2-D Laplacian

        for iter in 0..MAX_ITER {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let mut g_sum = 0.0;
                let mut rhs = -loads[i];
                for &nb in &adj[off[i] as usize..off[i + 1] as usize] {
                    g_sum += self.g_mesh;
                    rhs += self.g_mesh * v[nb as usize];
                }
                if is_pad[i] {
                    g_sum += self.g_pad;
                    rhs += self.g_pad * vp;
                }
                let v_new = rhs / g_sum;
                let relaxed = v[i] + OMEGA * (v_new - v[i]);
                max_delta = max_delta.max((relaxed - v[i]).abs());
                v[i] = relaxed;
            }
            if max_delta < TOL {
                return Ok((v, iter + 1));
            }
        }
        Err(PdnError::NoConvergence {
            iterations: MAX_ITER,
            residual: 0.0,
        })
    }

    /// Solves the DC nodal equations for the given per-tile load currents
    /// (amperes, row-major) and returns per-tile voltages (volts).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] when `loads.len()` does not
    /// match the tile count and [`PdnError::NoConvergence`] if relaxation
    /// stalls.
    pub fn solve(&self, loads: &[f64]) -> Result<Vec<f64>, PdnError> {
        self.relax(None, loads).map(|(v, _)| v)
    }

    /// Like [`PowerGrid::solve`], but warm-started from a previous
    /// solution — typically the neighbouring point of a sweep, whose
    /// voltages are already close, so the relaxation converges in far
    /// fewer iterations. The result satisfies the same `1e-12`
    /// convergence tolerance as a cold [`PowerGrid::solve`].
    ///
    /// # Errors
    ///
    /// As [`PowerGrid::solve`], plus [`PdnError::InvalidParameter`] when
    /// `prior.len()` does not match the tile count.
    pub fn solve_from(&self, prior: &[f64], loads: &[f64]) -> Result<Vec<f64>, PdnError> {
        self.relax(Some(prior), loads).map(|(v, _)| v)
    }

    /// Quasi-static transient: solves the grid at every sample instant of
    /// the per-tile load waveforms (amperes) and returns one supply
    /// [`Waveform`] per tile. Valid when the grid's own RC time constants
    /// are far below the waveform time scale — true for on-die resistive
    /// meshes against tens-of-ns PSN.
    ///
    /// When the context carries an observer, the number of grid solves
    /// accumulates in its `pdn.grid_solves` counter; the waveforms are
    /// identical with and without an observer.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerGrid::solve`] failures and waveform validation.
    pub fn quasi_static_transient(
        &self,
        ctx: &mut psnt_ctx::RunCtx<'_>,
        loads: &[Waveform],
        start: Time,
        end: Time,
        dt: Time,
    ) -> Result<Vec<Waveform>, PdnError> {
        if loads.len() != self.tiles() {
            return Err(PdnError::InvalidParameter {
                name: "loads",
                reason: format!(
                    "expected {} tile waveforms, got {}",
                    self.tiles(),
                    loads.len()
                ),
            });
        }
        if dt <= Time::ZERO || end <= start {
            return Err(PdnError::InvalidParameter {
                name: "dt/end",
                reason: "need positive dt and end > start".into(),
            });
        }
        let steps = ((end - start) / dt).ceil() as usize;
        let mut per_tile: Vec<Vec<(Time, f64)>> = vec![Vec::with_capacity(steps + 1); self.tiles()];
        // Each step warm-starts from the previous instant's solution:
        // adjacent samples differ by one dt of load drift, so the
        // relaxation converges in a fraction of the cold iterations.
        let mut prior: Option<Vec<f64>> = None;
        // Iteration counts are pure numerics (no clocks, no workers),
        // so the profile is deterministic; collected locally and folded
        // once so the detached path stays allocation-free.
        let mut warm_iters: Vec<usize> = Vec::new();
        let observed = ctx.has_observer();
        for k in 0..=steps {
            let t = start + dt * k as f64;
            let instantaneous: Vec<f64> = loads.iter().map(|w| w.sample(t)).collect();
            let (v, iters) = self.relax(prior.as_deref(), &instantaneous)?;
            if observed && prior.is_some() {
                warm_iters.push(iters);
            }
            for (tile, &vi) in v.iter().enumerate() {
                per_tile[tile].push((t, vi));
            }
            prior = Some(v);
        }
        if let Some(obs) = ctx.observer() {
            obs.metrics.counter_add("pdn.grid_solves", steps as u64 + 1);
            let hist = obs.metrics.histogram(
                "pdn.warm_start_iters",
                &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0],
            );
            for iters in warm_iters {
                obs.metrics.record(hist, iters as f64);
            }
        }
        per_tile.into_iter().map(Waveform::from_points).collect()
    }

    /// The worst (lowest) tile voltage for a load pattern, with its tile
    /// index — the spatial IR-drop hotspot.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerGrid::solve`] failures.
    pub fn hotspot(&self, loads: &[f64]) -> Result<(usize, f64), PdnError> {
        let v = self.solve(loads)?;
        let (idx, &worst) = v
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("grid has at least one tile");
        Ok((idx, worst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(side: usize) -> PowerGrid {
        PowerGrid::corner_fed(
            side,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates() {
        let v = Voltage::from_v(1.0);
        let r = Resistance::from_milliohms(40.0);
        assert!(PowerGrid::new(0, 4, v, r, r, vec![(0, 0)]).is_err());
        assert!(PowerGrid::new(4, 4, v, Resistance::from_ohms(0.0), r, vec![(0, 0)]).is_err());
        assert!(PowerGrid::new(4, 4, v, r, r, vec![]).is_err());
        assert!(matches!(
            PowerGrid::new(4, 4, v, r, r, vec![(4, 0)]),
            Err(PdnError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn zero_load_gives_pad_voltage_everywhere() {
        let grid = mk(5);
        let v = grid.solve(&[0.0; 25]).unwrap();
        for &vi in &v {
            assert!((vi - 1.0).abs() < 1e-9, "{vi}");
        }
    }

    #[test]
    fn wrong_load_length_rejected() {
        let grid = mk(3);
        assert!(grid.solve(&[0.0; 4]).is_err());
    }

    #[test]
    fn single_tile_grid_is_ohms_law() {
        let grid = PowerGrid::new(
            1,
            1,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
            vec![(0, 0)],
        )
        .unwrap();
        let v = grid.solve(&[2.0]).unwrap();
        // Only the pad resistance carries the 2 A: drop = 20 mV.
        assert!((v[0] - 0.98).abs() < 1e-9, "{}", v[0]);
    }

    #[test]
    fn centre_load_sags_centre_most() {
        let grid = mk(5);
        let mut loads = vec![0.0; 25];
        loads[12] = 0.5; // centre tile
        let v = grid.solve(&loads).unwrap();
        let (hot, v_hot) = grid.hotspot(&loads).unwrap();
        assert_eq!(hot, 12);
        assert!(v_hot < v[0]);
        assert!(v_hot < 1.0);
        // Symmetry: the four corners see identical voltages.
        assert!((v[0] - v[4]).abs() < 1e-6);
        assert!((v[0] - v[20]).abs() < 1e-6);
        assert!((v[0] - v[24]).abs() < 1e-6);
    }

    #[test]
    fn current_conservation() {
        // Sum of pad currents equals total load current.
        let grid = mk(4);
        let mut loads = vec![0.01; 16];
        loads[5] = 0.3;
        let v = grid.solve(&loads).unwrap();
        let g_pad = 1.0 / 0.010;
        let pad_tiles = [0usize, 3, 12, 15];
        let injected: f64 = pad_tiles.iter().map(|&p| g_pad * (1.0 - v[p])).sum();
        let drawn: f64 = loads.iter().sum();
        assert!(
            (injected - drawn).abs() < 1e-6,
            "injected {injected} vs drawn {drawn}"
        );
    }

    #[test]
    fn heavier_load_monotonically_lowers_voltages() {
        let grid = mk(4);
        let light = grid.solve(&[0.05; 16]).unwrap();
        let heavy = grid.solve(&[0.10; 16]).unwrap();
        for (l, h) in light.iter().zip(&heavy) {
            assert!(h < l);
        }
    }

    #[test]
    fn warm_start_converges_faster_and_matches_cold() {
        let grid = mk(8);
        let mut loads = vec![0.01; 64];
        loads[27] = 0.2;
        let (base, _) = grid.relax(None, &loads).unwrap();
        // A neighbouring sweep point: the centre draw drifts by 10 %.
        let mut next = loads.clone();
        next[27] = 0.22;
        let (cold, cold_iters) = grid.relax(None, &next).unwrap();
        let (warm, warm_iters) = grid.relax(Some(&base), &next).unwrap();
        // The asymptotic SOR rate bounds the gain at a deep 1e-12
        // tolerance; the warm start still strictly shortens the run
        // (and collapses it for the small per-dt drifts of a transient).
        assert!(
            warm_iters < cold_iters,
            "warm start took {warm_iters} iterations vs {cold_iters} cold"
        );
        for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
            assert!((w - c).abs() < 1e-9, "tile {i}: warm {w} vs cold {c}");
        }
        // Re-solving the same point from its own solution is ~free.
        let (_, again) = grid.relax(Some(&cold), &next).unwrap();
        assert!(again <= 2, "self warm start took {again} iterations");
    }

    #[test]
    fn solve_from_validates_prior_length() {
        let grid = mk(3);
        assert!(grid.solve_from(&[1.0; 4], &[0.0; 9]).is_err());
        assert!(grid.solve_from(&[1.0; 9], &[0.0; 4]).is_err());
    }

    #[test]
    fn quasi_static_transient_tracks_load() {
        let grid = mk(3);
        let ns = Time::from_ns;
        // Tile 4 (centre) ramps its draw; others idle.
        let mut loads = vec![Waveform::constant(0.0); 9];
        loads[4] = Waveform::from_points(vec![(ns(0.0), 0.0), (ns(100.0), 0.4)]).unwrap();
        let waves = grid
            .quasi_static_transient(
                &mut psnt_ctx::RunCtx::serial(),
                &loads,
                Time::ZERO,
                ns(100.0),
                ns(10.0),
            )
            .unwrap();
        assert_eq!(waves.len(), 9);
        // Centre tile droops over time.
        assert!(waves[4].sample(ns(100.0)) < waves[4].sample(ns(0.0)));
        // And droops more than a corner tile at the end.
        assert!(waves[4].sample(ns(100.0)) < waves[0].sample(ns(100.0)));
    }

    #[test]
    fn transient_argument_validation() {
        let grid = mk(2);
        let loads = vec![Waveform::constant(0.0); 4];
        assert!(grid
            .quasi_static_transient(
                &mut psnt_ctx::RunCtx::serial(),
                &loads,
                Time::ZERO,
                Time::ZERO,
                Time::from_ns(1.0)
            )
            .is_err());
        assert!(grid
            .quasi_static_transient(
                &mut psnt_ctx::RunCtx::serial(),
                &loads[..2],
                Time::ZERO,
                Time::from_ns(10.0),
                Time::from_ns(1.0)
            )
            .is_err());
    }

    #[test]
    fn tile_index_bounds() {
        let grid = mk(3);
        assert_eq!(grid.tile_index(1, 2).unwrap(), 5);
        assert!(grid.tile_index(3, 0).is_err());
        assert_eq!(grid.tiles(), 9);
        assert_eq!(grid.rows(), 3);
        assert_eq!(grid.cols(), 3);
    }
}
