//! Two-dimensional on-die power grid (IR-drop map).
//!
//! The paper's headline architectural claim is that sensor arrays "can be
//! multiplied, so that measures in many points of the CUT are possible" —
//! a PSN *scan chain*. Exercising that requires supply voltages that
//! differ from point to point. [`PowerGrid`] models the on-die grid as a
//! `rows × cols` resistive mesh fed from pad nodes, with a load current
//! per tile; solving the nodal equations gives each tile's local supply.
//!
//! Two solvers share the grid:
//!
//! * [`PowerGrid::solve`] / [`PowerGrid::solve_from`] — Gauss–Seidel
//!   relaxation with successive over-relaxation, entirely adequate for
//!   the few-hundred-node grids the paper experiments use, with a
//!   convergence guard returning [`PdnError::NoConvergence`] otherwise;
//! * [`PowerGrid::solve_sparse`] / [`PowerGrid::solve_delta`] — a direct
//!   path over a banded sparse Cholesky factorization of the (fixed)
//!   conductance matrix ([`GridFactor`], factored **once per grid** and
//!   cached), sized for chip-scale workload campaigns: a 40×40
//!   (1,600-node) grid solves in microseconds per cycle, and
//!   [`PowerGrid::solve_delta`] re-solves from a prior [`GridSolution`]
//!   touching only the load entries that changed — O(changed loads)
//!   forward-substitution work instead of a full relaxation sweep.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Resistance, Voltage};
//! use psnt_pdn::grid::PowerGrid;
//!
//! // A 4×4 grid fed from the four corners.
//! let grid = PowerGrid::new(4, 4, Voltage::from_v(1.0),
//!     Resistance::from_milliohms(40.0), Resistance::from_milliohms(10.0),
//!     vec![(0, 0), (0, 3), (3, 0), (3, 3)])?;
//! // 100 mA drawn at the centre tiles.
//! let mut loads = vec![0.0; 16];
//! loads[5] = 0.1; loads[6] = 0.1; loads[9] = 0.1; loads[10] = 0.1;
//! let v = grid.solve(&loads)?;
//! // Centre tiles sag more than the corners next to the pads.
//! assert!(v[5] < v[0]);
//! # Ok::<(), psnt_pdn::error::PdnError>(())
//! ```

use std::sync::OnceLock;

use psnt_cells::units::{Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::error::PdnError;
use crate::waveform::Waveform;

/// Per-grid derived data shared by every solve: the tile adjacency
/// flattened to CSR (offsets + neighbour indices, ordered
/// up/down/left/right to match [`PowerGrid::neighbours`]) plus the pad
/// mask. Built lazily **once per grid** — not once per solve chain — so
/// repeated solves against the same grid perform no per-call setup.
#[derive(Debug, Clone)]
struct GridCache {
    off: Vec<u32>,
    adj: Vec<u32>,
    is_pad: Vec<bool>,
}

/// A banded Cholesky factorization `K = L·Lᵀ` of a grid's conductance
/// matrix.
///
/// Under row-major tile numbering the conductance matrix of a
/// rectangular mesh is banded with semi-bandwidth `cols` (the vertical
/// mesh segment couples tile `i` to tile `i − cols`); Cholesky fill-in
/// stays inside that band, so the factor is stored as a dense band of
/// `n × (band + 1)` entries. Factoring costs `O(n · band²)` once per
/// grid; each subsequent [`PowerGrid::solve_sparse`] is a direct
/// `O(n · band)` substitution pair — for the 40×40 campaign grid that
/// is ~130 k flops per solve versus hundreds of full sweeps for a cold
/// Gauss–Seidel relaxation.
#[derive(Debug, Clone)]
pub struct GridFactor {
    n: usize,
    /// Semi-bandwidth of `K`: `cols` for a multi-row grid, 1 for a
    /// single-row grid, 0 for the degenerate 1×1 grid.
    band: usize,
    /// Lower band of `L`, row-major: entry `(i, j)` with
    /// `i − band ≤ j ≤ i` lives at `l[i·(band+1) + (j + band − i)]`.
    l: Vec<f64>,
}

impl GridFactor {
    /// Number of grid nodes the factorization covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Semi-bandwidth of the factored conductance matrix.
    pub fn bandwidth(&self) -> usize {
        self.band
    }

    /// Solves `K·x = b` in place. `first` is the index of the first
    /// non-zero entry of `b`: the forward substitution `L·y = b` leaves
    /// every row before it untouched (their `y` is exactly zero), which
    /// is what makes a delta solve's forward pass proportional to the
    /// span of changed loads rather than the grid size.
    fn solve_in_place(&self, b: &mut [f64], first: usize) {
        let w = self.band;
        let stride = w + 1;
        for i in first..self.n {
            let lo = i.saturating_sub(w);
            let mut s = b[i];
            for (j, &bj) in b.iter().enumerate().take(i).skip(lo) {
                s -= self.l[i * stride + (j + w - i)] * bj;
            }
            b[i] = s / self.l[i * stride + w];
        }
        for i in (0..self.n).rev() {
            let hi = (i + w + 1).min(self.n);
            let mut s = b[i];
            for (j, &bj) in b.iter().enumerate().take(hi).skip(i + 1) {
                s -= self.l[j * stride + (i + w - j)] * bj;
            }
            b[i] = s / self.l[i * stride + w];
        }
    }
}

/// A direct-solver solution: per-tile voltages together with the load
/// vector that produced them, so [`PowerGrid::solve_delta`] can compute
/// the right-hand-side delta from the changed entries alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSolution {
    voltages: Vec<f64>,
    loads: Vec<f64>,
}

impl GridSolution {
    /// Per-tile voltages (volts, row-major).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The per-tile load currents (amperes) this solution corresponds to.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Consumes the solution, returning the voltage vector.
    pub fn into_voltages(self) -> Vec<f64> {
        self.voltages
    }

    /// The worst (lowest) tile voltage with its tile index — the spatial
    /// IR-drop hotspot of this solution.
    pub fn hotspot(&self) -> (usize, f64) {
        let (idx, &worst) = self
            .voltages
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("grid has at least one tile");
        (idx, worst)
    }
}

/// A rectangular resistive power grid with pad connections.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerGrid {
    rows: usize,
    cols: usize,
    v_pad: Voltage,
    /// Conductance of each mesh segment between adjacent tiles.
    g_mesh: f64,
    /// Conductance from a pad tile up to the package plane.
    g_pad: f64,
    /// Pad tile indices (row-major).
    pads: Vec<usize>,
    /// Adjacency CSR + pad mask, derived from the config fields above.
    #[serde(skip)]
    cache: OnceLock<GridCache>,
    /// Banded Cholesky factor of the conductance matrix, built on first
    /// [`PowerGrid::factor`] / [`PowerGrid::solve_sparse`] use.
    #[serde(skip)]
    factor: OnceLock<GridFactor>,
}

// The lazy caches are derived state: two grids are equal iff their
// configuration is, regardless of which solves have run on each.
impl PartialEq for PowerGrid {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.v_pad == other.v_pad
            && self.g_mesh == other.g_mesh
            && self.g_pad == other.g_pad
            && self.pads == other.pads
    }
}

impl PowerGrid {
    /// Creates a grid.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for an empty grid,
    /// non-positive resistances or no pads, and [`PdnError::OutOfBounds`]
    /// for pad coordinates outside the grid.
    pub fn new(
        rows: usize,
        cols: usize,
        v_pad: Voltage,
        r_mesh: Resistance,
        r_pad: Resistance,
        pads: Vec<(usize, usize)>,
    ) -> Result<PowerGrid, PdnError> {
        if rows == 0 || cols == 0 {
            return Err(PdnError::InvalidParameter {
                name: "rows/cols",
                reason: "grid must be non-empty".into(),
            });
        }
        if r_mesh.ohms() <= 0.0 || r_pad.ohms() <= 0.0 {
            return Err(PdnError::InvalidParameter {
                name: "r_mesh/r_pad",
                reason: "resistances must be positive".into(),
            });
        }
        if pads.is_empty() {
            return Err(PdnError::InvalidParameter {
                name: "pads",
                reason: "at least one pad connection required".into(),
            });
        }
        let mut pad_idx = Vec::with_capacity(pads.len());
        for (r, c) in pads {
            if r >= rows || c >= cols {
                return Err(PdnError::OutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
            pad_idx.push(r * cols + c);
        }
        pad_idx.sort_unstable();
        pad_idx.dedup();
        Ok(PowerGrid {
            rows,
            cols,
            v_pad,
            g_mesh: 1.0 / r_mesh.ohms(),
            g_pad: 1.0 / r_pad.ohms(),
            pads: pad_idx,
            cache: OnceLock::new(),
            factor: OnceLock::new(),
        })
    }

    /// A square grid with pads on all four corners — the configuration the
    /// scan-chain experiments use.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn corner_fed(
        side: usize,
        v_pad: Voltage,
        r_mesh: Resistance,
        r_pad: Resistance,
    ) -> Result<PowerGrid, PdnError> {
        let last = side.saturating_sub(1);
        PowerGrid::new(
            side,
            side,
            v_pad,
            r_mesh,
            r_pad,
            vec![(0, 0), (0, last), (last, 0), (last, last)],
        )
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// The pad (package-side) voltage.
    pub fn v_pad(&self) -> Voltage {
        self.v_pad
    }

    /// Converts a (row, col) coordinate to a tile index.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::OutOfBounds`] outside the grid.
    pub fn tile_index(&self, row: usize, col: usize) -> Result<usize, PdnError> {
        if row >= self.rows || col >= self.cols {
            return Err(PdnError::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(row * self.cols + col)
    }

    fn neighbours(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = (idx / self.cols, idx % self.cols);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(idx - self.cols);
        }
        if r + 1 < self.rows {
            out.push(idx + self.cols);
        }
        if c > 0 {
            out.push(idx - 1);
        }
        if c + 1 < self.cols {
            out.push(idx + 1);
        }
        out.into_iter()
    }

    /// The lazily-built adjacency CSR + pad mask. Neighbour order
    /// matches [`PowerGrid::neighbours`] (up, down, left, right) so the
    /// accumulated relaxation sums are bit-identical to the iterator
    /// form.
    fn grid_cache(&self) -> &GridCache {
        self.cache.get_or_init(|| {
            let n = self.tiles();
            let mut off = Vec::with_capacity(n + 1);
            let mut adj = Vec::with_capacity(4 * n);
            off.push(0u32);
            for i in 0..n {
                adj.extend(self.neighbours(i).map(|nb| nb as u32));
                off.push(adj.len() as u32);
            }
            let mut is_pad = vec![false; n];
            for &p in &self.pads {
                is_pad[p] = true;
            }
            GridCache { off, adj, is_pad }
        })
    }

    /// The banded Cholesky factorization of this grid's conductance
    /// matrix, built on first use and cached for the grid's lifetime.
    ///
    /// Construction cannot fail: [`PowerGrid::new`] guarantees positive
    /// mesh/pad conductances and at least one pad, which makes the
    /// conductance matrix symmetric positive definite.
    pub fn factor(&self) -> &GridFactor {
        self.factor.get_or_init(|| {
            let cache = self.grid_cache();
            let n = self.tiles();
            let band = if n == 1 {
                0
            } else if self.rows == 1 {
                1
            } else {
                self.cols
            };
            let stride = band + 1;
            let mut l = vec![0.0; n * stride];
            for i in 0..n {
                let lo = i.saturating_sub(band);
                for j in lo..=i {
                    let mut s = self.k_entry(cache, i, j);
                    for t in lo..j {
                        s -= l[i * stride + (t + band - i)] * l[j * stride + (t + band - j)];
                    }
                    if i == j {
                        assert!(s > 0.0, "conductance matrix not SPD at node {i}");
                        l[i * stride + band] = s.sqrt();
                    } else {
                        l[i * stride + (j + band - i)] = s / l[j * stride + band];
                    }
                }
            }
            GridFactor { n, band, l }
        })
    }

    /// Entry `(i, j)`, `j ≤ i`, of the conductance matrix `K`: the
    /// diagonal holds each node's total conductance (mesh degree plus
    /// pad tie where present); the sub-diagonals hold `−g_mesh` for the
    /// left and upper mesh neighbours.
    fn k_entry(&self, cache: &GridCache, i: usize, j: usize) -> f64 {
        if i == j {
            let degree = (cache.off[i + 1] - cache.off[i]) as f64;
            let pad = if cache.is_pad[i] { self.g_pad } else { 0.0 };
            return degree * self.g_mesh + pad;
        }
        let left = j + 1 == i && !i.is_multiple_of(self.cols);
        let up = self.rows > 1 && j + self.cols == i;
        if left || up {
            -self.g_mesh
        } else {
            0.0
        }
    }

    /// The Gauss–Seidel/SOR sweep shared by [`PowerGrid::solve`] and
    /// [`PowerGrid::solve_from`]: starts from `v0` (pad voltage
    /// everywhere when `None`) and returns the solution together with
    /// the iteration count, so tests can pin the warm-start advantage.
    fn relax(&self, v0: Option<&[f64]>, loads: &[f64]) -> Result<(Vec<f64>, usize), PdnError> {
        if loads.len() != self.tiles() {
            return Err(PdnError::InvalidParameter {
                name: "loads",
                reason: format!(
                    "expected {} tile currents, got {}",
                    self.tiles(),
                    loads.len()
                ),
            });
        }
        let n = self.tiles();
        let vp = self.v_pad.volts();
        let mut v = match v0 {
            Some(prior) => {
                if prior.len() != n {
                    return Err(PdnError::InvalidParameter {
                        name: "prior",
                        reason: format!("expected {} tile voltages, got {}", n, prior.len()),
                    });
                }
                prior.to_vec()
            }
            None => vec![vp; n],
        };
        let GridCache { off, adj, is_pad } = self.grid_cache();

        const MAX_ITER: usize = 20_000;
        const TOL: f64 = 1e-12;
        const OMEGA: f64 = 1.6; // SOR factor for a 2-D Laplacian

        for iter in 0..MAX_ITER {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let mut g_sum = 0.0;
                let mut rhs = -loads[i];
                for &nb in &adj[off[i] as usize..off[i + 1] as usize] {
                    g_sum += self.g_mesh;
                    rhs += self.g_mesh * v[nb as usize];
                }
                if is_pad[i] {
                    g_sum += self.g_pad;
                    rhs += self.g_pad * vp;
                }
                let v_new = rhs / g_sum;
                let relaxed = v[i] + OMEGA * (v_new - v[i]);
                max_delta = max_delta.max((relaxed - v[i]).abs());
                v[i] = relaxed;
            }
            if max_delta < TOL {
                return Ok((v, iter + 1));
            }
        }
        Err(PdnError::NoConvergence {
            iterations: MAX_ITER,
            residual: 0.0,
        })
    }

    /// Solves the DC nodal equations for the given per-tile load currents
    /// (amperes, row-major) and returns per-tile voltages (volts).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] when `loads.len()` does not
    /// match the tile count and [`PdnError::NoConvergence`] if relaxation
    /// stalls.
    pub fn solve(&self, loads: &[f64]) -> Result<Vec<f64>, PdnError> {
        self.relax(None, loads).map(|(v, _)| v)
    }

    /// Like [`PowerGrid::solve`], but warm-started from a previous
    /// solution — typically the neighbouring point of a sweep, whose
    /// voltages are already close, so the relaxation converges in far
    /// fewer iterations. The result satisfies the same `1e-12`
    /// convergence tolerance as a cold [`PowerGrid::solve`].
    ///
    /// # Errors
    ///
    /// As [`PowerGrid::solve`], plus [`PdnError::InvalidParameter`] when
    /// `prior.len()` does not match the tile count.
    pub fn solve_from(&self, prior: &[f64], loads: &[f64]) -> Result<Vec<f64>, PdnError> {
        self.relax(Some(prior), loads).map(|(v, _)| v)
    }

    /// Solves the DC nodal equations directly through the cached banded
    /// Cholesky factor ([`PowerGrid::factor`]) — no iteration, no
    /// convergence tolerance. Agrees with [`PowerGrid::solve`] to well
    /// below the relaxation's own `1e-12` stopping threshold, and on
    /// workload-scale grids (1,600 nodes) runs orders of magnitude
    /// faster than a cold sweep.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] when `loads.len()` does
    /// not match the tile count.
    pub fn solve_sparse(&self, loads: &[f64]) -> Result<GridSolution, PdnError> {
        let n = self.tiles();
        if loads.len() != n {
            return Err(PdnError::InvalidParameter {
                name: "loads",
                reason: format!("expected {} tile currents, got {}", n, loads.len()),
            });
        }
        let cache = self.grid_cache();
        let vp = self.v_pad.volts();
        let mut b: Vec<f64> = (0..n)
            .map(|i| {
                let pad = if cache.is_pad[i] {
                    self.g_pad * vp
                } else {
                    0.0
                };
                pad - loads[i]
            })
            .collect();
        self.factor().solve_in_place(&mut b, 0);
        Ok(GridSolution {
            voltages: b,
            loads: loads.to_vec(),
        })
    }

    /// Re-solves from a prior [`GridSolution`] given only the loads that
    /// changed (`(node_index, new_load_amperes)` pairs; later duplicates
    /// win). The linear system makes this exact: the voltage update is
    /// `K⁻¹·Δb` where `Δb` is non-zero only at the changed nodes, so the
    /// right-hand side assembly and the forward-substitution prefix cost
    /// O(changed loads) — the per-cycle price a workload campaign pays
    /// when only a handful of tiles switch activity between cycles.
    ///
    /// An empty or all-unchanged `changed` set returns a clone of
    /// `prior` without touching the solver.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] when the prior solution's
    /// shape does not match the grid and [`PdnError::OutOfBounds`] for a
    /// changed node index outside the grid.
    pub fn solve_delta(
        &self,
        prior: &GridSolution,
        changed: &[(usize, f64)],
    ) -> Result<GridSolution, PdnError> {
        let n = self.tiles();
        if prior.voltages.len() != n || prior.loads.len() != n {
            return Err(PdnError::InvalidParameter {
                name: "prior",
                reason: format!(
                    "expected a {}-tile solution, got {} voltages / {} loads",
                    n,
                    prior.voltages.len(),
                    prior.loads.len()
                ),
            });
        }
        for &(node, _) in changed {
            if node >= n {
                return Err(PdnError::OutOfBounds {
                    row: node / self.cols,
                    col: node % self.cols,
                    rows: self.rows,
                    cols: self.cols,
                });
            }
        }
        let mut next = prior.clone();
        let mut db = vec![0.0; n];
        let mut first = n;
        for &(node, new_load) in changed {
            let delta = new_load - next.loads[node];
            if delta != 0.0 {
                db[node] -= delta;
                next.loads[node] = new_load;
                first = first.min(node);
            }
        }
        if first == n {
            return Ok(next);
        }
        self.factor().solve_in_place(&mut db, first);
        for (v, dv) in next.voltages.iter_mut().zip(&db) {
            *v += dv;
        }
        Ok(next)
    }

    /// Quasi-static transient: solves the grid at every sample instant of
    /// the per-tile load waveforms (amperes) and returns one supply
    /// [`Waveform`] per tile. Valid when the grid's own RC time constants
    /// are far below the waveform time scale — true for on-die resistive
    /// meshes against tens-of-ns PSN.
    ///
    /// When the context carries an observer, the number of grid solves
    /// accumulates in its `pdn.grid_solves` counter; the waveforms are
    /// identical with and without an observer.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerGrid::solve`] failures and waveform validation.
    pub fn quasi_static_transient(
        &self,
        ctx: &mut psnt_ctx::RunCtx<'_>,
        loads: &[Waveform],
        start: Time,
        end: Time,
        dt: Time,
    ) -> Result<Vec<Waveform>, PdnError> {
        if loads.len() != self.tiles() {
            return Err(PdnError::InvalidParameter {
                name: "loads",
                reason: format!(
                    "expected {} tile waveforms, got {}",
                    self.tiles(),
                    loads.len()
                ),
            });
        }
        if dt <= Time::ZERO || end <= start {
            return Err(PdnError::InvalidParameter {
                name: "dt/end",
                reason: "need positive dt and end > start".into(),
            });
        }
        let steps = ((end - start) / dt).ceil() as usize;
        let mut per_tile: Vec<Vec<(Time, f64)>> = vec![Vec::with_capacity(steps + 1); self.tiles()];
        // Each step warm-starts from the previous instant's solution:
        // adjacent samples differ by one dt of load drift, so the
        // relaxation converges in a fraction of the cold iterations.
        let mut prior: Option<Vec<f64>> = None;
        // Iteration counts are pure numerics (no clocks, no workers),
        // so the profile is deterministic; collected locally and folded
        // once so the detached path stays allocation-free.
        let mut warm_iters: Vec<usize> = Vec::new();
        let observed = ctx.has_observer();
        // Supervision boundary: one check per solve step (each step is
        // a full grid relaxation, so the check cost is negligible and a
        // trip loses at most one step of work).
        let sup = ctx.supervisor().clone();
        for k in 0..=steps {
            let t = start + dt * k as f64;
            sup.charge_events(1);
            if let Err(reason) = sup.check_at(t.picoseconds()) {
                return Err(PdnError::Interrupted(reason));
            }
            let instantaneous: Vec<f64> = loads.iter().map(|w| w.sample(t)).collect();
            let (v, iters) = self.relax(prior.as_deref(), &instantaneous)?;
            if observed && prior.is_some() {
                warm_iters.push(iters);
            }
            for (tile, &vi) in v.iter().enumerate() {
                per_tile[tile].push((t, vi));
            }
            prior = Some(v);
        }
        if let Some(obs) = ctx.observer() {
            obs.metrics.counter_add("pdn.grid_solves", steps as u64 + 1);
            let hist = obs.metrics.histogram(
                "pdn.warm_start_iters",
                &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0],
            );
            for iters in warm_iters {
                obs.metrics.record(hist, iters as f64);
            }
        }
        per_tile.into_iter().map(Waveform::from_points).collect()
    }

    /// The worst (lowest) tile voltage for a load pattern, with its tile
    /// index — the spatial IR-drop hotspot.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerGrid::solve`] failures.
    pub fn hotspot(&self, loads: &[f64]) -> Result<(usize, f64), PdnError> {
        let v = self.solve(loads)?;
        let (idx, &worst) = v
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("grid has at least one tile");
        Ok((idx, worst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(side: usize) -> PowerGrid {
        PowerGrid::corner_fed(
            side,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates() {
        let v = Voltage::from_v(1.0);
        let r = Resistance::from_milliohms(40.0);
        assert!(PowerGrid::new(0, 4, v, r, r, vec![(0, 0)]).is_err());
        assert!(PowerGrid::new(4, 4, v, Resistance::from_ohms(0.0), r, vec![(0, 0)]).is_err());
        assert!(PowerGrid::new(4, 4, v, r, r, vec![]).is_err());
        assert!(matches!(
            PowerGrid::new(4, 4, v, r, r, vec![(4, 0)]),
            Err(PdnError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn zero_load_gives_pad_voltage_everywhere() {
        let grid = mk(5);
        let v = grid.solve(&[0.0; 25]).unwrap();
        for &vi in &v {
            assert!((vi - 1.0).abs() < 1e-9, "{vi}");
        }
    }

    #[test]
    fn wrong_load_length_rejected() {
        let grid = mk(3);
        assert!(grid.solve(&[0.0; 4]).is_err());
    }

    #[test]
    fn single_tile_grid_is_ohms_law() {
        let grid = PowerGrid::new(
            1,
            1,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
            vec![(0, 0)],
        )
        .unwrap();
        let v = grid.solve(&[2.0]).unwrap();
        // Only the pad resistance carries the 2 A: drop = 20 mV.
        assert!((v[0] - 0.98).abs() < 1e-9, "{}", v[0]);
    }

    #[test]
    fn centre_load_sags_centre_most() {
        let grid = mk(5);
        let mut loads = vec![0.0; 25];
        loads[12] = 0.5; // centre tile
        let v = grid.solve(&loads).unwrap();
        let (hot, v_hot) = grid.hotspot(&loads).unwrap();
        assert_eq!(hot, 12);
        assert!(v_hot < v[0]);
        assert!(v_hot < 1.0);
        // Symmetry: the four corners see identical voltages.
        assert!((v[0] - v[4]).abs() < 1e-6);
        assert!((v[0] - v[20]).abs() < 1e-6);
        assert!((v[0] - v[24]).abs() < 1e-6);
    }

    #[test]
    fn current_conservation() {
        // Sum of pad currents equals total load current.
        let grid = mk(4);
        let mut loads = vec![0.01; 16];
        loads[5] = 0.3;
        let v = grid.solve(&loads).unwrap();
        let g_pad = 1.0 / 0.010;
        let pad_tiles = [0usize, 3, 12, 15];
        let injected: f64 = pad_tiles.iter().map(|&p| g_pad * (1.0 - v[p])).sum();
        let drawn: f64 = loads.iter().sum();
        assert!(
            (injected - drawn).abs() < 1e-6,
            "injected {injected} vs drawn {drawn}"
        );
    }

    #[test]
    fn heavier_load_monotonically_lowers_voltages() {
        let grid = mk(4);
        let light = grid.solve(&[0.05; 16]).unwrap();
        let heavy = grid.solve(&[0.10; 16]).unwrap();
        for (l, h) in light.iter().zip(&heavy) {
            assert!(h < l);
        }
    }

    #[test]
    fn warm_start_converges_faster_and_matches_cold() {
        let grid = mk(8);
        let mut loads = vec![0.01; 64];
        loads[27] = 0.2;
        let (base, _) = grid.relax(None, &loads).unwrap();
        // A neighbouring sweep point: the centre draw drifts by 10 %.
        let mut next = loads.clone();
        next[27] = 0.22;
        let (cold, cold_iters) = grid.relax(None, &next).unwrap();
        let (warm, warm_iters) = grid.relax(Some(&base), &next).unwrap();
        // The asymptotic SOR rate bounds the gain at a deep 1e-12
        // tolerance; the warm start still strictly shortens the run
        // (and collapses it for the small per-dt drifts of a transient).
        assert!(
            warm_iters < cold_iters,
            "warm start took {warm_iters} iterations vs {cold_iters} cold"
        );
        for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
            assert!((w - c).abs() < 1e-9, "tile {i}: warm {w} vs cold {c}");
        }
        // Re-solving the same point from its own solution is ~free.
        let (_, again) = grid.relax(Some(&cold), &next).unwrap();
        assert!(again <= 2, "self warm start took {again} iterations");
    }

    #[test]
    fn solve_from_validates_prior_length() {
        let grid = mk(3);
        assert!(grid.solve_from(&[1.0; 4], &[0.0; 9]).is_err());
        assert!(grid.solve_from(&[1.0; 9], &[0.0; 4]).is_err());
    }

    #[test]
    fn quasi_static_transient_tracks_load() {
        let grid = mk(3);
        let ns = Time::from_ns;
        // Tile 4 (centre) ramps its draw; others idle.
        let mut loads = vec![Waveform::constant(0.0); 9];
        loads[4] = Waveform::from_points(vec![(ns(0.0), 0.0), (ns(100.0), 0.4)]).unwrap();
        let waves = grid
            .quasi_static_transient(
                &mut psnt_ctx::RunCtx::serial(),
                &loads,
                Time::ZERO,
                ns(100.0),
                ns(10.0),
            )
            .unwrap();
        assert_eq!(waves.len(), 9);
        // Centre tile droops over time.
        assert!(waves[4].sample(ns(100.0)) < waves[4].sample(ns(0.0)));
        // And droops more than a corner tile at the end.
        assert!(waves[4].sample(ns(100.0)) < waves[0].sample(ns(100.0)));
    }

    #[test]
    fn transient_solve_interrupts_on_cancel_and_sim_budget() {
        use psnt_sup::{CancelToken, Interrupt, RunBudget, Supervisor};
        let grid = mk(2);
        let ns = Time::from_ns;
        let loads = vec![Waveform::constant(0.1); 4];
        // A pre-cancelled token stops before the first step.
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = psnt_ctx::RunCtx::serial()
            .with_supervisor(Supervisor::new(token, RunBudget::unlimited()));
        let err = grid
            .quasi_static_transient(&mut ctx, &loads, Time::ZERO, ns(100.0), ns(10.0))
            .unwrap_err();
        assert_eq!(err, PdnError::Interrupted(Interrupt::Cancelled));
        // A sim-time budget stops the sweep at its horizon.
        let budget = RunBudget::unlimited().sim_time_ps(ns(50.0).picoseconds());
        let mut ctx =
            psnt_ctx::RunCtx::serial().with_supervisor(Supervisor::new(CancelToken::new(), budget));
        let err = grid
            .quasi_static_transient(&mut ctx, &loads, Time::ZERO, ns(100.0), ns(10.0))
            .unwrap_err();
        assert!(
            matches!(err, PdnError::Interrupted(Interrupt::SimTimeBudget { .. })),
            "{err}"
        );
    }

    #[test]
    fn transient_argument_validation() {
        let grid = mk(2);
        let loads = vec![Waveform::constant(0.0); 4];
        assert!(grid
            .quasi_static_transient(
                &mut psnt_ctx::RunCtx::serial(),
                &loads,
                Time::ZERO,
                Time::ZERO,
                Time::from_ns(1.0)
            )
            .is_err());
        assert!(grid
            .quasi_static_transient(
                &mut psnt_ctx::RunCtx::serial(),
                &loads[..2],
                Time::ZERO,
                Time::from_ns(10.0),
                Time::from_ns(1.0)
            )
            .is_err());
    }

    #[test]
    fn tile_index_bounds() {
        let grid = mk(3);
        assert_eq!(grid.tile_index(1, 2).unwrap(), 5);
        assert!(grid.tile_index(3, 0).is_err());
        assert_eq!(grid.tiles(), 9);
        assert_eq!(grid.rows(), 3);
        assert_eq!(grid.cols(), 3);
    }

    #[test]
    fn sparse_matches_dense_solver() {
        let grid = mk(8);
        let mut loads = vec![0.01; 64];
        loads[27] = 0.25;
        loads[0] = 0.1;
        loads[63] = 0.05;
        let dense = grid.solve(&loads).unwrap();
        let sparse = grid.solve_sparse(&loads).unwrap();
        assert_eq!(sparse.loads(), &loads[..]);
        for (i, (d, s)) in dense.iter().zip(sparse.voltages()).enumerate() {
            assert!((d - s).abs() < 1e-9, "tile {i}: dense {d} vs sparse {s}");
        }
    }

    #[test]
    fn sparse_handles_degenerate_grids() {
        // 1×1: Ohm's law through the pad tie only.
        let one = PowerGrid::new(
            1,
            1,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
            vec![(0, 0)],
        )
        .unwrap();
        let sol = one.solve_sparse(&[2.0]).unwrap();
        assert!((sol.voltages()[0] - 0.98).abs() < 1e-12);
        assert_eq!(one.factor().bandwidth(), 0);

        // 1×N row: band collapses to the horizontal neighbour.
        let row = PowerGrid::new(
            1,
            6,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
            vec![(0, 0), (0, 5)],
        )
        .unwrap();
        assert_eq!(row.factor().bandwidth(), 1);
        let loads = [0.0, 0.1, 0.0, 0.2, 0.0, 0.0];
        let dense = row.solve(&loads).unwrap();
        let sparse = row.solve_sparse(&loads).unwrap();
        for (d, s) in dense.iter().zip(sparse.voltages()) {
            assert!((d - s).abs() < 1e-9);
        }

        // N×1 column: the vertical neighbour is the ±1 offset.
        let col = PowerGrid::new(
            6,
            1,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
            vec![(0, 0)],
        )
        .unwrap();
        assert_eq!(col.factor().bandwidth(), 1);
        let dense = col.solve(&loads).unwrap();
        let sparse = col.solve_sparse(&loads).unwrap();
        for (d, s) in dense.iter().zip(sparse.voltages()) {
            assert!((d - s).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_solve_matches_fresh_solve() {
        let grid = mk(6);
        let base_loads = vec![0.02; 36];
        let base = grid.solve_sparse(&base_loads).unwrap();
        // Change three scattered tiles (one of them twice: later wins).
        let changed = [(7, 0.3), (20, 0.0), (35, 0.1), (7, 0.25)];
        let next = grid.solve_delta(&base, &changed).unwrap();
        let mut fresh_loads = base_loads.clone();
        fresh_loads[7] = 0.25;
        fresh_loads[20] = 0.0;
        fresh_loads[35] = 0.1;
        assert_eq!(next.loads(), &fresh_loads[..]);
        let fresh = grid.solve_sparse(&fresh_loads).unwrap();
        for (i, (d, f)) in next.voltages().iter().zip(fresh.voltages()).enumerate() {
            assert!((d - f).abs() < 1e-9, "tile {i}: delta {d} vs fresh {f}");
        }
    }

    #[test]
    fn delta_solve_chain_stays_accurate() {
        // A 100-step chain of single-tile changes accumulates no
        // meaningful drift versus solving each pattern from scratch.
        let grid = mk(5);
        let mut sol = grid.solve_sparse(&[0.0; 25]).unwrap();
        for step in 0..100usize {
            let node = (step * 7) % 25;
            let load = 0.05 + 0.001 * step as f64;
            sol = grid.solve_delta(&sol, &[(node, load)]).unwrap();
        }
        let fresh = grid.solve_sparse(sol.loads()).unwrap();
        for (c, f) in sol.voltages().iter().zip(fresh.voltages()) {
            assert!((c - f).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_solve_noop_returns_prior() {
        let grid = mk(4);
        let base = grid.solve_sparse(&[0.05; 16]).unwrap();
        let same = grid.solve_delta(&base, &[]).unwrap();
        assert_eq!(base, same);
        let unchanged = grid.solve_delta(&base, &[(3, 0.05)]).unwrap();
        assert_eq!(base, unchanged);
    }

    #[test]
    fn delta_solve_validates() {
        let grid = mk(4);
        let base = grid.solve_sparse(&[0.0; 16]).unwrap();
        assert!(matches!(
            grid.solve_delta(&base, &[(16, 0.1)]),
            Err(PdnError::OutOfBounds { .. })
        ));
        let other = mk(3).solve_sparse(&[0.0; 9]).unwrap();
        assert!(grid.solve_delta(&other, &[(0, 0.1)]).is_err());
        assert!(grid.solve_sparse(&[0.0; 9]).is_err());
    }

    #[test]
    fn grid_solution_hotspot_matches_grid_hotspot() {
        let grid = mk(5);
        let mut loads = vec![0.0; 25];
        loads[12] = 0.5;
        let sol = grid.solve_sparse(&loads).unwrap();
        let (idx, v) = sol.hotspot();
        let (gi, gv) = grid.hotspot(&loads).unwrap();
        assert_eq!(idx, gi);
        assert!((v - gv).abs() < 1e-9);
    }

    #[test]
    fn equality_ignores_lazy_caches() {
        let a = mk(4);
        let b = mk(4);
        // Warm one grid's caches; the grids still compare equal, and a
        // clone of the warmed grid round-trips.
        let _ = a.solve_sparse(&[0.1; 16]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.clone(), b);
        assert_ne!(mk(4), mk(5));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Sparse direct solves agree with the Gauss–Seidel path to
            /// 1e-9 over random load sets on random grid shapes.
            #[test]
            fn sparse_vs_dense_agreement(
                rows in 1usize..7,
                cols in 1usize..7,
                seed in any::<u64>(),
            ) {
                let grid = PowerGrid::new(
                    rows,
                    cols,
                    Voltage::from_v(1.05),
                    Resistance::from_milliohms(60.0),
                    Resistance::from_milliohms(20.0),
                    vec![(0, 0), (rows - 1, cols - 1)],
                )
                .unwrap();
                // A cheap deterministic load pattern from the seed.
                let mut state = seed;
                let loads: Vec<f64> = (0..rows * cols)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 11) as f64 / (1u64 << 53) as f64 * 0.2
                    })
                    .collect();
                let dense = grid.solve(&loads).unwrap();
                let sparse = grid.solve_sparse(&loads).unwrap();
                for (d, s) in dense.iter().zip(sparse.voltages()) {
                    prop_assert!((d - s).abs() < 1e-9, "dense {} vs sparse {}", d, s);
                }
            }

            /// A chain of delta solves equals a fresh factor-backed solve
            /// of the final load pattern.
            #[test]
            fn delta_chain_vs_fresh(
                changes in proptest::collection::vec(
                    (0usize..36, 0.0..0.3f64), 1..40),
            ) {
                let grid = PowerGrid::corner_fed(
                    6,
                    Voltage::from_v(1.0),
                    Resistance::from_milliohms(40.0),
                    Resistance::from_milliohms(10.0),
                )
                .unwrap();
                let mut sol = grid.solve_sparse(&vec![0.0; 36]).unwrap();
                for &(node, load) in &changes {
                    sol = grid.solve_delta(&sol, &[(node, load)]).unwrap();
                }
                let fresh = grid.solve_sparse(sol.loads()).unwrap();
                for (c, f) in sol.voltages().iter().zip(fresh.voltages()) {
                    prop_assert!((c - f).abs() < 1e-9);
                }
            }
        }
    }
}
