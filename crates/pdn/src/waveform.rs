//! Piecewise-linear analog waveforms.
//!
//! The sensor under reproduction observes a continuously varying supply
//! voltage `VDD-n(t)` (or ground `GND-n(t)`). A [`Waveform`] represents
//! such a signal as time-sorted breakpoints with linear interpolation —
//! sufficient for every behaviour the paper exercises (IR drop steps,
//! di/dt droops, package resonance) and cheap to sample at the sensor's
//! SENSE instants.
//!
//! The y-axis is a bare `f64`; its unit is set by context (volts for
//! supply waveforms, amperes for load-current profiles). Constructors on
//! higher-level APIs take and return typed quantities at the boundary.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::Time;
//! use psnt_pdn::waveform::Waveform;
//!
//! let w = Waveform::from_points(vec![
//!     (Time::ZERO, 1.0),
//!     (Time::from_ns(10.0), 0.9),
//!     (Time::from_ns(20.0), 1.0),
//! ])?;
//! assert_eq!(w.sample(Time::from_ns(5.0)), 0.95);
//! assert_eq!(w.min_over(Time::ZERO, Time::from_ns(20.0)), 0.9);
//! # Ok::<(), psnt_pdn::error::PdnError>(())
//! ```

use psnt_cells::units::Time;
use serde::{Deserialize, Serialize};

use crate::error::PdnError;

/// A piecewise-linear waveform: y(t) interpolated between sorted
/// breakpoints and clamped to the first/last value outside them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    points: Vec<(Time, f64)>,
}

impl Waveform {
    /// A constant waveform.
    pub fn constant(value: f64) -> Waveform {
        Waveform {
            points: vec![(Time::ZERO, value)],
        }
    }

    /// Builds a waveform from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidWaveform`] when `points` is empty, not
    /// strictly increasing in time, or contains a non-finite value.
    pub fn from_points(points: Vec<(Time, f64)>) -> Result<Waveform, PdnError> {
        if points.is_empty() {
            return Err(PdnError::InvalidWaveform("no breakpoints".into()));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(PdnError::InvalidWaveform(format!(
                    "breakpoints not strictly increasing at {}",
                    w[1].0
                )));
            }
        }
        if points.iter().any(|(t, y)| !t.is_finite() || !y.is_finite()) {
            return Err(PdnError::InvalidWaveform("non-finite breakpoint".into()));
        }
        Ok(Waveform { points })
    }

    /// Samples a closure on a regular grid of `n + 1` points across
    /// `[start, end]`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidWaveform`] when `n == 0`, the interval is
    /// empty, or `f` produces non-finite values.
    pub fn sample_fn<F: FnMut(Time) -> f64>(
        start: Time,
        end: Time,
        n: usize,
        mut f: F,
    ) -> Result<Waveform, PdnError> {
        if n == 0 || end <= start {
            return Err(PdnError::InvalidWaveform(
                "sampling needs n >= 1 and end > start".into(),
            ));
        }
        let mut points = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let t = start.lerp(end, i as f64 / n as f64);
            points.push((t, f(t)));
        }
        Waveform::from_points(points)
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// First breakpoint time.
    pub fn start(&self) -> Time {
        self.points[0].0
    }

    /// Last breakpoint time.
    pub fn end(&self) -> Time {
        self.points[self.points.len() - 1].0
    }

    /// Linear interpolation at `t`, clamped outside the breakpoints.
    pub fn sample(&self, t: Time) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        let last = pts.len() - 1;
        if t >= pts[last].0 {
            return pts[last].1;
        }
        let idx = pts.partition_point(|(pt, _)| *pt <= t);
        let (t0, y0) = pts[idx - 1];
        let (t1, y1) = pts[idx];
        let frac = (t - t0) / (t1 - t0);
        y0 + (y1 - y0) * frac
    }

    /// Minimum over `[from, to]`, considering interior breakpoints and the
    /// clamped interval ends.
    ///
    /// # Panics
    ///
    /// Panics if `to < from`; [`Waveform::try_min_over`] is the fallible
    /// form for caller-supplied windows.
    pub fn min_over(&self, from: Time, to: Time) -> f64 {
        self.try_min_over(from, to).expect("non-empty interval")
    }

    /// Fallible [`Waveform::min_over`].
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::EmptyInterval`] when `to < from`.
    pub fn try_min_over(&self, from: Time, to: Time) -> Result<f64, PdnError> {
        if to < from {
            return Err(PdnError::EmptyInterval { from, to });
        }
        Ok(self.extreme_over(from, to, f64::min))
    }

    /// Maximum over `[from, to]`.
    ///
    /// # Panics
    ///
    /// Panics if `to < from`; [`Waveform::try_max_over`] is the fallible
    /// form for caller-supplied windows.
    pub fn max_over(&self, from: Time, to: Time) -> f64 {
        self.try_max_over(from, to).expect("non-empty interval")
    }

    /// Fallible [`Waveform::max_over`].
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::EmptyInterval`] when `to < from`.
    pub fn try_max_over(&self, from: Time, to: Time) -> Result<f64, PdnError> {
        if to < from {
            return Err(PdnError::EmptyInterval { from, to });
        }
        Ok(self.extreme_over(from, to, f64::max))
    }

    /// The breakpoints strictly inside `(from, to)`, located by binary
    /// search — windows are typically a few hundred ps against waveforms
    /// with tens of thousands of points, so a linear scan would dominate
    /// every windowed query.
    fn interior(&self, from: Time, to: Time) -> &[(Time, f64)] {
        let lo = self.points.partition_point(|(t, _)| *t <= from);
        let hi = lo + self.points[lo..].partition_point(|(t, _)| *t < to);
        &self.points[lo..hi]
    }

    fn extreme_over(&self, from: Time, to: Time, pick: fn(f64, f64) -> f64) -> f64 {
        let mut acc = pick(self.sample(from), self.sample(to));
        for &(_, y) in self.interior(from, to) {
            acc = pick(acc, y);
        }
        acc
    }

    /// Mean value over `[from, to]` (exact for the piecewise-linear form).
    ///
    /// # Panics
    ///
    /// Panics if `to <= from`; [`Waveform::try_mean_over`] is the fallible
    /// form for caller-supplied windows.
    pub fn mean_over(&self, from: Time, to: Time) -> f64 {
        self.try_mean_over(from, to).expect("non-empty interval")
    }

    /// Fallible [`Waveform::mean_over`].
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::EmptyInterval`] when `to <= from` (the mean
    /// needs a window of nonzero width to integrate over).
    pub fn try_mean_over(&self, from: Time, to: Time) -> Result<f64, PdnError> {
        if to <= from {
            return Err(PdnError::EmptyInterval { from, to });
        }
        // Integrate trapezoid segments between consecutive knots.
        let mut knots: Vec<Time> = vec![from];
        for &(t, _) in self.interior(from, to) {
            knots.push(t);
        }
        knots.push(to);
        let mut area = 0.0;
        for w in knots.windows(2) {
            let (a, b) = (w[0], w[1]);
            let dt = (b - a).picoseconds();
            area += 0.5 * (self.sample(a) + self.sample(b)) * dt;
        }
        Ok(area / (to - from).picoseconds())
    }

    /// Applies `f` to every breakpoint value.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Waveform {
        Waveform {
            points: self.points.iter().map(|&(t, y)| (t, f(y))).collect(),
        }
    }

    /// Scales all values by `k`.
    #[must_use]
    pub fn scale(&self, k: f64) -> Waveform {
        self.map(|y| y * k)
    }

    /// Offsets all values by `dy`.
    #[must_use]
    pub fn offset(&self, dy: f64) -> Waveform {
        self.map(|y| y + dy)
    }

    /// Shifts the waveform in time by `dt`.
    #[must_use]
    pub fn shift(&self, dt: Time) -> Waveform {
        Waveform {
            points: self.points.iter().map(|&(t, y)| (t + dt, y)).collect(),
        }
    }

    /// Point-wise sum with `other`, on the union of both breakpoint sets
    /// (exact: the sum of two PWL functions is PWL on merged knots).
    #[must_use]
    pub fn add(&self, other: &Waveform) -> Waveform {
        let mut times: Vec<Time> = self
            .points
            .iter()
            .map(|&(t, _)| t)
            .chain(other.points.iter().map(|&(t, _)| t))
            .collect();
        times.sort_by(Time::total_cmp);
        times.dedup_by(|a, b| a == b);
        Waveform {
            points: times
                .into_iter()
                .map(|t| (t, self.sample(t) + other.sample(t)))
                .collect(),
        }
    }

    /// Global minimum across all breakpoints.
    pub fn min_value(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::INFINITY, f64::min)
    }

    /// Global maximum across all breakpoints.
    pub fn max_value(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the waveform has a single breakpoint (constant).
    pub fn is_constant(&self) -> bool {
        self.points.len() == 1
    }

    /// Always `false`: construction guarantees at least one breakpoint.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ns(t: f64) -> Time {
        Time::from_ns(t)
    }

    fn vee() -> Waveform {
        Waveform::from_points(vec![(ns(0.0), 1.0), (ns(10.0), 0.9), (ns(20.0), 1.0)]).unwrap()
    }

    #[test]
    fn try_windows_reject_empty_intervals_without_panicking() {
        let w = vee();
        assert!(matches!(
            w.try_min_over(ns(5.0), ns(4.0)),
            Err(PdnError::EmptyInterval { .. })
        ));
        assert!(matches!(
            w.try_max_over(ns(5.0), ns(4.0)),
            Err(PdnError::EmptyInterval { .. })
        ));
        // The mean needs nonzero width; the extrema accept a point window.
        assert!(matches!(
            w.try_mean_over(ns(5.0), ns(5.0)),
            Err(PdnError::EmptyInterval { .. })
        ));
        assert_eq!(w.try_min_over(ns(5.0), ns(5.0)).unwrap(), w.sample(ns(5.0)));
        // The fallible forms agree with the panicking wrappers.
        assert_eq!(w.try_min_over(ns(0.0), ns(20.0)).unwrap(), 0.9);
        assert_eq!(w.try_max_over(ns(0.0), ns(20.0)).unwrap(), 1.0);
        assert_eq!(
            w.try_mean_over(ns(2.0), ns(18.0)).unwrap(),
            w.mean_over(ns(2.0), ns(18.0))
        );
    }

    #[test]
    fn construction_validates() {
        assert!(Waveform::from_points(vec![]).is_err());
        assert!(Waveform::from_points(vec![(ns(1.0), 1.0), (ns(1.0), 2.0)]).is_err());
        assert!(Waveform::from_points(vec![(ns(2.0), 1.0), (ns(1.0), 2.0)]).is_err());
        assert!(Waveform::from_points(vec![(ns(0.0), f64::NAN)]).is_err());
        assert!(Waveform::from_points(vec![(ns(0.0), 1.0)]).is_ok());
    }

    #[test]
    fn sampling_interpolates_and_clamps() {
        let w = vee();
        assert_eq!(w.sample(ns(-5.0)), 1.0);
        assert_eq!(w.sample(ns(0.0)), 1.0);
        assert!((w.sample(ns(5.0)) - 0.95).abs() < 1e-12);
        assert_eq!(w.sample(ns(10.0)), 0.9);
        assert!((w.sample(ns(15.0)) - 0.95).abs() < 1e-12);
        assert_eq!(w.sample(ns(25.0)), 1.0);
    }

    #[test]
    fn constant_waveform() {
        let w = Waveform::constant(0.95);
        assert!(w.is_constant());
        assert_eq!(w.sample(ns(-1.0)), 0.95);
        assert_eq!(w.sample(ns(100.0)), 0.95);
        assert_eq!(w.min_value(), 0.95);
        assert_eq!(w.max_value(), 0.95);
    }

    #[test]
    fn extremes_over_interval() {
        let w = vee();
        assert_eq!(w.min_over(ns(0.0), ns(20.0)), 0.9);
        assert_eq!(w.max_over(ns(0.0), ns(20.0)), 1.0);
        // Interval missing the dip bottom: min at clamped ends.
        assert!((w.min_over(ns(0.0), ns(5.0)) - 0.95).abs() < 1e-12);
        // Degenerate interval.
        assert!((w.min_over(ns(5.0), ns(5.0)) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn mean_of_symmetric_vee_is_midway() {
        let w = vee();
        let mean = w.mean_over(ns(0.0), ns(20.0));
        assert!((mean - 0.95).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn map_scale_offset_shift() {
        let w = vee();
        assert!((w.scale(2.0).sample(ns(10.0)) - 1.8).abs() < 1e-12);
        assert!((w.offset(0.1).sample(ns(10.0)) - 1.0).abs() < 1e-12);
        let shifted = w.shift(ns(5.0));
        assert_eq!(shifted.sample(ns(15.0)), 0.9);
        assert_eq!(shifted.start(), ns(5.0));
        assert_eq!(shifted.end(), ns(25.0));
    }

    #[test]
    fn add_merges_breakpoints_exactly() {
        let a = Waveform::from_points(vec![(ns(0.0), 1.0), (ns(10.0), 0.0)]).unwrap();
        let b = Waveform::from_points(vec![(ns(5.0), 0.0), (ns(15.0), 1.0)]).unwrap();
        let sum = a.add(&b);
        // Knots from both waveforms are present.
        assert_eq!(sum.len(), 4);
        for t in [0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0] {
            let expect = a.sample(ns(t)) + b.sample(ns(t));
            assert!((sum.sample(ns(t)) - expect).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn never_empty_after_construction() {
        assert!(!Waveform::constant(1.0).is_empty());
        assert!(!vee().is_empty());
    }

    #[test]
    fn sample_fn_grid() {
        let w = Waveform::sample_fn(ns(0.0), ns(1.0), 10, |t| t.nanoseconds()).unwrap();
        assert_eq!(w.len(), 11);
        assert!((w.sample(ns(0.55)) - 0.55).abs() < 1e-9);
        assert!(Waveform::sample_fn(ns(0.0), ns(1.0), 0, |_| 0.0).is_err());
        assert!(Waveform::sample_fn(ns(1.0), ns(1.0), 5, |_| 0.0).is_err());
    }

    proptest! {
        #[test]
        fn sample_within_bounds(ts in proptest::collection::vec(0.0..100.0f64, 2..20),
                                q in 0.0..1.0f64) {
            let mut times: Vec<f64> = ts;
            times.sort_by(f64::total_cmp);
            times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            prop_assume!(times.len() >= 2);
            let points: Vec<(Time, f64)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (ns(t), (i as f64 * 0.37).sin()))
                .collect();
            let w = Waveform::from_points(points).unwrap();
            let t = w.start().lerp(w.end(), q);
            let y = w.sample(t);
            prop_assert!(y >= w.min_value() - 1e-9);
            prop_assert!(y <= w.max_value() + 1e-9);
        }

        #[test]
        fn add_commutes(o in -1.0..1.0f64) {
            let a = vee();
            let b = vee().offset(o).shift(ns(3.0));
            let ab = a.add(&b);
            let ba = b.add(&a);
            for t in [0.0, 3.0, 7.0, 13.0, 23.0] {
                prop_assert!((ab.sample(ns(t)) - ba.sample(ns(t))).abs() < 1e-12);
            }
        }

        #[test]
        fn mean_between_min_and_max(lo in 0.0..9.0f64, span in 1.0..10.0f64) {
            let w = vee();
            let from = ns(lo);
            let to = ns(lo + span);
            let mean = w.mean_over(from, to);
            prop_assert!(mean >= w.min_over(from, to) - 1e-9);
            prop_assert!(mean <= w.max_over(from, to) + 1e-9);
        }
    }
}
