//! Lumped RLC power-delivery model.
//!
//! The dominant mid-frequency PSN mechanism (the paper's refs. \[1\]\[2\]) is
//! the series resonance of the package inductance against the on-die
//! decoupling capacitance. [`LumpedPdn`] models the classic second-order
//! network
//!
//! ```text
//!  V_src ──R──L──┬──── v_die(t)
//!                C         │
//!                └──── i_load(t)
//! ```
//!
//! integrated with fourth-order Runge–Kutta. Feeding it a workload
//! current profile produces the realistic `VDD-n(t)` waveforms the sensor
//! experiments sample.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Current, Time};
//! use psnt_pdn::rlc::LumpedPdn;
//! use psnt_pdn::waveform::Waveform;
//!
//! let pdn = LumpedPdn::typical_90nm_package();
//! // A 2 A load step at t = 100 ns.
//! let load = Waveform::from_points(vec![
//!     (Time::ZERO, 0.5),
//!     (Time::from_ns(100.0), 0.5),
//!     (Time::from_ns(100.1), 2.5),
//! ])?;
//! let mut ctx = psnt_ctx::RunCtx::serial();
//! let vdd = pdn.transient(&mut ctx, &load, Time::from_ps(100.0), Time::from_ns(400.0))?;
//! // The step causes a droop well below the static IR level.
//! assert!(vdd.min_value() < pdn.steady_state(Current::from_a(2.5)).volts());
//! # Ok::<(), psnt_pdn::error::PdnError>(())
//! ```

use std::f64::consts::TAU;

use psnt_cells::units::{Capacitance, Current, Frequency, Inductance, Resistance, Time, Voltage};
use psnt_ctx::RunCtx;
use psnt_obs::{Event as ObsEvent, Observer};
use serde::{Deserialize, Serialize};

use crate::error::PdnError;
use crate::waveform::Waveform;

/// A series-R-L, shunt-C lumped power-delivery network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LumpedPdn {
    v_source: Voltage,
    r: Resistance,
    l: Inductance,
    c: Capacitance,
}

impl LumpedPdn {
    /// Creates a network.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] when any element value is
    /// non-positive.
    pub fn new(
        v_source: Voltage,
        r: Resistance,
        l: Inductance,
        c: Capacitance,
    ) -> Result<LumpedPdn, PdnError> {
        if v_source <= Voltage::ZERO {
            return Err(PdnError::InvalidParameter {
                name: "v_source",
                reason: "source voltage must be positive".into(),
            });
        }
        if r.ohms() <= 0.0 {
            return Err(PdnError::InvalidParameter {
                name: "r",
                reason: "series resistance must be positive".into(),
            });
        }
        if l.henries() <= 0.0 {
            return Err(PdnError::InvalidParameter {
                name: "l",
                reason: "series inductance must be positive".into(),
            });
        }
        if c.farads() <= 0.0 {
            return Err(PdnError::InvalidParameter {
                name: "c",
                reason: "decoupling capacitance must be positive".into(),
            });
        }
        Ok(LumpedPdn { v_source, r, l, c })
    }

    /// A representative 90 nm-era package/die network: 1.0 V source,
    /// 5 mΩ series resistance, 100 pH package inductance, 100 nF die
    /// decap. Resonates near 50 MHz with Q ≈ 6.
    pub fn typical_90nm_package() -> LumpedPdn {
        LumpedPdn {
            v_source: Voltage::from_v(1.0),
            r: Resistance::from_milliohms(5.0),
            l: Inductance::from_ph(100.0),
            c: Capacitance::from_nf(100.0),
        }
    }

    /// The regulator-side source voltage.
    pub fn v_source(&self) -> Voltage {
        self.v_source
    }

    /// Series resistance.
    pub fn r(&self) -> Resistance {
        self.r
    }

    /// Series inductance.
    pub fn l(&self) -> Inductance {
        self.l
    }

    /// Shunt (decoupling) capacitance.
    pub fn c(&self) -> Capacitance {
        self.c
    }

    /// The tank resonance `1 / (2π√(LC))`.
    pub fn resonance_frequency(&self) -> Frequency {
        Frequency::from_hz(1.0 / (TAU * (self.l.henries() * self.c.farads()).sqrt()))
    }

    /// Characteristic impedance `√(L/C)` — the peak droop per ampere of
    /// instantaneous load step in the underdamped regime.
    pub fn characteristic_impedance(&self) -> Resistance {
        Resistance::from_ohms((self.l.henries() / self.c.farads()).sqrt())
    }

    /// Quality factor `Z₀ / R`; values above ~0.5 ring.
    pub fn q_factor(&self) -> f64 {
        self.characteristic_impedance().ohms() / self.r.ohms()
    }

    /// Steady-state die voltage under a constant load: `V_src − R·I`.
    pub fn steady_state(&self, load: Current) -> Voltage {
        self.v_source - Voltage::from_v(self.r.ohms() * load.amps())
    }

    /// Integrates the die voltage under the load-current waveform
    /// (amperes) from the waveform start until `until`, producing a
    /// breakpoint every `dt`. Initial conditions are the steady state for
    /// the initial load value.
    ///
    /// When the context carries an observer: counts RK4 steps into
    /// `pdn.solver_steps`, accounts the energy delivered to the load and
    /// dissipated in the series resistance (`pdn.load_energy_j`,
    /// `pdn.dissipated_energy_j` gauges), and — when the observer has
    /// per-step events enabled — emits one `pdn`/`step` event per RK4
    /// step. The returned waveform is identical with and without an
    /// observer.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] when `dt` is non-positive,
    /// too coarse for the resonance period (needs ≥ 20 points per period),
    /// or `until` does not exceed the load start.
    pub fn transient(
        &self,
        ctx: &mut RunCtx<'_>,
        load: &Waveform,
        dt: Time,
        until: Time,
    ) -> Result<Waveform, PdnError> {
        if dt <= Time::ZERO {
            return Err(PdnError::InvalidParameter {
                name: "dt",
                reason: "must be positive".into(),
            });
        }
        let period = Time::period_of(self.resonance_frequency());
        if dt > period / 20.0 {
            return Err(PdnError::InvalidParameter {
                name: "dt",
                reason: format!(
                    "step {dt} too coarse for resonance period {period} (need ≥ 20 points/period)"
                ),
            });
        }
        let start = load.start();
        if until <= start {
            return Err(PdnError::InvalidParameter {
                name: "until",
                reason: format!("must exceed the load start {start}"),
            });
        }

        let l = self.l.henries();
        let c = self.c.farads();
        let r = self.r.ohms();
        let vs = self.v_source.volts();
        let h = dt.seconds();

        // State: (inductor current, die voltage).
        let i0 = load.sample(start);
        let mut il = i0;
        let mut v = vs - r * i0;

        let deriv = |il: f64, v: f64, i_load: f64| -> (f64, f64) {
            ((vs - r * il - v) / l, (il - i_load) / c)
        };

        let steps = ((until - start) / dt).ceil() as usize;
        let mut points = Vec::with_capacity(steps + 1);
        points.push((start, v));
        // Energy accounting (trapezoidal in the per-step endpoint values).
        let mut load_energy_j = 0.0;
        let mut dissipated_j = 0.0;
        let per_step_events = ctx.observer().is_some_and(|obs| obs.config().solver_steps);
        for k in 0..steps {
            let t = start + dt * k as f64;
            let t_mid = t + dt / 2.0;
            let t_end = t + dt;
            let (i_a, i_m, i_b) = (load.sample(t), load.sample(t_mid), load.sample(t_end));
            let (v_prev, il_prev) = (v, il);
            // Classic RK4 with the load sampled at sub-step times.
            let (k1i, k1v) = deriv(il, v, i_a);
            let (k2i, k2v) = deriv(il + 0.5 * h * k1i, v + 0.5 * h * k1v, i_m);
            let (k3i, k3v) = deriv(il + 0.5 * h * k2i, v + 0.5 * h * k2v, i_m);
            let (k4i, k4v) = deriv(il + h * k3i, v + h * k3v, i_b);
            il += h / 6.0 * (k1i + 2.0 * k2i + 2.0 * k3i + k4i);
            v += h / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
            points.push((t_end, v));
            if let Some(obs) = ctx.observer() {
                load_energy_j += 0.5 * (v_prev * i_a + v * i_b) * h;
                dissipated_j += 0.5 * r * (il_prev * il_prev + il * il) * h;
                if per_step_events {
                    obs.event(
                        ObsEvent::new("pdn", "step")
                            .at(t_end)
                            .field("v_die", &v)
                            .field("i_l", &il)
                            .field("i_load", &i_b),
                    );
                }
            }
        }
        if let Some(obs) = ctx.observer() {
            obs.metrics.counter_add("pdn.solver_steps", steps as u64);
            obs.metrics.gauge_set("pdn.load_energy_j", load_energy_j);
            obs.metrics
                .gauge_set("pdn.dissipated_energy_j", dissipated_j);
        }
        Waveform::from_points(points)
    }

    /// [`LumpedPdn::transient`] with an explicit optional observer.
    ///
    /// # Errors
    ///
    /// Same as [`LumpedPdn::transient`].
    #[deprecated(since = "0.1.0", note = "use `transient` with a `RunCtx`")]
    pub fn transient_observed(
        &self,
        load: &Waveform,
        dt: Time,
        until: Time,
        observer: Option<&mut Observer>,
    ) -> Result<Waveform, PdnError> {
        self.transient(
            &mut RunCtx::serial().with_observer_opt(observer),
            load,
            dt,
            until,
        )
    }
}

impl Default for LumpedPdn {
    fn default() -> LumpedPdn {
        LumpedPdn::typical_90nm_package()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(t: f64) -> Time {
        Time::from_ns(t)
    }

    fn step_load(i0: f64, i1: f64, at: Time, end: Time) -> Waveform {
        Waveform::from_points(vec![
            (Time::ZERO, i0),
            (at, i0),
            (at + Time::from_ps(100.0), i1),
            (end, i1),
        ])
        .unwrap()
    }

    #[test]
    fn constructor_validates() {
        let v = Voltage::from_v(1.0);
        let r = Resistance::from_milliohms(5.0);
        let l = Inductance::from_ph(100.0);
        let c = Capacitance::from_nf(100.0);
        assert!(LumpedPdn::new(v, r, l, c).is_ok());
        assert!(LumpedPdn::new(Voltage::ZERO, r, l, c).is_err());
        assert!(LumpedPdn::new(v, Resistance::from_ohms(0.0), l, c).is_err());
        assert!(LumpedPdn::new(v, r, Inductance::from_h(0.0), c).is_err());
        assert!(LumpedPdn::new(v, r, l, Capacitance::ZERO).is_err());
    }

    #[test]
    fn analytic_figures_of_merit() {
        let pdn = LumpedPdn::typical_90nm_package();
        // f_res = 1/(2π√(1e-10 · 1e-7)) ≈ 50.33 MHz.
        let f = pdn.resonance_frequency().hertz() / 1e6;
        assert!((f - 50.33).abs() < 0.5, "f_res {f} MHz");
        // Z0 = √(L/C) = √(1e-3) ≈ 31.6 mΩ.
        let z0 = pdn.characteristic_impedance().ohms() * 1e3;
        assert!((z0 - 31.6).abs() < 0.2, "Z0 {z0} mΩ");
        assert!(pdn.q_factor() > 5.0);
    }

    #[test]
    fn steady_state_ir_drop() {
        let pdn = LumpedPdn::typical_90nm_package();
        let v = pdn.steady_state(Current::from_a(2.0));
        assert!((v.volts() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn constant_load_stays_at_steady_state() {
        let pdn = LumpedPdn::typical_90nm_package();
        let load = Waveform::constant(1.0);
        let v = pdn
            .transient(
                &mut RunCtx::serial(),
                &load,
                Time::from_ps(200.0),
                ns(200.0),
            )
            .unwrap();
        let expect = pdn.steady_state(Current::from_a(1.0)).volts();
        assert!((v.min_value() - expect).abs() < 1e-6);
        assert!((v.max_value() - expect).abs() < 1e-6);
    }

    #[test]
    fn load_step_droops_by_roughly_z0_times_di() {
        let pdn = LumpedPdn::typical_90nm_package();
        let di = 2.0;
        let load = step_load(0.5, 0.5 + di, ns(100.0), ns(600.0));
        let v = pdn
            .transient(
                &mut RunCtx::serial(),
                &load,
                Time::from_ps(200.0),
                ns(600.0),
            )
            .unwrap();
        let pre = pdn.steady_state(Current::from_a(0.5)).volts();
        let droop = pre - v.min_over(ns(100.0), ns(200.0));
        let z0di = pdn.characteristic_impedance().ohms() * di;
        // Underdamped with finite Q: peak droop between 0.6·Z0·ΔI and 1.1·Z0·ΔI.
        assert!(droop > 0.6 * z0di, "droop {droop} vs Z0·ΔI {z0di}");
        assert!(droop < 1.1 * z0di, "droop {droop} vs Z0·ΔI {z0di}");
    }

    #[test]
    fn ring_frequency_matches_resonance() {
        let pdn = LumpedPdn::typical_90nm_package();
        let load = step_load(0.0, 2.0, ns(50.0), ns(450.0));
        let v = pdn
            .transient(
                &mut RunCtx::serial(),
                &load,
                Time::from_ps(100.0),
                ns(450.0),
            )
            .unwrap();
        // Find successive minima spacing after the step.
        let pts = v.points();
        let mut minima = Vec::new();
        for w in pts.windows(3) {
            let (t1, y1) = w[1];
            if t1 > ns(55.0) && y1 < w[0].1 && y1 < w[2].1 && y1 < 0.995 {
                minima.push(t1);
            }
        }
        assert!(
            minima.len() >= 2,
            "expected ringing, found {} minima",
            minima.len()
        );
        let period = (minima[1] - minima[0]).seconds();
        let f_measured = 1.0 / period;
        let f_expected = pdn.resonance_frequency().hertz();
        let rel = (f_measured - f_expected).abs() / f_expected;
        assert!(
            rel < 0.05,
            "ring {f_measured:.3e} vs resonance {f_expected:.3e}"
        );
    }

    #[test]
    fn settles_to_new_steady_state() {
        let pdn = LumpedPdn::typical_90nm_package();
        let load = step_load(0.5, 2.0, ns(50.0), ns(1000.0));
        let v = pdn
            .transient(
                &mut RunCtx::serial(),
                &load,
                Time::from_ps(200.0),
                ns(1000.0),
            )
            .unwrap();
        let expect = pdn.steady_state(Current::from_a(2.0)).volts();
        assert!((v.sample(ns(990.0)) - expect).abs() < 1e-4);
    }

    #[test]
    fn load_release_overshoots() {
        let pdn = LumpedPdn::typical_90nm_package();
        let load = step_load(2.0, 0.2, ns(50.0), ns(400.0));
        let v = pdn
            .transient(
                &mut RunCtx::serial(),
                &load,
                Time::from_ps(200.0),
                ns(400.0),
            )
            .unwrap();
        // The rail must swing above the new steady state (overshoot).
        let new_ss = pdn.steady_state(Current::from_a(0.2)).volts();
        assert!(v.max_over(ns(50.0), ns(150.0)) > new_ss + 0.02);
    }

    #[test]
    fn coarse_dt_rejected() {
        let pdn = LumpedPdn::typical_90nm_package();
        let load = Waveform::constant(1.0);
        // Period ≈ 19.9 ns; dt = 2 ns gives < 20 points per period.
        assert!(pdn
            .transient(&mut RunCtx::serial(), &load, ns(2.0), ns(100.0))
            .is_err());
        assert!(pdn
            .transient(&mut RunCtx::serial(), &load, Time::ZERO, ns(100.0))
            .is_err());
        assert!(pdn
            .transient(
                &mut RunCtx::serial(),
                &load,
                Time::from_ps(100.0),
                Time::ZERO
            )
            .is_err());
    }
}
