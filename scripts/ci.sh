#!/usr/bin/env bash
# The full local CI gate: format, lint, build, test.
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> deprecated-variant call gate"
# The pre-RunCtx entry points are #[deprecated] one-line shims; nothing
# internal may call them except the shims themselves (same file) and
# the equivalence tests under tests/. The patterns are paren-anchored
# so e.g. `measure_with_rng(` does not match `measure_with(`.
deprecated_calls=$(grep -rn \
    -e 'run_on(' -e 'run_observed(' -e 'run_dual_observed(' \
    -e 'run_dual_observed_on(' -e 'measure_with(' \
    -e 'measure_detailed_with(' -e 'measured_skew_with(' \
    -e 'run_measures_with(' -e 'monte_carlo_yield_on(' \
    -e 'array_characteristic_on(' -e 'trim_for_corner_on(' \
    -e 'step_observed(' -e 'trim_observed(' -e 'transient_observed(' \
    --include='*.rs' crates/*/src src examples \
    | grep -v 'pub fn ' \
    | grep -v 'note = ' \
    || true)
if [ -n "$deprecated_calls" ]; then
    echo "internal code calls a deprecated pre-RunCtx variant:" >&2
    echo "$deprecated_calls" >&2
    exit 1
fi

echo "==> catch_unwind containment gate"
# Panic isolation lives in exactly one place: the engine's per-job
# catch_unwind in run_batch_isolated. Everywhere else a panic must
# propagate (or be a structured error), so graceful degradation cannot
# silently spread through the tree.
unwind_calls=$(grep -rn 'catch_unwind(' \
    --include='*.rs' crates src examples tests \
    | grep -v '^crates/engine/' \
    || true)
if [ -n "$unwind_calls" ]; then
    echo "catch_unwind outside crates/engine:" >&2
    echo "$unwind_calls" >&2
    exit 1
fi

echo "==> println-telemetry gate"
# Library code never prints: telemetry flows through psnt-obs sinks
# (events, metrics, spans), so it is structured, streamable and
# maskable. Binaries under src/bin/ own stdout; everything else in
# crates/*/src must not write to the terminal.
print_calls=$(grep -rn \
    -e 'println!' -e 'eprintln!' -e 'print!(' -e 'eprint!(' -e 'dbg!(' \
    --include='*.rs' crates/*/src \
    | grep -v '/src/bin/' \
    | grep -v '^crates/obs/src/' \
    || true)
if [ -n "$print_calls" ]; then
    echo "print-style telemetry outside psnt-obs sinks and src/bin/:" >&2
    echo "$print_calls" >&2
    exit 1
fi

echo "==> batch hot-loop allocation gate"
# The 64-lane batch kernels must not allocate per instance on their hot
# paths. crates/core/src/lanes.rs is barred from owning `Vec<` entirely
# (its lane state is fixed [f64; 64] planes); the event kernel's marked
# hot region in crates/netlist/src/batch.rs (schedule/apply/evaluate/
# capture) may index pre-sized buffers but never mention `Vec<`.
lanes_vec=$(grep -n 'Vec<' crates/core/src/lanes.rs || true)
if [ -n "$lanes_vec" ]; then
    echo "Vec< in crates/core/src/lanes.rs (bit-parallel lane kernel must stay allocation-free):" >&2
    echo "$lanes_vec" >&2
    exit 1
fi
batch_hot_vec=$(sed -n '/BATCH HOT LOOP START/,/BATCH HOT LOOP END/p' \
    crates/netlist/src/batch.rs | grep -n 'Vec<' || true)
if [ -n "$batch_hot_vec" ]; then
    echo "Vec< inside the batch.rs hot-loop region (between the BATCH HOT LOOP markers):" >&2
    echo "$batch_hot_vec" >&2
    exit 1
fi

echo "==> sim-time purity gate (crates/control)"
# Controllers are sim-time pure: decisions are functions of observed
# frames and their own state, never wall-clock time. Any Instant::now
# (or SystemTime) in the control crate breaks closed-loop determinism.
control_clock=$(grep -rn -e 'Instant::now' -e 'SystemTime' \
    --include='*.rs' crates/control || true)
if [ -n "$control_clock" ]; then
    echo "wall-clock access inside crates/control (controllers must be sim-time pure):" >&2
    echo "$control_clock" >&2
    exit 1
fi

echo "==> supervisor-path unwrap gate"
# The supervision path degrades through structured errors
# (`WorkloadError::Interrupted`, `ScanError::Interrupted`,
# `WorkloadError::Checkpoint`) — it must never panic on the way down.
# Non-test code in the supervision-critical files is barred from bare
# `.unwrap()`; test modules (everything at and below the `#[cfg(test)]`
# marker) are exempt.
sup_unwraps=""
for f in crates/sup/src/lib.rs crates/ctx/src/lib.rs \
         crates/workload/src/checkpoint.rs crates/workload/src/campaign.rs \
         crates/workload/src/mitigated.rs crates/workload/src/stepper.rs \
         crates/scan/src/campaign.rs crates/engine/src/batch.rs \
         crates/bench/src/checkpointed.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(\)/{print FILENAME ":" FNR ": " $0}' "$f")
    if [ -n "$hits" ]; then
        sup_unwraps="${sup_unwraps}${hits}
"
    fi
done
if [ -n "$sup_unwraps" ]; then
    echo "bare .unwrap() in supervision-path non-test code:" >&2
    echo "$sup_unwraps" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo bench --no-run"
# Benches must always compile, even when nobody runs them.
cargo bench --no-run

echo "==> engine suite under PSNT_JOBS=4"
# The determinism contract, exercised with a real worker pool: the
# engine's own tests plus the end-to-end parallel proptests.
PSNT_JOBS=4 cargo test -q -p psnt-engine
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test parallel

echo "==> context-equivalence proptests under PSNT_JOBS=4"
# The RunCtx refactor contract: every deprecated shim is bit-identical
# to the ctx path, including record-for-record telemetry streams.
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test ctx_equiv

echo "==> kernel-equivalence proptests under PSNT_JOBS=4"
# The optimized-kernel contract: reset() reuse, the delay cache and
# selective tracing are bit-identical to the naive kernel.
PSNT_JOBS=4 cargo test -q -p psnt-netlist --test kernel_equiv

echo "==> fault suite under PSNT_JOBS=4"
# The fault-injection contract: empty plans are invisible, degraded
# campaigns and bounded retries are worker-count independent.
PSNT_JOBS=4 cargo test -q -p psnt-fault
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test fault_equiv

echo "==> batch bit-identity suite under PSNT_JOBS=4"
# The bit-parallel batching contract: every lane of the 64-wide event
# kernel and the batched Monte-Carlo is bit-identical to the scalar
# reference — healthy, per-lane-faulted, ragged tails, any job count.
PSNT_JOBS=4 cargo test -q -p psnt-netlist batch
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test batch_equiv

echo "==> workload suite under PSNT_JOBS=4"
# The chip-scale workload contract: traffic traces, delta-solve
# chains and streamed campaigns are worker-count independent.
PSNT_JOBS=4 cargo test -q -p psnt-workload

echo "==> control + stepper-equivalence suites under PSNT_JOBS=4"
# The co-simulation refactor contract: the batch entry points are
# stepper drivers bit-identical to the fused loops they replaced, and
# the closed control loop is stable and deterministic at every tested
# code latency.
PSNT_JOBS=4 cargo test -q -p psnt-control
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test stepper_equiv
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test control_loop

echo "==> supervision + resume suites under PSNT_JOBS=4"
# The supervision contract: cooperative interrupts are structured and
# lossless, and an interrupted-then-resumed run is bit-identical to an
# uninterrupted one at jobs ∈ {1, 4}.
PSNT_JOBS=4 cargo test -q -p psnt-sup
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test supervision_resume

echo "==> chaos soak under PSNT_JOBS=4 (hard timeout)"
# Randomized combinations of every harness fault against the
# supervised workload: no hangs (the timeout below makes a hang a hard
# failure), no lost partials, clean resume. 600 s is ~50x the observed
# wall clock of the suite.
PSNT_JOBS=4 timeout 600 cargo test -q -p psn-thermometer --test chaos_soak

echo "==> bounded-memory gate (streamed 256-site campaign)"
# The streaming contract: a full 256-site campaign through the
# bounded channel keeps peak RSS flat (VmHWM < 512 MiB, own test
# binary so the number reflects only this campaign).
cargo test -q --release -p psnt-workload --test bounded_memory

echo "==> perf-regression gate (soft)"
# Re-times the suites and diffs against the committed baseline. A
# regression past the threshold only WARNS here — shared/1-vCPU CI
# boxes time benches too noisily to hard-fail on — but an unreadable
# or malformed snapshot (bench-diff exit 2) fails the build.
fresh_bench="$(mktemp)"
scripts/bench_snapshot.sh "$fresh_bench" >/dev/null
baseline=$(ls BENCH_PR*.json | sort -V | tail -1)
rc=0
cargo run -q --release -p psnt-bench --bin bench-diff -- \
    "$baseline" "$fresh_bench" --threshold 25% || rc=$?
rm -f "$fresh_bench"
case "$rc" in
    0) ;;
    1) echo "WARNING: benches regressed past 25% vs $baseline (soft gate, not failing)" >&2 ;;
    *) echo "bench-diff failed (exit $rc)" >&2; exit 1 ;;
esac

echo "CI green."
