#!/usr/bin/env bash
# The full local CI gate: format, lint, build, test.
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> engine suite under PSNT_JOBS=4"
# The determinism contract, exercised with a real worker pool: the
# engine's own tests plus the end-to-end parallel proptests.
PSNT_JOBS=4 cargo test -q -p psnt-engine
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test parallel

echo "CI green."
