#!/usr/bin/env bash
# The full local CI gate: format, lint, build, test.
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo bench --no-run"
# Benches must always compile, even when nobody runs them.
cargo bench --no-run

echo "==> engine suite under PSNT_JOBS=4"
# The determinism contract, exercised with a real worker pool: the
# engine's own tests plus the end-to-end parallel proptests.
PSNT_JOBS=4 cargo test -q -p psnt-engine
PSNT_JOBS=4 cargo test -q -p psn-thermometer --test parallel

echo "==> kernel-equivalence proptests under PSNT_JOBS=4"
# The optimized-kernel contract: reset() reuse, the delay cache and
# selective tracing are bit-identical to the naive kernel.
PSNT_JOBS=4 cargo test -q -p psnt-netlist --test kernel_equiv

echo "CI green."
