#!/usr/bin/env bash
# Runs the Criterion suites and writes the median estimates to a
# machine-readable JSON snapshot at the repo root (BENCH_PR3.json by
# default) — the perf trajectory future PRs diff against.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The vendored criterion shim prints one line per benchmark:
#   <name>  time: [<lo> <unit> <median> <unit> <hi> <unit>]
# We parse the median and normalise everything to nanoseconds.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR3.json}"
SUITES=(paper kernels)

parse_medians() {
    # stdin: cargo bench stdout → "name <median ns>" lines.
    awk '
        /time: \[/ {
            name = $1
            match($0, /\[[^]]*\]/)
            inner = substr($0, RSTART + 1, RLENGTH - 2)
            n = split(inner, f, " ")
            # pairs: lo unit median unit hi unit → median is f[3], f[4].
            val = f[3]; unit = f[4]
            if (unit == "ns")      m = 1
            else if (unit == "µs") m = 1e3
            else if (unit == "ms") m = 1e6
            else                   m = 1e9
            printf "%s %.3f\n", name, val * m
        }'
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for suite in "${SUITES[@]}"; do
    echo "==> cargo bench -p psnt-bench --bench $suite" >&2
    cargo bench -p psnt-bench --bench "$suite" 2>/dev/null | tee /dev/stderr \
        | parse_medians >"$tmpdir/$suite.txt"
done

{
    echo "{"
    echo "  \"generated_by\": \"scripts/bench_snapshot.sh\","
    echo "  \"units\": \"median nanoseconds per iteration\","
    echo "  \"suites\": {"
    for si in "${!SUITES[@]}"; do
        suite="${SUITES[$si]}"
        echo "    \"$suite\": {"
        n=$(wc -l <"$tmpdir/$suite.txt")
        i=0
        while read -r name median; do
            i=$((i + 1))
            comma=","
            [ "$i" -eq "$n" ] && comma=""
            echo "      \"$name\": $median$comma"
        done <"$tmpdir/$suite.txt"
        if [ "$si" -eq $((${#SUITES[@]} - 1)) ]; then
            echo "    }"
        else
            echo "    },"
        fi
    done
    echo "  }"
    echo "}"
} >"$OUT"

echo "wrote $OUT" >&2
