//! In-tree stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate
//! provides the subset of the criterion API the workspace's benches
//! use: `Criterion::{bench_function, benchmark_group}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It really measures: each benchmark is warmed up, then timed over
//! `sample_size` samples whose iteration counts are scaled so a sample
//! takes a measurable amount of wall-clock time. Median and min/max
//! per-iteration times are printed in a criterion-like one-line format.
//! There is no statistical regression analysis and no HTML report.

use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one
/// routine call per setup call regardless of variant, so the variants
/// only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup runs per iteration.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Accumulated measured time of the routine alone.
    elapsed: Duration,
    /// Iterations the harness asks the routine to run this sample.
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the sample's iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over per-iteration inputs built by `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        run_benchmark(name, self.sample_size, body);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks with its own sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&format!("{}/{name}", self.name), samples, body);
        self
    }

    /// Ends the group (kept for API compatibility; groups need no
    /// teardown here).
    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut body: F) {
    // Calibration pass: one iteration, to size the per-sample budget.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    body(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));

    // Aim for ~20ms of measured work per sample, capped for slow bodies.
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        body(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
