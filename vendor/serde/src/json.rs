//! JSON rendering and parsing for the [`Value`](crate::Value) data model.
//!
//! This is the wire format of the workspace's telemetry (JSON-Lines) and
//! of the serialization round-trip tests. Numbers render with Rust's
//! shortest-roundtrip float formatting, so `parse(render(v))`
//! reconstructs every finite value exactly.

use crate::{DeError, Deserialize, Serialize, Value};

/// Serializes any [`Serialize`] type to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    render(&value.to_value())
}

/// Converts any [`Serialize`] type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`DeError`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, DeError> {
    T::from_value(&parse(text)?)
}

/// Reconstructs a [`Deserialize`] type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`DeError`] on shape mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, DeError> {
    T::from_value(value)
}

/// Renders a [`Value`] tree as compact JSON.
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Debug formatting is shortest-roundtrip and always keeps
                // a decimal point or exponent, distinguishing floats from
                // integers on the wire.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`DeError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            None => Err(DeError::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(DeError::new(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(DeError::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(DeError::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| DeError::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| DeError::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(DeError::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(DeError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| DeError::new(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| DeError::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| DeError::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("PSN \"probe\"\n".into())),
            ("count".into(), Value::U64(7)),
            ("delta".into(), Value::F64(-0.125)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            (
                "nested".into(),
                Value::Map(vec![("k".into(), Value::I64(-3))]),
            ),
        ]);
        let text = render(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78, f64::MAX] {
            let text = render(&Value::F64(x));
            match parse(&text).unwrap() {
                Value::F64(back) => assert_eq!(back, x, "text {text}"),
                other => panic!("expected float, got {other:?} from {text}"),
            }
        }
    }

    #[test]
    fn floats_stay_floats_on_the_wire() {
        // A whole-valued float must not collapse into an integer.
        assert_eq!(render(&Value::F64(5.0)), "5.0");
        assert_eq!(parse("5.0").unwrap(), Value::F64(5.0));
        assert_eq!(parse("5").unwrap(), Value::U64(5));
    }

    #[test]
    fn escapes() {
        let v = Value::Str("tab\there \\ / \u{0007}".into());
        assert_eq!(parse(&render(&v)).unwrap(), v);
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn typed_helpers() {
        let json = to_string(&vec![(1u32, 2.5f64), (3, 4.5)]);
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, vec![(1, 2.5), (3, 4.5)]);
    }
}
