//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! a compact serialization framework with the same *spelling* as serde —
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}`, `#[serde(default)]`, `#[serde(skip, default = "path")]`
//! — over a simplified data model: values serialize into the
//! self-describing [`Value`] tree, which renders to and parses from JSON
//! (see [`json`]).
//!
//! The derive macros live in the sibling `serde_derive` proc-macro crate
//! and are re-exported here, exactly like real serde's `derive` feature.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A self-describing serialized value — the data model every
/// [`Serialize`] implementation targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (serialized `Option::None`, non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`]; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as a u64, accepting non-negative integer variants.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as an i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            _ => None,
        }
    }

    /// The value as a str, for [`Value::Str`] only.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, for [`Value::Bool`] only.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a slice, for [`Value::Seq`] only.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// The canonical "expected X, found Y" shape.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError::new(format!("expected {what}, found {found:?}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from the serialized form.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive implementations.
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", v))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<($($name,)+), DeError> {
                let items = v.as_seq().ok_or_else(|| DeError::expected("tuple", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of length {expected}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u8, 2.5f64);
        assert_eq!(<(u8, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<String> = Some("x".into());
        assert_eq!(Option::<String>::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn narrowing_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
