//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest the workspace uses: the
//! [`Strategy`] trait over numeric ranges / tuples / `Just` /
//! `any::<T>()` / character-class string patterns, `collection::vec`,
//! `prop_oneof!`, and the `proptest! { #[test] fn name(x in strat) }`
//! harness with `prop_assert*` / `prop_assume!`.
//!
//! Shrinking is intentionally NOT implemented — on failure the harness
//! reports the seed-deterministic failing case and its message. Cases
//! are generated from a seed derived from the test's module path, so a
//! failure reproduces exactly on re-run.

use rand::Rng;

/// The RNG handed to strategies; seeded per test from the test name.
pub type TestRng = rand::rngs::StdRng;

// Re-exported so the `proptest!` macro can seed a [`TestRng`] without
// requiring `rand` in the caller's dependency list.
pub use rand;

/// Builds the deterministic RNG for a named test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(h)
}

/// How a generated case ended, other than success.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; carries the rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError::Fail(message)
    }
}

/// Per-block configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical whole-domain strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws a value from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Uniform choice between boxed alternative strategies; built by
/// `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy; keeps `prop_oneof!` free of explicit casts.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` is a strategy over a small regex subset: literal characters,
/// `[abc]` character classes, and `{n}` / `{n,m}` repeat counts, e.g.
/// `"[01x]{7}"` or `"[01]{1,16}"`.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let end = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let class = chars[i + 1..end].to_vec();
            i = end + 1;
            class
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        assert!(!class.is_empty(), "empty character class in {pattern:?}");

        // Optional {n} or {n,m} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let end = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..end].iter().collect();
            i = end + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("repeat lower bound"),
                    b.trim().parse::<usize>().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact length or a
    /// half-open / inclusive range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The names tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, e.g.
/// `proptest! { #[test] fn prop(x in 0..10u32) { prop_assert!(x < 10); } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut case: u32 = 0;
                let mut attempts: u32 = 0;
                while case < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20),
                        "proptest `{}`: too many prop_assume! rejections",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), case, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), lhs, rhs,
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs,
            )));
        }
    }};
}

/// Asserts two expressions differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_respects_class_and_count() {
        let mut rng = crate::rng_for("pattern_test");
        for _ in 0..50 {
            let s = crate::Strategy::generate("[01x]{7}", &mut rng);
            assert_eq!(s.len(), 7);
            assert!(s.chars().all(|c| "01x".contains(c)), "{s}");
            let t = crate::Strategy::generate("[01]{1,16}", &mut rng);
            assert!((1..=16).contains(&t.len()), "{t}");
            assert!(t.chars().all(|c| "01".contains(c)), "{t}");
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        let strat = crate::collection::vec(0u32..100, 1..10);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #[test]
        fn harness_draws_in_range(x in 3usize..9, y in 0.25..0.75f64, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
            prop_assert_ne!(v, 0);
        }
    }
}
