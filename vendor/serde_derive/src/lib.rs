//! Derive macros for the in-tree serde stand-in.
//!
//! Built on the raw `proc_macro` API (no syn/quote — the build
//! environment has no crates.io access). The macros walk the item's
//! token stream directly, then emit the trait impl as a code string and
//! re-parse it. Supported shapes are exactly the ones this workspace
//! derives on: non-generic structs (named, tuple, unit) and enums with
//! unit, tuple, or struct variants, plus the field attributes
//! `#[serde(default)]` and `#[serde(skip, default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    /// `#[serde(skip)]`: never serialized, always rebuilt from a default.
    skip: bool,
    /// `#[serde(default)]` or `#[serde(default = "path")]`; the path is
    /// stored verbatim when present.
    default: Default_,
}

enum Default_ {
    None,
    Trait,
    Path(String),
}

impl Field {
    fn default_expr(&self) -> Option<String> {
        match &self.default {
            Default_::None if self.skip => Some("::std::default::Default::default()".to_string()),
            Default_::None => None,
            Default_::Trait => Some("::std::default::Default::default()".to_string()),
            Default_::Path(p) => Some(format!("{p}()")),
        }
    }
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes `#[...]` attributes, returning parsed `#[serde(...)]`
    /// arguments (doc comments and foreign attributes are discarded).
    fn take_attrs(&mut self) -> Vec<SerdeArg> {
        let mut args = Vec::new();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.bump();
            let Some(TokenTree::Group(g)) = self.bump() else {
                panic!("expected [...] after #");
            };
            let mut inner = Cursor::new(g.stream());
            if let Some(TokenTree::Ident(name)) = inner.peek() {
                if name.to_string() == "serde" {
                    inner.bump();
                    if let Some(TokenTree::Group(list)) = inner.bump() {
                        args.extend(parse_serde_args(list.stream()));
                    }
                }
            }
        }
        args
    }

    /// Consumes `pub` / `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.bump();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.bump();
                    }
                }
            }
        }
    }

    /// Skips tokens until a `,` at angle-bracket depth 0 (the comma is
    /// consumed). Used to step over field types, which the generated
    /// code never needs to restate.
    fn skip_past_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.bump() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

enum SerdeArg {
    Skip,
    Default(Default_),
}

fn parse_serde_args(stream: TokenStream) -> Vec<SerdeArg> {
    let mut cursor = Cursor::new(stream);
    let mut args = Vec::new();
    while let Some(tok) = cursor.bump() {
        let TokenTree::Ident(id) = tok else { continue };
        match id.to_string().as_str() {
            "skip" => args.push(SerdeArg::Skip),
            "default" => {
                let mut default = Default_::Trait;
                if let Some(TokenTree::Punct(p)) = cursor.peek() {
                    if p.as_char() == '=' {
                        cursor.bump();
                        let Some(TokenTree::Literal(lit)) = cursor.bump() else {
                            panic!("expected string after `default =`");
                        };
                        let text = lit.to_string();
                        default = Default_::Path(text.trim_matches('"').to_string());
                    }
                }
                args.push(SerdeArg::Default(default));
            }
            other => panic!("unsupported serde attribute `{other}`"),
        }
    }
    args
}

fn field_from_attrs(name: Option<String>, attrs: Vec<SerdeArg>) -> Field {
    let mut field = Field {
        name,
        skip: false,
        default: Default_::None,
    };
    for arg in attrs {
        match arg {
            SerdeArg::Skip => field.skip = true,
            SerdeArg::Default(d) => field.default = d,
        }
    }
    field
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let attrs = cursor.take_attrs();
        cursor.skip_visibility();
        let Some(TokenTree::Ident(name)) = cursor.bump() else {
            panic!("expected field name");
        };
        match cursor.bump() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("expected `:` after field name"),
        }
        cursor.skip_past_comma();
        fields.push(field_from_attrs(Some(name.to_string()), attrs));
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let attrs = cursor.take_attrs();
        cursor.skip_visibility();
        if cursor.at_end() {
            break;
        }
        cursor.skip_past_comma();
        fields.push(field_from_attrs(None, attrs));
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.take_attrs();
        let Some(TokenTree::Ident(name)) = cursor.bump() else {
            panic!("expected variant name");
        };
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                cursor.bump();
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.bump();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = cursor.peek() {
            match p.as_char() {
                ',' => {
                    cursor.bump();
                }
                '=' => panic!("explicit enum discriminants are not supported"),
                _ => {}
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.take_attrs();
    cursor.skip_visibility();
    let kind = loop {
        match cursor.bump() {
            Some(TokenTree::Ident(id)) => {
                let id = id.to_string();
                if id == "struct" || id == "enum" {
                    break id;
                }
            }
            Some(_) => {}
            None => panic!("derive input is not a struct or enum"),
        }
    };
    let Some(TokenTree::Ident(name)) = cursor.bump() else {
        panic!("expected type name after `{kind}`");
    };
    let name = name.to_string();
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the in-tree serde derive");
        }
    }
    if kind == "enum" {
        let Some(TokenTree::Group(g)) = cursor.bump() else {
            panic!("expected enum body");
        };
        return Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        };
    }
    let shape = match cursor.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(parse_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        None => Shape::Unit,
        _ => panic!("unsupported struct body"),
    };
    Item::Struct { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut entries = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        let name = f.name.as_ref().expect("named field");
        entries.push_str(&format!(
            "(\"{name}\".to_string(), ::serde::Serialize::to_value({})),",
            access(name)
        ));
    }
    format!("::serde::Value::Map(vec![{entries}])")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Shape::Tuple(fields) => {
                    let items: String = (0..fields.len())
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{items}])")
                }
                Shape::Named(fields) => ser_named_fields(fields, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                    )),
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("f{i}")).collect();
                        let payload = if fields.len() == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![\
                                 (\"{vname}\".to_string(), {payload})]),",
                            binds.join(",")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let name = f.name.as_deref().expect("named field");
                                if f.skip {
                                    format!("{name}: _")
                                } else {
                                    name.to_string()
                                }
                            })
                            .collect();
                        let payload = ser_named_fields(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![\
                                 (\"{vname}\".to_string(), {payload})]),",
                            binds.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

/// A struct literal body `f1: ..., f2: ...` reading named fields out of
/// a `&[(String, Value)]` binding called `entries`.
fn de_named_fields(type_name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let name = f.name.as_ref().expect("named field");
        if f.skip {
            inits.push_str(&format!(
                "{name}: {},",
                f.default_expr().expect("skip fields always have a default")
            ));
            continue;
        }
        let missing = match f.default_expr() {
            Some(expr) => expr,
            None => format!(
                "return ::std::result::Result::Err(::serde::DeError::new(\
                     \"missing field `{name}` in {type_name}\"))"
            ),
        };
        inits.push_str(&format!(
            "{name}: match entries.iter().find(|e| e.0 == \"{name}\") {{\
                 ::std::option::Option::Some(e) => ::serde::Deserialize::from_value(&e.1)?,\
                 ::std::option::Option::None => {missing},\
             }},"
        ));
    }
    inits
}

/// An expression building `ctor(...)` from a `&Value` binding called
/// `payload` for a tuple shape with `n` fields.
fn de_tuple_payload(ctor: &str, what: &str, n: usize) -> String {
    if n == 1 {
        return format!("{ctor}(::serde::Deserialize::from_value(payload)?)");
    }
    let items: String = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
        .collect();
    format!(
        "match payload {{\
             ::serde::Value::Seq(items) if items.len() == {n} => {ctor}({items}),\
             other => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{n}-element sequence for {what}\", other)),\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("let _ = value; ::std::result::Result::Ok({name})"),
                Shape::Tuple(fields) if fields.len() == 1 => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    format!(
                        "let payload = value;\
                         ::std::result::Result::Ok({})",
                        de_tuple_payload(name, &format!("tuple struct {name}"), n)
                    )
                }
                Shape::Named(fields) => format!(
                    "match value {{\
                         ::serde::Value::Map(entries) => ::std::result::Result::Ok({name} {{ {} }}),\
                         other => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"map for struct {name}\", other)),\
                     }}",
                    de_named_fields(name, fields)
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Shape::Tuple(fields) => {
                        let expr = de_tuple_payload(
                            &format!("{name}::{vname}"),
                            &format!("variant {name}::{vname}"),
                            fields.len(),
                        );
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({expr}),"
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits = de_named_fields(&format!("{name}::{vname}"), fields);
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match payload {{\
                                 ::serde::Value::Map(entries) => \
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\
                                         \"map for variant {name}::{vname}\", other)),\
                             }},"
                        ));
                    }
                }
            }
            let body = format!(
                "match value {{\
                     ::serde::Value::Str(s) => match s.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\
                     }},\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\
                         let (variant, payload) = (&entries[0].0, &entries[0].1);\
                         match variant.as_str() {{\
                             {data_arms}\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\
                         }}\
                     }}\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"enum {name}\", other)),\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\
         }}"
    )
}
