//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the (small) subset of the rand 0.8 API the workspace actually uses:
//! [`Rng::gen_range`] over half-open and inclusive numeric ranges,
//! [`Rng::gen_bool`], and a seedable deterministic generator
//! ([`rngs::StdRng`], an xoshiro256** instance seeded via SplitMix64).
//!
//! Determinism matters more than statistical perfection here: every
//! consumer seeds explicitly through [`SeedableRng::seed_from_u64`], so
//! results are reproducible across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a range can be sampled over.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` built from the top 53 bits of a word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `state` via
    /// SplitMix64 (the standard xoshiro seeding recipe).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator — the stand-in for rand's
    /// `StdRng`. Not cryptographically secure; statistically solid and,
    /// crucially, reproducible for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&y));
            let z: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
