//! # psn-thermometer
//!
//! A Rust reproduction of *“A fully digital power supply noise
//! thermometer”* (M. Graziano and M. D. Vittori, IEEE SOCC 2009,
//! DOI 10.1109/SOCCON.2009.5398066): a standard-cell-based sensor that
//! digitises the instantaneous on-die supply/ground voltage into a
//! flash-ADC-like thermometer code, replicable across a die like a scan
//! chain.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`cells`] (`psnt-cells`) — standard-cell timing substrate
//!   (alpha-power delay physics, setup/metastability flip-flop);
//! * [`netlist`] (`psnt-netlist`) — gate-level netlists, event-driven
//!   simulation, STA;
//! * [`pdn`] (`psnt-pdn`) — supply-noise waveforms, RLC package model,
//!   on-die power grid, workloads;
//! * [`sensor`] (`psnt-core`) — the paper's sensor element, thermometer
//!   array, pulse generator, control FSM, full system, calibration and
//!   related-work baselines;
//! * [`scan`] (`psnt-scan`) — multi-site placement, serial readout,
//!   equivalent-time sampling, campaigns;
//! * [`workload`] (`psnt-workload`) — chip-scale workload engine:
//!   seed-split NoC-mesh traffic driving a cycle-stepped co-simulation
//!   core ([`CycleStepper`](psnt_workload::CycleStepper)) with
//!   incremental sparse PDN solves and streamed 256+-site campaigns;
//! * [`control`] (`psnt-control`) — closed-loop droop mitigation:
//!   [`Mitigator`](psnt_control::Mitigator) policies (threshold clock
//!   stretch / load throttle / supply boost, PI boost with anti-windup)
//!   observing thermometer codes at cycle `t` and actuating cycle
//!   `t + 1` through a sanctioned [`Actuation`](psnt_control::Actuation)
//!   interface;
//! * [`analysis`] (`psnt-analysis`) — statistics, ADC linearity metrics,
//!   fidelity scoring, report tables;
//! * [`obs`] (`psnt-obs`) — telemetry: metrics registry, structured
//!   JSON-Lines event log, span timing, run manifests;
//! * [`engine`] (`psnt-engine`) — deterministic parallel execution:
//!   a scoped worker pool whose results are bit-identical at any
//!   worker count;
//! * [`fault`] (`psnt-fault`) — seeded deterministic fault injection:
//!   serde-able [`FaultPlan`](psnt_fault::FaultPlan)s of stuck-ats,
//!   delay scalings, bit upsets, supply glitches and transients,
//!   applied inside the event kernel;
//! * [`sup`] (`psnt-sup`) — run supervision: cooperative
//!   [`CancelToken`](psnt_sup::CancelToken)s, wall/sim/event
//!   [`RunBudget`](psnt_sup::RunBudget)s and structured
//!   [`Interrupt`](psnt_sup::Interrupt)ion, checked cheaply at every
//!   layer's loop boundaries;
//! * [`ctx`] (`psnt-ctx`) — the unified execution context
//!   ([`RunCtx`](psnt_ctx::RunCtx)): engine + observer + reusable
//!   simulator pool + seed policy + supervisor, threaded through every
//!   layer.
//!
//! # Quickstart
//!
//! ```
//! use psn_thermometer::prelude::*;
//!
//! // Build the paper's sensor and measure a 60 mV droop.
//! let sensor = SensorSystem::new(SensorConfig::default())?;
//! let m = sensor.measure_at(
//!     &Waveform::constant(0.94),
//!     &Waveform::constant(0.0),
//!     Time::from_ns(10.0),
//! )?;
//! println!("code {} → VDD-n in {:?}", m.hs_code, m.hs_interval);
//! assert_eq!(m.hs_code.to_string(), "0000111");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use psnt_analysis as analysis;
pub use psnt_cells as cells;
pub use psnt_control as control;
pub use psnt_core as sensor;
pub use psnt_ctx as ctx;
pub use psnt_engine as engine;
pub use psnt_fault as fault;
pub use psnt_netlist as netlist;
pub use psnt_obs as obs;
pub use psnt_pdn as pdn;
pub use psnt_scan as scan;
pub use psnt_sup as sup;
pub use psnt_workload as workload;

/// The most common imports for working with the sensor.
pub mod prelude {
    pub use psnt_cells::process::{ProcessCorner, Pvt};
    pub use psnt_cells::units::{Capacitance, Current, Frequency, Resistance, Time, Voltage};
    pub use psnt_control::{Actuation, Mitigator};
    pub use psnt_core::code::ThermometerCode;
    pub use psnt_core::element::{RailMode, SenseElement};
    pub use psnt_core::policy::{DvfsGovernor, GovernorAction, NoiseAlarm};
    pub use psnt_core::pulsegen::{DelayCode, PulseGenerator};
    pub use psnt_core::system::{Measurement, SensorConfig, SensorSystem};
    pub use psnt_core::thermometer::{CapacitorLadder, ThermometerArray};
    pub use psnt_ctx::RunCtx;
    pub use psnt_engine::{Engine, RetryPolicy};
    pub use psnt_fault::{Fault, FaultPlan};
    pub use psnt_obs::{Observer, RunManifest};
    pub use psnt_pdn::sources::{supply_step, SupplyNoiseBuilder};
    pub use psnt_pdn::waveform::Waveform;
    pub use psnt_pdn::workload::WorkloadBuilder;
    pub use psnt_scan::campaign::Campaign;
    pub use psnt_scan::floorplan::{Floorplan, Placement};
    pub use psnt_sup::{CancelToken, RunBudget, Supervised, Supervisor};
    pub use psnt_workload::{NocWorkload, NocWorkloadConfig, TrafficPattern};
}
