//! Scan-chain use case: instrument every tile of a CUT power grid with a
//! sensor array, run a measurement campaign under a localised hot spot,
//! and print the resulting spatial noise map — the paper's "measures in
//! many points of the CUT … as scan chains are for fault verification".
//!
//! ```sh
//! cargo run --example noise_map
//! ```

use psn_thermometer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6×6 on-die grid fed from the four corners.
    let side = 6;
    let grid = psn_thermometer::pdn::grid::PowerGrid::corner_fed(
        side,
        Voltage::from_v(1.05),
        Resistance::from_milliohms(60.0),
        Resistance::from_milliohms(15.0),
    )?;
    let floorplan = Floorplan::new(grid, Placement::EveryTile)?;
    let campaign = Campaign::new(floorplan, SensorConfig::default())?;

    // An execution-unit cluster near the centre ramps up mid-run.
    let mut loads = vec![Waveform::constant(0.03); side * side];
    for hot in [14usize, 15, 20, 21] {
        loads[hot] = Waveform::from_points(vec![
            (Time::ZERO, 0.05),
            (Time::from_ns(80.0), 0.45),
            (Time::from_ns(160.0), 0.45),
            (Time::from_ns(240.0), 0.10),
        ])?;
    }

    // The return current flows through a stiffer ground mesh; each
    // site's LOW-SENSE array measures the local bounce simultaneously.
    let gnd_grid = psn_thermometer::pdn::grid::PowerGrid::corner_fed(
        side,
        Voltage::ZERO,
        Resistance::from_milliohms(120.0),
        Resistance::from_milliohms(30.0),
    )?;
    let result = campaign.run_dual(
        &mut RunCtx::serial(),
        &loads,
        Some(&gnd_grid),
        Time::from_ns(10.0),
        Time::from_ns(20.0),
        12,
    )?;
    println!(
        "campaign: {} sites × {} samples; scan chain {} FFs ({} shift cycles/frame)\n",
        result.sites.len(),
        result.instants.len(),
        campaign.chain().len(),
        campaign.chain().shift_cycles(),
    );

    println!("worst thermometer level per tile (7 = clean, 0 = below range):");
    for r in 0..side {
        let row: Vec<String> = (0..side)
            .map(|c| {
                let site = result.sites.iter().find(|s| s.tile == r * side + c);
                site.map_or("·".into(), |s| s.worst_level().to_string())
            })
            .collect();
        println!("   {}", row.join(" "));
    }

    println!("\nworst ground-bounce level per tile (LOW-SENSE arrays):");
    for r in 0..side {
        let row: Vec<String> = (0..side)
            .map(|c| {
                let site = result.sites.iter().find(|s| s.tile == r * side + c);
                site.map_or("·".into(), |s| s.worst_ls_level().to_string())
            })
            .collect();
        println!("   {}", row.join(" "));
    }

    let hotspot = result.hotspot().expect("non-empty campaign");
    println!(
        "\nhotspot: {} (tile {}), worst level {}, worst VDD estimate {}",
        hotspot.name,
        hotspot.tile,
        hotspot.worst_level(),
        hotspot
            .worst_voltage()
            .map_or("below range".to_string(), |v| format!("{:.3} V", v.volts())),
    );

    // Show one serialized frame, like a tester would see it.
    let mid = result.frames.len() / 2;
    println!(
        "\nscan frame @ {:.0} ns (first 70 bits): {}",
        result.instants[mid].nanoseconds(),
        result.frames[mid]
            .to_string()
            .chars()
            .take(70)
            .collect::<String>()
    );
    Ok(())
}
