//! Run the paper's entire system — control FSM, pulse generator and
//! 7-bit array — as one flattened standard-cell netlist in the
//! event-driven simulator, and dump the Fig. 9 waveforms as a VCD file
//! for any waveform viewer.
//!
//! ```sh
//! cargo run --example gate_level_demo
//! gtkwave sensor_system.vcd   # optional
//! ```

use psn_thermometer::cells::logic::Logic;
use psn_thermometer::netlist::sim::Simulator;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::element::RailMode;
use psn_thermometer::sensor::gate_level::GateLevelSystem;
use psn_thermometer::sensor::thermometer::ThermometerArray;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = GateLevelSystem::paper()?;
    println!("flattened system: {}", system.netlist().summary());
    println!("power domains: {:?}", system.netlist().domains());

    // Two measures with the rail stepped 1.0 V → 0.9 V, delay code 011.
    let code = DelayCode::new(3)?;
    let rails = [Voltage::from_v(1.0), Voltage::from_v(0.9)];
    let measures = system.run_measures(&mut RunCtx::serial(), code, &rails)?;

    let behavioural = ThermometerArray::paper(RailMode::Supply);
    println!("\nmeasure | rail    | gate-level code | pin skew  | behavioural check");
    println!("--------+---------+-----------------+-----------+------------------");
    for (k, (m, rail)) in measures.iter().zip(&rails).enumerate() {
        let check = behavioural.measure(*rail, m.skew(), &Pvt::typical());
        println!(
            "   {}    | {:.2} V  |     {}     | {:6.1} ps | {} ({})",
            k + 1,
            rail.volts(),
            m.code,
            m.skew().picoseconds(),
            check,
            if check == m.code { "match" } else { "MISMATCH" },
        );
    }

    // Re-run with tracing and export the VCD.
    let mut sim = Simulator::new(system.netlist(), Voltage::from_v(1.0))?;
    sim.set_domain_supply(system.noisy_domain(), Voltage::from_v(1.0));
    let n = system.netlist();
    let clk = n.net_by_name("clk")?;
    let enable = n.net_by_name("enable")?;
    let start = n.net_by_name("start")?;
    sim.drive(enable, Logic::One, Time::ZERO)?;
    sim.drive(start, Logic::One, Time::ZERO)?;
    for i in 0..3u8 {
        let sel = n.net_by_name(&format!("sel{i}"))?;
        sim.drive(sel, Logic::from(code.value() >> i & 1 == 1), Time::ZERO)?;
    }
    sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(4.0), 12)?;
    sim.run_until(Time::from_ns(24.0));
    sim.set_domain_supply(system.noisy_domain(), Voltage::from_v(0.9));
    sim.run_until(Time::from_ns(50.0));

    let vcd = sim.trace().to_vcd("sensor_system");
    std::fs::write("sensor_system.vcd", &vcd)?;
    println!(
        "\nwrote sensor_system.vcd ({} bytes, {} signals, {} events applied)",
        vcd.len(),
        sim.trace().signal_count(),
        sim.stats().events,
    );
    println!(
        "flip-flop captures: {} ({} setup/hold violations — the SENSE errors that *are* the measurement)",
        sim.stats().ff_captures,
        sim.stats().ff_violations,
    );
    Ok(())
}
