//! Quickstart: build the paper's sensor, run the Fig. 9 two-measure
//! sequence, and decode the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use psn_thermometer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's system: two 7-bit arrays (VDD and GND), delay code 011,
    // 2 ns control clock.
    let mut sensor = SensorSystem::new(SensorConfig::default())?;

    // A supply that steps from the nominal 1.0 V down to 0.9 V — the two
    // "input" noise values of the paper's Fig. 9.
    let vdd = supply_step(
        Voltage::from_v(1.0),
        Voltage::from_v(0.9),
        Time::from_ns(15.0),
        Time::from_us(1.0),
    )?;
    let gnd = Waveform::constant(0.0);

    println!("PREPARE phase output: {}", sensor.hs_prepare_code());
    for m in sensor.run(&mut RunCtx::serial(), &vdd, &gnd, Time::ZERO, 2)? {
        let range = match (m.hs_interval.lower, m.hs_interval.upper) {
            (Some(lo), Some(hi)) => format!("{:.3}–{:.3} V", lo.volts(), hi.volts()),
            _ => "outside the dynamic range".to_string(),
        };
        println!(
            "SENSE @ {:7.2} ns: code {} (level {}) → VDD-n in {}",
            m.at.nanoseconds(),
            m.hs_code,
            m.hs_word.level,
            range,
        );
    }

    // The characteristic behind those codes: per-element thresholds.
    let thresholds = sensor.hs_array().thresholds(
        sensor
            .pulse_generator()
            .skew(sensor.config().hs_code, &sensor.config().pvt),
        &sensor.config().pvt,
    )?;
    println!(
        "\nelement thresholds (delay code {}):",
        sensor.config().hs_code
    );
    for (i, t) in thresholds.iter().enumerate() {
        println!("  element {}: {:.3} V", i + 1, t.volts());
    }
    Ok(())
}
