//! Process-variation-aware configuration: re-trim the delay code per
//! corner so the sensor characteristic stays put — the paper's "can be
//! adapted so that measures are process variation insensitive".
//!
//! ```sh
//! cargo run --example process_trim
//! ```

use psn_thermometer::prelude::*;
use psn_thermometer::sensor::calibration::array_characteristic;
use psn_thermometer::sensor::element::RailMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let array = ThermometerArray::paper(RailMode::Supply);
    let pg = PulseGenerator::paper_table();
    let reference = Pvt::typical();
    let ref_code = DelayCode::new(3)?;
    let mut ctx = RunCtx::serial();
    let ref_ch = array_characteristic(&mut ctx, &array, &pg, ref_code, &reference)?;
    println!(
        "reference (TT, code {ref_code}): range {:.3}–{:.3} V, midpoint {:.3} V\n",
        ref_ch.range.0.volts(),
        ref_ch.range.1.volts(),
        ref_ch.midpoint().volts()
    );

    println!("corner | untrimmed range      | midpoint shift | trimmed code | residual");
    println!("-------+----------------------+----------------+--------------+---------");
    for corner in ProcessCorner::ALL {
        let pvt = Pvt::new(
            corner,
            Voltage::from_v(1.0),
            psn_thermometer::cells::units::Temperature::from_celsius(25.0),
        );
        let untrimmed = array_characteristic(&mut ctx, &array, &pg, ref_code, &pvt)?;
        let shift = untrimmed.midpoint() - ref_ch.midpoint();
        let trim = psn_thermometer::sensor::calibration::trim_for_corner(
            &mut ctx, &array, &pg, ref_code, &reference, &pvt,
        )?;
        println!(
            "  {corner}   | {:.3}–{:.3} V        | {:+7.1} mV     |     {}      | {:5.1} mV",
            untrimmed.range.0.volts(),
            untrimmed.range.1.volts(),
            shift.millivolts(),
            trim.code,
            trim.residual.millivolts(),
        );
    }

    // And the same knob used the other way: deliberately re-ranging a
    // live system to watch an overvoltage.
    let mut sensor = SensorSystem::new(SensorConfig::default())?;
    let vdd = Waveform::constant(1.15);
    let gnd = Waveform::constant(0.0);
    let saturated = sensor.measure_at(&vdd, &gnd, Time::from_ns(10.0))?;
    sensor.set_delay_codes(DelayCode::new(2)?, DelayCode::new(3)?);
    let resolved = sensor.measure_at(&vdd, &gnd, Time::from_ns(10.0))?;
    println!(
        "\ndynamic re-ranging @ 1.15 V: code 011 reads {} (saturated: {}), code 010 reads {} → {:.3}–{:.3} V",
        saturated.hs_code,
        saturated.hs_word.overflow,
        resolved.hs_code,
        resolved.hs_interval.lower.map_or(f64::NAN, |v| v.volts()),
        resolved.hs_interval.upper.map_or(f64::NAN, |v| v.volts()),
    );
    Ok(())
}
