//! Verification use case: capture a periodic supply-noise waveform with
//! equivalent-time sampling and render it as ASCII art next to the
//! ground truth — the paper's "transferred to the output for
//! verification purposes" scenario.
//!
//! ```sh
//! cargo run --example waveform_capture
//! ```

use psn_thermometer::prelude::*;
use psn_thermometer::scan::sampler::EquivalentTimeSampler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hot loop excites the package resonance: 50 MHz, ±35 mV around a
    // 0.94 V sagged rail.
    let f = Frequency::from_mhz(50.0);
    let period = Time::period_of(f);
    let nominal = 0.94;
    let amp = Voltage::from_mv(35.0);
    let vdd = SupplyNoiseBuilder::new(Voltage::from_v(nominal))
        .span(Time::ZERO, Time::from_us(11.0))
        .resolution(Time::from_ps(250.0))
        .resonance(f, amp, 0.0)
        .build()?;
    let gnd = Waveform::constant(0.0);

    let sensor = SensorSystem::new(SensorConfig::default())?;
    let sampler = EquivalentTimeSampler::new(period, 24)?;
    let recon = sampler.capture_periodic(&sensor, &vdd, &gnd, Time::from_ns(100.0), 480)?;

    println!(
        "equivalent-time capture: {} measures, stride {:.3} ns, {} phase bins, coverage {:.0}%",
        recon.samples(),
        sampler.stride().nanoseconds(),
        sampler.bins(),
        recon.coverage() * 100.0
    );
    println!("\nphase [ns] | measured / (true) | waveform (one 20 ns period)");
    println!("-----------+-------------------+-----------------------------");
    let lo = nominal - 0.045;
    let hi = nominal + 0.045;
    for (i, v) in recon.values().iter().enumerate() {
        let t = recon.bin_time(i);
        let truth = nominal + amp.volts() * (std::f64::consts::TAU * (t / period)).sin();
        let line = match v {
            Some(v) => {
                let col = ((v.volts() - lo) / (hi - lo) * 28.0).clamp(0.0, 28.0) as usize;
                let tcol = ((truth - lo) / (hi - lo) * 28.0).clamp(0.0, 28.0) as usize;
                let mut bar = vec![' '; 30];
                bar[tcol] = '·';
                bar[col] = '#';
                format!(
                    "  {:.3} / ({:.3}) | {}",
                    v.volts(),
                    truth,
                    bar.into_iter().collect::<String>()
                )
            }
            None => "   (no sample)".to_string(),
        };
        println!("   {:6.2}  |{line}", t.nanoseconds());
    }
    if let Some(p2p) = recon.peak_to_peak() {
        println!(
            "\nreconstructed peak-to-peak: {:.0} mV (true: {:.0} mV; quantisation ≈ 30 mV/LSB)",
            p2p.millivolts(),
            2.0 * amp.millivolts()
        );
    }
    println!("legend: # measured bin mean, · ground truth");
    Ok(())
}
