//! Find the PDN resonance *from sensor data alone*: run iterated
//! measures against a physically modelled rail, feed the decoded samples
//! to the spectral estimator, and compare the identified frequency with
//! the package model's analytic resonance.
//!
//! ```sh
//! cargo run --example resonance_hunt
//! ```

use psn_thermometer::analysis::spectrum::{dominant_frequency, spectrum_envelope};
use psn_thermometer::pdn::impedance::impedance_peak;
use psn_thermometer::pdn::rlc::LumpedPdn;
use psn_thermometer::pdn::workload::resonant_loop;
use psn_thermometer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "unknown" silicon: a package model the measurement side never
    // looks inside. The regulator is set to 0.95 V so the rail sits in
    // the middle of the delay-code-011 range and the ripple spans
    // several codes (a real campaign would re-range via the delay code).
    let pdn = LumpedPdn::new(
        Voltage::from_v(0.95),
        Resistance::from_milliohms(5.0),
        psn_thermometer::cells::units::Inductance::from_ph(100.0),
        Capacitance::from_nf(100.0),
    )?;
    let f_true = pdn.resonance_frequency();

    // A hot loop happens to excite the tank (sized so the ripple stays
    // inside the delay-code-011 measurement range — re-ranging via the
    // delay code would be the answer for a wilder rail).
    let span = Time::from_us(10.0);
    let load = resonant_loop(Current::from_a(0.3), Current::from_a(0.9), f_true, span, 17)?;
    let vdd = pdn.transient(&mut RunCtx::serial(), &load, Time::from_ps(200.0), span)?;
    let gnd = Waveform::constant(0.0);

    // Iterated sensor measures, ~23 ns apart on average with seeded
    // random jitter: aperiodic sampling carries unambiguous frequency
    // information far beyond the mean-rate Nyquist limit, while any
    // regular sub-Nyquist stride would alias the tone.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let sensor = SensorSystem::new(SensorConfig::default())?;
    let mut samples: Vec<(Time, f64)> = Vec::new();
    let mut t = Time::from_ns(400.0);
    while t < span - Time::from_ns(10.0) {
        let m = sensor.measure_at(&vdd, &gnd, t)?;
        if let Some(v) = m.hs_interval.midpoint() {
            samples.push((t, v.volts()));
        }
        t += Time::from_ns(17.0 + rng.gen_range(0.0..12.0));
    }
    println!(
        "collected {} decoded samples (≈23 ns apart on average — below Nyquist for the tank)",
        samples.len(),
    );

    // Spectral envelope over 10–200 MHz (per-bin max over a
    // resolution-aware sub-sweep: the tone's line width is only
    // ~1/T ≈ 0.1 MHz).
    let sweep = spectrum_envelope(
        &samples,
        Frequency::from_mhz(10.0),
        Frequency::from_mhz(200.0),
        24,
    );
    println!("\nmeasured noise spectrum (envelope):");
    let max_amp = sweep.iter().map(|p| p.amplitude).fold(0.0, f64::max);
    for p in sweep.iter() {
        let bar = "#".repeat((p.amplitude / max_amp * 40.0) as usize);
        println!("  {:7.1} MHz | {bar}", p.frequency.hertz() / 1e6);
    }

    let (f_est, amp) = dominant_frequency(
        &samples,
        Frequency::from_mhz(10.0),
        Frequency::from_mhz(200.0),
        200,
    )
    .expect("enough samples");
    let (f_z, z) = impedance_peak(&pdn, Frequency::from_mhz(5.0), Frequency::from_mhz(500.0));
    println!(
        "\nidentified tone: {:.2} MHz at {:.0} mV amplitude",
        f_est.hertz() / 1e6,
        amp * 1e3
    );
    println!(
        "ground truth:    {:.2} MHz tank resonance; |Z| peak {:.1} mΩ at {:.2} MHz",
        f_true.hertz() / 1e6,
        z.ohms() * 1e3,
        f_z.hertz() / 1e6
    );
    let rel = (f_est.hertz() - f_true.hertz()).abs() / f_true.hertz();
    println!("frequency error: {:.1} %", rel * 100.0);
    Ok(())
}
