//! Power-aware use case: a DVFS controller lowers the supply setpoint to
//! save power, with the noise thermometer as its safety guard — the
//! paper's "activation of power aware policies" scenario, driven by the
//! library's [`DvfsGovernor`] and [`NoiseAlarm`] policy blocks.
//!
//! ```sh
//! cargo run --example dvfs_guard
//! ```

use psn_thermometer::pdn::rlc::LumpedPdn;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::baseline::RazorStage;
use psn_thermometer::sensor::policy::{DvfsGovernor, GovernorAction, NoiseAlarm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The logic's actual limit: below this the pipeline starts failing
    // (from the Razor stage model, which shares the sensor's physics).
    let pipeline = RazorStage::typical_pipeline();
    let v_min = pipeline.min_supply(Time::from_ns(2.0));
    let mut governor = DvfsGovernor::with_v_min(v_min)?;
    let mut alarm = NoiseAlarm::new(1, 2)?;
    println!(
        "pipeline minimum supply {:.3} V; guard band 30 mV, hysteresis 10 mV, 25 mV steps",
        v_min.volts()
    );

    // A bursty workload that keeps kicking the package tank.
    let span = Time::from_us(1.0);
    let load = WorkloadBuilder::new(Current::from_a(0.4))
        .span(Time::ZERO, span)
        .resolution(Time::from_ps(500.0))
        .burst(
            Time::from_ns(200.0),
            Time::from_ns(60.0),
            Current::from_a(2.0),
        )
        .burst(
            Time::from_ns(500.0),
            Time::from_ns(60.0),
            Current::from_a(2.2),
        )
        .random_activity(Current::from_a(0.2), Time::from_ns(2.0), 42)
        .build()?;

    let sensor = SensorSystem::new(SensorConfig::default())?;
    let gnd = Waveform::constant(0.0);

    println!("\n setpoint | worst measured VDD-n | governor  | alarm");
    println!(" ---------+----------------------+-----------+------");
    for _epoch in 0..12 {
        // The regulator drives the package model at the commanded
        // setpoint; the rail droops below it under the workload.
        let pdn = LumpedPdn::new(
            governor.setpoint(),
            Resistance::from_milliohms(5.0),
            psn_thermometer::cells::units::Inductance::from_ph(100.0),
            Capacitance::from_nf(100.0),
        )?;
        let vdd = pdn.transient(&mut RunCtx::serial(), &load, Time::from_ps(200.0), span)?;

        // One measurement window: 80 sensor measures across the epoch.
        let window: Vec<_> = (0..80)
            .map(|k| {
                sensor.measure_at(
                    &vdd,
                    &gnd,
                    Time::from_ns(50.0) + Time::from_ns(11.0) * k as f64,
                )
            })
            .collect::<Result<_, _>>()?;
        for m in &window {
            alarm.observe_measurement(m);
        }
        let worst = window
            .iter()
            .filter_map(|m| m.hs_interval.midpoint())
            .min_by(|a, b| a.total_cmp(b));

        let before = governor.setpoint();
        let action = governor.decide(&window);
        println!(
            "  {:.3} V |        {:>12} | {:9} | {}",
            before.volts(),
            worst.map_or("below range".into(), |w| format!("{:.3} V", w.volts())),
            match action {
                GovernorAction::StepDown => "step down",
                GovernorAction::StepUp => "step up",
                GovernorAction::Hold => "hold",
            },
            if alarm.is_active() { "ALARM" } else { "-" },
        );
        if action == GovernorAction::Hold {
            break;
        }
    }
    println!(
        "\nsettled setpoint: {:.3} V (saving {:.0} mV of supply against the 1.05 V start)",
        governor.setpoint().volts(),
        (1.05 - governor.setpoint().volts()) * 1e3
    );
    println!("alarm trips during the scaling walk: {}", alarm.trips());
    Ok(())
}
