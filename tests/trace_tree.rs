//! Trace-tree well-formedness: for any campaign configuration at
//! jobs ∈ {1, 4}, the observer's span records form a single rooted
//! tree whose wall-clock and sim-time intervals nest inside their
//! parents, with per-track monotone start times — and detaching the
//! observer never changes the campaign's results (observer passivity).

use std::collections::HashMap;

use proptest::prelude::*;
use psn_thermometer::obs::SpanRecord;
use psn_thermometer::pdn::grid::PowerGrid;
use psn_thermometer::prelude::*;
use psn_thermometer::scan::campaign::ResilientCampaignResult;

/// The worker counts the tracing contract is pinned at.
const JOBS: [usize; 2] = [1, 4];

fn small_campaign() -> Campaign {
    let grid = PowerGrid::corner_fed(
        2,
        Voltage::from_v(1.05),
        Resistance::from_milliohms(60.0),
        Resistance::from_milliohms(20.0),
    )
    .unwrap();
    let fp = Floorplan::new(grid, Placement::EveryTile).unwrap();
    Campaign::new(fp, SensorConfig::default()).unwrap()
}

/// Asserts every structural invariant of a recorded span forest.
fn assert_well_formed(records: &[SpanRecord]) {
    assert!(!records.is_empty(), "no spans recorded");
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    assert_eq!(by_id.len(), records.len(), "span ids are not unique");

    for r in records {
        // Every parent id refers to a recorded span, and intervals
        // nest: a child runs within its parent's wall-clock window and
        // (when both declare one) within its sim-time interval.
        let Some(pid) = r.parent else { continue };
        let parent = by_id
            .get(&pid)
            .unwrap_or_else(|| panic!("span {} ({}) has unknown parent {pid}", r.id, r.name));
        let eps = 1e-3; // µs slack for f64 rounding of clock reads
        assert!(
            r.wall_start_us >= parent.wall_start_us - eps
                && r.wall_start_us + r.wall_us <= parent.wall_start_us + parent.wall_us + eps,
            "span {} [{};{}µs] escapes parent {} [{};{}µs]",
            r.name,
            r.wall_start_us,
            r.wall_us,
            parent.name,
            parent.wall_start_us,
            parent.wall_us,
        );
        if let (Some(t0), Some(t1), Some(p0), Some(p1)) =
            (r.sim_t0_ps, r.sim_t1_ps, parent.sim_t0_ps, parent.sim_t1_ps)
        {
            assert!(
                t0 >= p0 && t1 <= p1,
                "span {} sim [{t0};{t1}] escapes parent {} sim [{p0};{p1}]",
                r.name,
                parent.name,
            );
        }
    }

    // Per track (thread lane), start times ascend in id order: the
    // observer opens its own spans in id order, and a worker claims
    // its jobs in ascending index order, which is also the remote
    // trees' emission (id-assignment) order. Records themselves stream
    // in span-END order, so sort each lane by id first.
    let mut tracks: HashMap<u32, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        tracks.entry(r.track).or_default().push(r);
    }
    for (track, mut lane) in tracks {
        lane.sort_by_key(|r| r.id);
        for pair in lane.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                b.wall_start_us >= a.wall_start_us - 1e-3,
                "span {} (id {}) on track {track} starts at {} before its predecessor {} (id {}) at {}",
                b.name,
                b.id,
                b.wall_start_us,
                a.name,
                a.id,
                a.wall_start_us,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `run_dual`'s trace is a well-formed campaign → grid_solve /
    /// measure_sweep → site → measure tree for any load level, sample
    /// count and worker count — and the traced results are
    /// bit-identical to a detached (no-observer) run.
    #[test]
    fn campaign_trace_tree_is_well_formed(
        jobs_ix in 0usize..2,
        idle in 0.01f64..0.2,
        samples in 2usize..5,
    ) {
        let jobs = JOBS[jobs_ix];
        let campaign = small_campaign();
        let loads = vec![Waveform::constant(idle); 4];
        let (start, dt) = (Time::from_ns(10.0), Time::from_ns(20.0));

        let mut obs = Observer::null();
        let observed = campaign
            .run_dual(
                &mut RunCtx::new(Engine::new(jobs)).with_observer(&mut obs),
                &loads,
                None,
                start,
                dt,
                samples,
            )
            .unwrap();
        obs.finish();
        let records = obs.trace_records();
        assert_well_formed(records);

        // The expected shape: one campaign root owning everything.
        let count = |n: &str| records.iter().filter(|r| r.name == n).count();
        prop_assert_eq!(count("campaign"), 1);
        prop_assert_eq!(count("grid_solve"), 1);
        prop_assert_eq!(count("measure_sweep"), 1);
        prop_assert_eq!(count("site"), 4);
        prop_assert_eq!(count("measure"), 4 * samples);
        let root = records.iter().find(|r| r.name == "campaign").unwrap();
        prop_assert!(root.parent.is_none());

        // Observer passivity: the detached run returns the same bits.
        let detached = campaign
            .run_dual(
                &mut RunCtx::new(Engine::new(jobs)),
                &loads,
                None,
                start,
                dt,
                samples,
            )
            .unwrap();
        prop_assert_eq!(&observed, &detached, "observer changed results at jobs={}", jobs);
    }

    /// The resilient run's trace stays well-formed when sites panic
    /// and retry, and degraded sites simply contribute no site span.
    #[test]
    fn resilient_trace_tree_survives_site_faults(
        jobs_ix in 0usize..2,
        bad_site in 0usize..4,
    ) {
        let jobs = JOBS[jobs_ix];
        let campaign = small_campaign();
        let loads = vec![Waveform::constant(0.05); 4];
        let (start, dt) = (Time::from_ns(10.0), Time::from_ns(20.0));
        let plan = FaultPlan::new().with(Fault::SitePanic { site: bad_site });

        let run = |observer: Option<&mut Observer>| -> ResilientCampaignResult {
            let mut ctx = RunCtx::new(Engine::new(jobs)).with_observer_opt(observer);
            ctx.set_fault_plan(Some(plan.clone()));
            campaign
                .run_resilient(
                    &mut ctx,
                    &loads,
                    None,
                    start,
                    dt,
                    2,
                    psn_thermometer::engine::RetryPolicy::none(),
                )
                .unwrap()
        };

        let mut obs = Observer::null();
        let observed = run(Some(&mut obs));
        obs.finish();
        let records = obs.trace_records();
        assert_well_formed(records);
        // The panicked site degrades without a span; the other three
        // sites trace normally.
        prop_assert_eq!(observed.summary.sites_degraded, 1);
        prop_assert_eq!(records.iter().filter(|r| r.name == "site").count(), 3);

        let detached = run(None);
        prop_assert_eq!(&observed, &detached, "observer changed resilient results");
    }
}
