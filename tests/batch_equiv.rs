//! Bit-identity contract of the 64-lane batch kernels.
//!
//! PR 8's batched paths are only allowed to exist because they are
//! *indistinguishable* from the scalar reference:
//!
//! (a) a healthy `BatchSimulator` run over a random netlist matches a
//!     scalar `Simulator` run on **every** lane — net values, per-lane
//!     event statistics and the switching-energy bit pattern;
//! (b) with a different fault plan installed on each lane
//!     (`set_fault_plans`), lane `l` matches a scalar simulator running
//!     `set_fault_plan(plans[l])` alone — stuck-ats, delay scalings,
//!     bit upsets and seeded transients, mixed freely across lanes;
//! (c) the batched `monte_carlo_yield` returns bit-identical
//!     `YieldReport`s to the scalar reference implementation at
//!     jobs ∈ {1, 4}, including ragged trial counts (n % 64 ≠ 0);
//! (d) `GateLevelArray::measure_batch` agrees per lane with serial
//!     faulted `measure_detailed` calls on a ragged chunk.

use proptest::prelude::*;
use proptest::TestCaseError;
use psn_thermometer::cells::dff::Dff;
use psn_thermometer::cells::gates::StdCell;
use psn_thermometer::cells::logic::Logic;
use psn_thermometer::cells::process::Pvt;
use psn_thermometer::fault::{Fault, FaultPlan};
use psn_thermometer::netlist::batch::BatchSimulator;
use psn_thermometer::netlist::graph::{NetId, Netlist};
use psn_thermometer::netlist::sim::Simulator;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::gate_level::GateLevelArray;
use psn_thermometer::sensor::mismatch::{
    monte_carlo_yield, monte_carlo_yield_scalar, MismatchModel,
};
use psn_thermometer::sensor::thermometer::ThermometerArray;

/// The worker counts the equivalence contract is pinned at.
const JOBS: [usize; 2] = [1, 4];

/// A random combinational DAG with a flip-flop on every fourth gate
/// output (same construction as the fault-equivalence suite), plus the
/// name lists fault plans draw victims from.
struct RandomDesign {
    netlist: Netlist,
    inputs: Vec<NetId>,
    clk: NetId,
    net_names: Vec<String>,
    gate_names: Vec<String>,
    ff_names: Vec<String>,
}

fn random_netlist(gate_picks: &[(u8, u8, u8, u8)], n_inputs: usize) -> RandomDesign {
    let mut n = Netlist::new("batch-equiv");
    let clk = n.add_input("clk");
    let inputs: Vec<NetId> = (0..n_inputs)
        .map(|i| n.add_input(format!("in{i}")))
        .collect();
    let mut nets = inputs.clone();
    let mut interesting = Vec::new();
    let mut net_names: Vec<String> = (0..n_inputs).map(|i| format!("in{i}")).collect();
    let mut gate_names = Vec::new();
    let mut ff_names = Vec::new();
    let ff = Dff::standard_90nm();
    for (gi, &(kind, a, b, c)) in gate_picks.iter().enumerate() {
        let cell = match kind % 6 {
            0 => StdCell::inverter(1.0),
            1 => StdCell::nand2(1.0),
            2 => StdCell::nor2(1.0),
            3 => StdCell::xor2(1.0),
            4 => StdCell::mux2(1.0),
            _ => StdCell::and3(1.0),
        };
        let pick = |x: u8| nets[x as usize % nets.len()];
        let ins: Vec<NetId> = match cell.num_inputs() {
            1 => vec![pick(a)],
            2 => vec![pick(a), pick(b)],
            _ => vec![pick(a), pick(b), pick(c)],
        };
        let out = n.add_gate(format!("g{gi}"), cell, &ins).unwrap();
        interesting.push(out);
        net_names.push(format!("g{gi}.out"));
        gate_names.push(format!("g{gi}"));
        if gi % 4 == 3 {
            let q = n.add_dff(format!("ff{gi}"), ff, out, clk, Logic::Zero);
            interesting.push(q);
            nets.push(q);
            net_names.push(format!("ff{gi}.q"));
            ff_names.push(format!("ff{gi}"));
        }
        nets.push(out);
    }
    let last = *interesting.last().unwrap();
    n.mark_output("keep", last);
    RandomDesign {
        netlist: n,
        inputs,
        clk,
        net_names,
        gate_names,
        ff_names,
    }
}

/// Identical stimulus for the scalar and batch kernels.
const RUN_TO: Time = Time::from_ns(50.0);

fn stimulate_scalar(sim: &mut Simulator<'_>, d: &RandomDesign, bits: &[bool]) {
    for (i, (&net, &b)) in d.inputs.iter().zip(bits).enumerate() {
        sim.drive(net, Logic::from(b), Time::from_ps(10.0 * i as f64))
            .unwrap();
    }
    sim.drive_clock(d.clk, Time::from_ns(2.0), Time::from_ns(3.0), 4)
        .unwrap();
    sim.run_until(RUN_TO);
}

fn stimulate_batch(sim: &mut BatchSimulator<'_>, d: &RandomDesign, bits: &[bool]) {
    for (i, (&net, &b)) in d.inputs.iter().zip(bits).enumerate() {
        sim.drive(net, Logic::from(b), Time::from_ps(10.0 * i as f64))
            .unwrap();
    }
    sim.drive_clock(d.clk, Time::from_ns(2.0), Time::from_ns(3.0), 4)
        .unwrap();
    sim.run_until(RUN_TO);
}

/// Asserts lane `l` of the batch run is bit-identical to a scalar run:
/// every net value, the per-lane statistics, and the energy bits.
fn assert_lane_matches(
    batch: &BatchSimulator<'_>,
    lane: usize,
    scalar: &Simulator<'_>,
    d: &RandomDesign,
) -> Result<(), TestCaseError> {
    for (id, net) in d.netlist.nets() {
        prop_assert_eq!(
            batch.value(id, lane),
            scalar.value(id),
            "lane {} diverged on net {}",
            lane,
            net.name()
        );
    }
    let b = batch.stats().lane(lane);
    let s = scalar.stats();
    prop_assert_eq!(b.events, s.events, "events, lane {}", lane);
    prop_assert_eq!(b.cancelled, s.cancelled, "cancelled, lane {}", lane);
    prop_assert_eq!(b.ff_captures, s.ff_captures, "captures, lane {}", lane);
    prop_assert_eq!(
        b.ff_violations,
        s.ff_violations,
        "violations, lane {}",
        lane
    );
    prop_assert_eq!(
        batch.switching_energy_joules(lane).to_bits(),
        scalar.switching_energy_joules().to_bits(),
        "energy bits, lane {}",
        lane
    );
    Ok(())
}

/// One deterministic fault plan from a proptest draw, targeting only
/// names that exist in the design.
fn plan_from_draw(d: &RandomDesign, draw: (u8, u8, u8, u64)) -> FaultPlan {
    let (kind, target, extra, seed) = draw;
    match kind % 5 {
        0 => FaultPlan::new(), // healthy lane riding along
        1 => {
            let name = &d.net_names[target as usize % d.net_names.len()];
            let value = if extra % 2 == 0 {
                Logic::Zero
            } else {
                Logic::One
            };
            FaultPlan::new().with(Fault::stuck_at(name.clone(), value))
        }
        2 => {
            let name = &d.gate_names[target as usize % d.gate_names.len()];
            let factor = [0.5, 1.5, 2.0, 3.0][extra as usize % 4];
            FaultPlan::new().with(Fault::delay_scale(name.clone(), factor))
        }
        3 if !d.ff_names.is_empty() => {
            let name = &d.ff_names[target as usize % d.ff_names.len()];
            let at = Time::from_ns(3.0 + f64::from(extra % 9));
            FaultPlan::new().with(Fault::bit_upset(name.clone(), at))
        }
        _ => FaultPlan::new().with(Fault::Transient {
            probability: 0.4,
            seed,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Healthy lanes: with no fault plans, every lane of the batch
    /// kernel is bit-identical to the scalar kernel under the same
    /// stimulus — sampled on lanes 0, 17 and 63.
    #[test]
    fn healthy_batch_lanes_match_the_scalar_kernel(
        gate_picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        bits in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let d = random_netlist(&gate_picks, 3);
        let mut scalar = Simulator::new(&d.netlist, Voltage::from_v(1.0)).unwrap();
        stimulate_scalar(&mut scalar, &d, &bits);
        let mut batch = BatchSimulator::new(&d.netlist, Voltage::from_v(1.0)).unwrap();
        stimulate_batch(&mut batch, &d, &bits);
        for lane in [0usize, 17, 63] {
            assert_lane_matches(&batch, lane, &scalar, &d)?;
        }
    }

    /// (b) Per-lane fault plans: lane `l` of one batch run with
    /// `set_fault_plans(&plans)` matches a scalar run with
    /// `set_fault_plan(&plans[l])`, for a random mix of stuck-ats,
    /// delay scalings, bit upsets, transients and healthy lanes —
    /// including a reset + re-run on the same batch kernel.
    #[test]
    fn per_lane_fault_plans_match_serial_scalar_runs(
        gate_picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 4..16),
        bits in proptest::collection::vec(any::<bool>(), 3),
        draws in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()), 1..12),
    ) {
        let d = random_netlist(&gate_picks, 3);
        let plans: Vec<FaultPlan> = draws.iter().map(|&dr| plan_from_draw(&d, dr)).collect();

        // Install-then-reset on both sides, the pooled-simulator usage
        // pattern: reset() re-initialises with the plan active, so
        // stuck nets are pinned from time zero in batch and scalar
        // alike.
        let mut batch = BatchSimulator::new(&d.netlist, Voltage::from_v(1.0)).unwrap();
        batch.set_fault_plans(&plans).unwrap();
        batch.reset();
        stimulate_batch(&mut batch, &d, &bits);

        let mut serial = Vec::with_capacity(plans.len());
        for plan in &plans {
            let mut s = Simulator::new(&d.netlist, Voltage::from_v(1.0)).unwrap();
            s.set_fault_plan(plan).unwrap();
            s.reset();
            stimulate_scalar(&mut s, &d, &bits);
            serial.push(s);
        }
        for (lane, s) in serial.iter().enumerate() {
            assert_lane_matches(&batch, lane, s, &d)?;
        }

        // reset() rearms the per-lane fault schedules and streams: the
        // same batch kernel must reproduce the identical run.
        batch.reset();
        stimulate_batch(&mut batch, &d, &bits);
        for (lane, s) in serial.iter().enumerate() {
            assert_lane_matches(&batch, lane, s, &d)?;
        }
    }
}

/// (c) The batched Monte-Carlo returns bit-identical reports to the
/// scalar reference at jobs ∈ {1, 4}, on ragged trial counts straddling
/// the 64-lane word size.
#[test]
fn batched_monte_carlo_matches_scalar_at_any_worker_count() {
    let array = ThermometerArray::paper(psn_thermometer::sensor::element::RailMode::Supply);
    let model = MismatchModel::local_90nm();
    let pvt = Pvt::typical();
    let skew = Time::from_ps(149.0);
    for trials in [1usize, 63, 64, 100, 129] {
        let mut reports = Vec::new();
        for jobs in JOBS {
            let mut sctx = RunCtx::new(Engine::new(jobs)).with_seed(7);
            let scalar =
                monte_carlo_yield_scalar(&mut sctx, &array, skew, &pvt, &model, trials).unwrap();
            let mut bctx = RunCtx::new(Engine::new(jobs)).with_seed(7);
            let batched = monte_carlo_yield(&mut bctx, &array, skew, &pvt, &model, trials).unwrap();
            assert_eq!(scalar, batched, "trials {trials}, jobs {jobs}");
            assert_eq!(
                scalar.mean_abs_shift.to_bits(),
                batched.mean_abs_shift.to_bits(),
                "mean bits, trials {trials}, jobs {jobs}"
            );
            assert_eq!(
                scalar.worst_shift.to_bits(),
                batched.worst_shift.to_bits(),
                "worst bits, trials {trials}, jobs {jobs}"
            );
            reports.push(batched);
        }
        assert_eq!(reports[0], reports[1], "jobs-independence at {trials}");
    }
}

/// (d) A ragged `measure_batch` chunk (5 plans, n % 64 ≠ 0) agrees per
/// lane with serial faulted `measure_detailed` calls.
#[test]
fn ragged_measure_batch_matches_serial_measures() {
    let array = GateLevelArray::paper().unwrap();
    let skew = Time::from_ps(149.0);
    let plans = vec![
        FaultPlan::new().with(Fault::stuck_at("ff2.q", Logic::One)),
        FaultPlan::new().with(Fault::delay_scale("inv4", 2.5)),
        FaultPlan::new(),
        FaultPlan::new().with(Fault::bit_upset("ff1", Time::from_ns(6.0))),
        FaultPlan::new()
            .with(Fault::stuck_at("inv6.out", Logic::Zero))
            .with(Fault::delay_scale("inv0", 0.5)),
    ];
    let mut ctx = RunCtx::serial();
    for mv in [1000.0, 930.0] {
        let v = Voltage::from_mv(mv);
        let batch = array.measure_batch(&mut ctx, v, skew, &plans).unwrap();
        for (l, plan) in plans.iter().enumerate() {
            let mut sctx = RunCtx::serial().with_fault_plan(plan.clone());
            let serial = array.measure_detailed(&mut sctx, v, skew).unwrap();
            assert_eq!(batch[l].as_ref().unwrap(), &serial, "lane {l} at {mv} mV");
        }
    }
}
