//! Physics-to-readout integration: workloads drive the RLC package
//! model, the resulting waveform feeds the sensor, and the decoded
//! measurements are checked against the simulation's ground truth.

use psn_thermometer::analysis::reconstruct::score_series;
use psn_thermometer::pdn::rlc::LumpedPdn;
use psn_thermometer::pdn::workload::resonant_loop;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::baseline::{RazorOutcome, RazorStage, RingOscillatorSensor};

/// Full chain: bursty workload → RLC transient → sensor series → decoded
/// intervals contain the true (window-averaged) voltage.
#[test]
fn workload_to_decoded_voltage_roundtrip() {
    let pdn = LumpedPdn::typical_90nm_package();
    let span = Time::from_us(1.0);
    let load = WorkloadBuilder::new(Current::from_a(0.6))
        .span(Time::ZERO, span)
        .resolution(Time::from_ps(500.0))
        .burst(
            Time::from_ns(300.0),
            Time::from_ns(80.0),
            Current::from_a(2.4),
        )
        .build()
        .unwrap();
    let vdd = pdn
        .transient(&mut RunCtx::serial(), &load, Time::from_ps(200.0), span)
        .unwrap();
    let gnd = Waveform::constant(0.0);

    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let skew = sensor
        .pulse_generator()
        .skew(sensor.config().hs_code, &sensor.config().pvt);
    let measures: Vec<_> = (0..60)
        .map(|k| {
            sensor
                .measure_at(
                    &vdd,
                    &gnd,
                    Time::from_ns(50.0) + Time::from_ns(14.0) * k as f64,
                )
                .unwrap()
        })
        .collect();
    let report = score_series(&measures, &vdd, skew);
    assert_eq!(report.total, 60);
    // Decoding is interval-exact for every resolvable sample.
    assert_eq!(report.hits, report.total);
    assert!(report.resolved > 40, "most samples should resolve in-range");
    assert!(report.rmse < 0.02, "rmse {} V", report.rmse);
}

/// The burst droop must actually be *seen*: the worst decoded voltage
/// drops below the pre-burst steady level by roughly the analytic
/// droop magnitude.
#[test]
fn droop_depth_matches_pdn_analytics() {
    let pdn = LumpedPdn::typical_90nm_package();
    let span = Time::from_us(1.0);
    let di = 1.8;
    let load = WorkloadBuilder::new(Current::from_a(0.5))
        .span(Time::ZERO, span)
        .resolution(Time::from_ps(500.0))
        .burst(
            Time::from_ns(400.0),
            Time::from_ns(100.0),
            Current::from_a(0.5 + di),
        )
        .build()
        .unwrap();
    let vdd = pdn
        .transient(&mut RunCtx::serial(), &load, Time::from_ps(200.0), span)
        .unwrap();
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let gnd = Waveform::constant(0.0);

    let mut worst = Voltage::from_v(2.0);
    for k in 0..120 {
        let at = Time::from_ns(300.0) + Time::from_ns(3.0) * k as f64;
        let m = sensor.measure_at(&vdd, &gnd, at).unwrap();
        if let Some(mid) = m.hs_interval.midpoint() {
            worst = worst.min(mid);
        }
    }
    let steady = pdn.steady_state(Current::from_a(0.5)).volts();
    let droop_seen = steady - worst.volts();
    let droop_expected = pdn.characteristic_impedance().ohms() * di;
    assert!(
        droop_seen > 0.5 * droop_expected,
        "sensor saw only {droop_seen:.3} V of a ~{droop_expected:.3} V droop"
    );
    assert!(
        droop_seen < 1.6 * droop_expected,
        "sensor exaggerated the droop: {droop_seen:.3} V vs {droop_expected:.3} V"
    );
}

/// The paper's comparison, end to end: on the same physical waveforms,
/// the ring oscillator cannot tell a VDD droop from a GND bounce while
/// the thermometer's HS/LS pair can; Razor misses everything while the
/// pipeline idles.
#[test]
fn baselines_compared_on_shared_waveforms() {
    let pvt = Pvt::typical();
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let ro = RingOscillatorSensor::paper_31_stage();
    let razor = RazorStage::typical_pipeline();
    let window = Time::from_us(1.0);

    let droop = (Waveform::constant(0.95), Waveform::constant(0.0));
    let bounce = (Waveform::constant(1.0), Waveform::constant(0.05));

    // Ring oscillator: identical counts.
    let c_droop = ro.count(&droop.0, &droop.1, Time::ZERO, window, &pvt);
    let c_bounce = ro.count(&bounce.0, &bounce.1, Time::ZERO, window, &pvt);
    assert_eq!(c_droop, c_bounce);

    // Thermometer: different signatures.
    let m_droop = sensor
        .measure_at(&droop.0, &droop.1, Time::from_ns(10.0))
        .unwrap();
    let m_bounce = sensor
        .measure_at(&bounce.0, &bounce.1, Time::from_ns(10.0))
        .unwrap();
    assert_ne!(
        (m_droop.hs_code.clone(), m_droop.ls_code.clone()),
        (m_bounce.hs_code.clone(), m_bounce.ls_code.clone())
    );
    assert!(m_droop.hs_word.level < m_bounce.hs_word.level);
    assert!(m_droop.ls_word.level > m_bounce.ls_word.level);

    // Razor: blind while idle, regardless of a supply well below the
    // pipeline's minimum.
    let vmin = razor.min_supply(Time::from_ns(2.0));
    let deep = vmin - Voltage::from_mv(50.0);
    assert_eq!(
        razor.evaluate(deep, false, Time::from_ns(2.0)),
        RazorOutcome::NotExercised
    );
    // The thermometer reads the same rail unconditionally.
    let m = sensor
        .measure_at(
            &Waveform::constant(deep.volts()),
            &Waveform::constant(0.0),
            Time::from_ns(10.0),
        )
        .unwrap();
    assert!(m.hs_word.level < 7);
}

/// A resonant workload tuned to the package tank produces a visible
/// oscillation in the measurement series (level spread > 1 code).
#[test]
fn resonant_workload_oscillates_the_readout() {
    let pdn = LumpedPdn::typical_90nm_package();
    let span = Time::from_us(2.0);
    let load = resonant_loop(
        Current::from_a(0.3),
        Current::from_a(2.2),
        pdn.resonance_frequency(),
        span,
        9,
    )
    .unwrap();
    let vdd = pdn
        .transient(&mut RunCtx::serial(), &load, Time::from_ps(200.0), span)
        .unwrap();
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let gnd = Waveform::constant(0.0);
    let levels: Vec<usize> = (0..100)
        .map(|k| {
            sensor
                .measure_at(
                    &vdd,
                    &gnd,
                    Time::from_ns(500.0) + Time::from_ns(7.0) * k as f64,
                )
                .unwrap()
                .hs_word
                .level
        })
        .collect();
    let min = levels.iter().min().unwrap();
    let max = levels.iter().max().unwrap();
    assert!(
        max - min >= 2,
        "resonance should spread the codes, got {min}..{max}"
    );
}

/// The full measurement record implements the common traits the
/// guidelines require (Serialize via derive; Debug is checked here).
#[test]
fn measurement_implements_common_traits() {
    fn assert_serialize<T: serde::Serialize>(_: &T) {}
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let m = sensor
        .measure_at(
            &Waveform::constant(0.95),
            &Waveform::constant(0.0),
            Time::from_ns(10.0),
        )
        .unwrap();
    assert_serialize(&m);
    let text = format!("{m:?}");
    assert!(text.contains("hs_code"));
    assert_eq!(m.clone(), m);
}
