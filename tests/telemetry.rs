//! Telemetry integration: the observer never changes simulation
//! results, streams are well-formed JSON-Lines, and the serializable
//! result types round-trip.

use proptest::prelude::*;
use psn_thermometer::netlist::sim::SimStats;
use psn_thermometer::obs::{Observer, RunManifest};
use psn_thermometer::pdn::grid::PowerGrid;
use psn_thermometer::pdn::sources::supply_step;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::encoder::EncodingPolicy;
use serde::{json, Serialize, Value};

fn config(hs: u8, ls: u8, truncate: bool) -> SensorConfig {
    SensorConfig {
        hs_code: DelayCode::new(hs).unwrap(),
        ls_code: DelayCode::new(ls).unwrap(),
        encoding: if truncate {
            EncodingPolicy::Truncate
        } else {
            EncodingPolicy::BubbleCorrect
        },
        ..SensorConfig::default()
    }
}

proptest! {
    /// Attaching an observer is purely passive: the measurement
    /// sequence is identical with and without one, for any sensor
    /// configuration and supply step.
    #[test]
    fn observer_never_changes_measurements(
        hs in 0u8..=7,
        ls in 0u8..=7,
        truncate in any::<bool>(),
        v0_mv in 960.0f64..1040.0,
        v1_mv in 860.0f64..1000.0,
    ) {
        let vdd = supply_step(
            Voltage::from_mv(v0_mv),
            Voltage::from_mv(v1_mv),
            Time::from_ns(15.0),
            Time::from_us(1.0),
        )
        .unwrap();
        let gnd = Waveform::constant(0.0);

        let mut plain = SensorSystem::new(config(hs, ls, truncate)).unwrap();
        let expected = plain
            .run(&mut RunCtx::serial(), &vdd, &gnd, Time::ZERO, 3)
            .unwrap();

        let mut obs = Observer::ring(256);
        let mut observed_sys = SensorSystem::new(config(hs, ls, truncate)).unwrap();
        let observed = observed_sys
            .run(
                &mut RunCtx::serial().with_observer(&mut obs),
                &vdd,
                &gnd,
                Time::ZERO,
                3,
            )
            .unwrap();

        prop_assert_eq!(&expected, &observed);
        // And the observer did actually see the run.
        prop_assert_eq!(
            obs.metrics.counter_value("sensor.measures"),
            observed.len() as u64
        );
    }
}

/// A full observed run produces a parseable JSON-Lines stream framed by
/// a manifest and a metrics snapshot, with the FSM walk in between.
#[test]
fn observed_run_streams_well_formed_jsonl() {
    let mut obs = Observer::ring(512);
    obs.manifest(
        &RunManifest::new("telemetry-test")
            .delay_codes(3, 3)
            .pvt("Typical"),
    );
    let vdd = supply_step(
        Voltage::from_v(1.0),
        Voltage::from_v(0.9),
        Time::from_ns(15.0),
        Time::from_us(1.0),
    )
    .unwrap();
    let mut system = SensorSystem::new(SensorConfig::default()).unwrap();
    system
        .run(
            &mut RunCtx::serial().with_observer(&mut obs),
            &vdd,
            &Waveform::constant(0.0),
            Time::ZERO,
            2,
        )
        .unwrap();
    obs.finish();

    let lines = obs.ring_lines().unwrap();
    let records: Vec<Value> = lines.iter().map(|l| json::parse(l).unwrap()).collect();
    let kind = |v: &Value| v.get("type").and_then(Value::as_str).unwrap().to_string();
    assert_eq!(kind(&records[0]), "manifest");
    assert_eq!(kind(records.last().unwrap()), "metrics");
    let transitions: Vec<(String, String)> = records
        .iter()
        .filter(|r| kind(r) == "event" && r.get("subsystem").and_then(Value::as_str) == Some("fsm"))
        .map(|r| {
            (
                r.get("from").and_then(Value::as_str).unwrap().to_string(),
                r.get("to").and_then(Value::as_str).unwrap().to_string(),
            )
        })
        .collect();
    // Every phase of the paper's FSM walk appears at least once.
    for expected in [
        ("Idle", "Ready"),
        ("Ready", "Prepare0"),
        ("Prepare0", "Prepare"),
        ("Prepare", "Sense0"),
        ("Sense0", "Sense"),
        ("Sense", "Ready"),
    ] {
        assert!(
            transitions
                .iter()
                .any(|(f, t)| (f.as_str(), t.as_str()) == expected),
            "missing transition {expected:?} in {transitions:?}"
        );
    }
}

fn roundtrip<T>(value: &T) -> T
where
    T: Serialize + serde::Deserialize,
{
    json::from_str(&json::to_string(value)).unwrap()
}

#[test]
fn sim_stats_roundtrip() {
    let stats = SimStats {
        events: 12_345,
        cancelled: 67,
        ff_captures: 89,
        ff_violations: 1,
    };
    assert_eq!(roundtrip(&stats), stats);
}

#[test]
fn measurement_roundtrip() {
    let system = SensorSystem::new(SensorConfig::default()).unwrap();
    let m = system
        .measure_at(
            &Waveform::constant(0.94),
            &Waveform::constant(0.02),
            Time::from_ns(10.0),
        )
        .unwrap();
    assert_eq!(roundtrip(&m), m);
}

#[test]
fn campaign_result_roundtrip() {
    let grid = PowerGrid::corner_fed(
        2,
        Voltage::from_v(1.05),
        Resistance::from_milliohms(60.0),
        Resistance::from_milliohms(20.0),
    )
    .unwrap();
    let fp = Floorplan::new(grid, Placement::EveryTile).unwrap();
    let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
    let loads = vec![Waveform::constant(0.2); 4];
    let result = campaign
        .run(
            &mut RunCtx::serial(),
            &loads,
            Time::from_ns(10.0),
            Time::from_ns(20.0),
            3,
        )
        .unwrap();
    assert_eq!(roundtrip(&result), result);
}
