//! Closed-loop integration: the sensor driving power-aware policies
//! against physically modelled rails, and spectral identification of the
//! noise it measures.

use psn_thermometer::analysis::spectrum::dominant_frequency;
use psn_thermometer::pdn::rlc::LumpedPdn;
use psn_thermometer::pdn::workload::resonant_loop;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::baseline::RazorStage;
use psn_thermometer::sensor::policy::{DvfsGovernor, GovernorAction, NoiseAlarm};
use rand::{Rng, SeedableRng};

/// The DVFS governor walks the setpoint down against a real PDN and
/// settles without limit cycling, with the settled rail safely above the
/// pipeline's minimum.
#[test]
fn dvfs_loop_converges_against_the_pdn() {
    let pipeline = RazorStage::typical_pipeline();
    let v_min = pipeline.min_supply(Time::from_ns(2.0));
    let mut governor = DvfsGovernor::with_v_min(v_min).unwrap();
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let gnd = Waveform::constant(0.0);
    let span = Time::from_us(1.0);
    let load = WorkloadBuilder::new(Current::from_a(0.4))
        .span(Time::ZERO, span)
        .resolution(Time::from_ps(500.0))
        .burst(
            Time::from_ns(300.0),
            Time::from_ns(80.0),
            Current::from_a(2.0),
        )
        .random_activity(Current::from_a(0.2), Time::from_ns(2.0), 7)
        .build()
        .unwrap();

    let mut actions = Vec::new();
    let mut last_worst = None;
    for _ in 0..20 {
        let pdn = LumpedPdn::new(
            governor.setpoint(),
            Resistance::from_milliohms(5.0),
            psn_thermometer::cells::units::Inductance::from_ph(100.0),
            Capacitance::from_nf(100.0),
        )
        .unwrap();
        let vdd = pdn
            .transient(&mut RunCtx::serial(), &load, Time::from_ps(200.0), span)
            .unwrap();
        let window: Vec<_> = (0..60)
            .map(|k| {
                sensor
                    .measure_at(
                        &vdd,
                        &gnd,
                        Time::from_ns(60.0) + Time::from_ns(14.0) * k as f64,
                    )
                    .unwrap()
            })
            .collect();
        last_worst = window
            .iter()
            .filter_map(|m| m.hs_interval.midpoint())
            .min_by(|a, b| a.total_cmp(b));
        let action = governor.decide(&window);
        actions.push(action);
        if action == GovernorAction::Hold {
            break;
        }
    }
    assert_eq!(
        *actions.last().unwrap(),
        GovernorAction::Hold,
        "governor did not settle: {actions:?}"
    );
    // It actually scaled: at least two steps below the 1.05 V start.
    assert!(governor.setpoint() <= Voltage::from_v(1.0));
    // The settled measured margin respects the guard band.
    let worst = last_worst.expect("resolved measurements at the settled point");
    assert!(
        worst - v_min >= Voltage::from_mv(30.0),
        "margin violated: worst {worst}, v_min {v_min}"
    );
}

/// The alarm trips during a deep transient and clears after it passes.
#[test]
fn alarm_tracks_a_transient() {
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let gnd = Waveform::constant(0.0);
    let vdd = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
        .span(Time::ZERO, Time::from_us(1.0))
        .resolution(Time::from_ps(250.0))
        .droop(
            Time::from_ns(300.0),
            Voltage::from_mv(120.0),
            Time::from_ns(60.0),
            Frequency::from_mhz(3.0),
        )
        .build()
        .unwrap();
    let mut alarm = NoiseAlarm::new(2, 2).unwrap();
    let mut trip_time = None;
    let mut clear_time = None;
    for k in 0..90 {
        let at = Time::from_ns(20.0) + Time::from_ns(10.0) * k as f64;
        let m = sensor.measure_at(&vdd, &gnd, at).unwrap();
        let was = alarm.is_active();
        let now = alarm.observe_measurement(&m);
        if !was && now && trip_time.is_none() {
            trip_time = Some(at);
        }
        if was && !now {
            clear_time = Some(at);
        }
    }
    let trip = trip_time.expect("the 120 mV droop must trip the alarm");
    let clear = clear_time.expect("the alarm must clear after recovery");
    assert!(
        trip > Time::from_ns(300.0),
        "tripped before the droop: {trip}"
    );
    assert!(trip < Time::from_ns(450.0), "tripped too late: {trip}");
    assert!(clear > trip);
    assert_eq!(alarm.trips(), 1);
}

/// End-to-end spectral identification: a resonant workload's frequency
/// is recovered from decoded sensor samples to within 2 %.
#[test]
fn resonance_identified_from_sensor_samples() {
    let pdn = LumpedPdn::new(
        Voltage::from_v(0.95),
        Resistance::from_milliohms(5.0),
        psn_thermometer::cells::units::Inductance::from_ph(100.0),
        Capacitance::from_nf(100.0),
    )
    .unwrap();
    let f_true = pdn.resonance_frequency();
    let span = Time::from_us(8.0);
    let load = resonant_loop(Current::from_a(0.3), Current::from_a(0.9), f_true, span, 3).unwrap();
    let vdd = pdn
        .transient(&mut RunCtx::serial(), &load, Time::from_ps(200.0), span)
        .unwrap();
    let gnd = Waveform::constant(0.0);
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut samples = Vec::new();
    let mut t = Time::from_ns(400.0);
    while t < span - Time::from_ns(10.0) {
        let m = sensor.measure_at(&vdd, &gnd, t).unwrap();
        if let Some(v) = m.hs_interval.midpoint() {
            samples.push((t, v.volts()));
        }
        t += Time::from_ns(17.0 + rng.gen_range(0.0..12.0));
    }
    assert!(samples.len() > 200, "too few resolved samples");
    let (f_est, amp) = dominant_frequency(
        &samples,
        Frequency::from_mhz(10.0),
        Frequency::from_mhz(200.0),
        200,
    )
    .unwrap();
    let rel = (f_est.hertz() - f_true.hertz()).abs() / f_true.hertz();
    assert!(
        rel < 0.02,
        "estimated {:.3e} vs true {:.3e}",
        f_est.hertz(),
        f_true.hertz()
    );
    assert!(amp > 0.03, "implausibly small identified amplitude {amp}");
}
