//! End-to-end checks of every headline number in the paper, through the
//! facade crate's public API. These are the acceptance tests of the
//! reproduction; `EXPERIMENTS.md` cites them.

use psn_thermometer::prelude::*;
use psn_thermometer::sensor::calibration::{array_characteristic, sensitivity_characteristic};
use psn_thermometer::sensor::element::RailMode;

fn pvt() -> Pvt {
    Pvt::typical()
}

fn pg() -> PulseGenerator {
    PulseGenerator::paper_table()
}

#[test]
fn tab1_delay_code_table_matches_exactly() {
    let expected_ps = [26.0, 40.0, 50.0, 65.0, 77.0, 92.0, 100.0, 107.0];
    for (i, &e) in expected_ps.iter().enumerate() {
        let code = DelayCode::new(i as u8).unwrap();
        assert_eq!(pg().cp_delay(code).picoseconds(), e, "code {code}");
    }
}

#[test]
fn fig4_threshold_at_2pf_is_0_936v() {
    let skew = pg().skew(DelayCode::new(3).unwrap(), &pvt());
    let points =
        sensitivity_characteristic(RailMode::Supply, skew, &pvt(), [Capacitance::from_pf(2.0)])
            .unwrap();
    let t = points[0].threshold.volts();
    assert!(
        (t - 0.9360).abs() < 0.004,
        "threshold {t} vs paper 0.9360 V"
    );
}

#[test]
fn fig4_linear_within_range_of_interest() {
    let skew = pg().skew(DelayCode::new(3).unwrap(), &pvt());
    let loads: Vec<Capacitance> = (0..=15)
        .map(|i| Capacitance::from_pf(1.95 + 0.024 * i as f64))
        .collect();
    let points = sensitivity_characteristic(RailMode::Supply, skew, &pvt(), loads).unwrap();
    let (slope, _, residual) = psn_thermometer::sensor::calibration::linear_fit(&points);
    assert!(slope > 0.0);
    assert!(residual < 0.01, "max residual {residual} V");
}

#[test]
fn fig5_dynamic_ranges_match_paper() {
    let array = ThermometerArray::paper(RailMode::Supply);
    let mut ctx = RunCtx::serial();
    let ch011 =
        array_characteristic(&mut ctx, &array, &pg(), DelayCode::new(3).unwrap(), &pvt()).unwrap();
    let ch010 =
        array_characteristic(&mut ctx, &array, &pg(), DelayCode::new(2).unwrap(), &pvt()).unwrap();
    // Paper: code 011 → 0.827 V (all errors) … 1.053 V (no errors).
    assert!((ch011.range.0.volts() - 0.827).abs() < 0.003);
    assert!((ch011.range.1.volts() - 1.053).abs() < 0.003);
    // Paper: code 010 → 0.951 … 1.237 V (shape: within 2 %).
    assert!((ch010.range.0.volts() - 0.951).abs() < 0.005);
    assert!((ch010.range.1.volts() - 1.237).abs() / 1.237 < 0.02);
}

#[test]
fn fig5_code_boundaries_match_paper() {
    let array = ThermometerArray::paper(RailMode::Supply);
    let skew = pg().skew(DelayCode::new(3).unwrap(), &pvt());
    let code: ThermometerCode = "0011111".parse().unwrap();
    let interval = array.decode(&code, skew, &pvt()).unwrap();
    assert!((interval.lower.unwrap().volts() - 0.992).abs() < 0.003);
    assert!((interval.upper.unwrap().volts() - 1.021).abs() < 0.003);
}

#[test]
fn fig9_full_system_sequence() {
    let mut sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let vdd = supply_step(
        Voltage::from_v(1.0),
        Voltage::from_v(0.9),
        Time::from_ns(15.0),
        Time::from_us(1.0),
    )
    .unwrap();
    let measures = sensor
        .run(
            &mut RunCtx::serial(),
            &vdd,
            &Waveform::constant(0.0),
            Time::ZERO,
            2,
        )
        .unwrap();
    assert_eq!(sensor.hs_prepare_code().to_string(), "0000000");
    assert_eq!(measures[0].hs_code.to_string(), "0011111");
    assert_eq!(measures[1].hs_code.to_string(), "0000011");
    // "The measures are thus reflecting the two 'input' noise values."
    assert!(measures[0].hs_interval.contains(Voltage::from_v(1.0)));
    assert!(measures[1].hs_interval.contains(Voltage::from_v(0.9)));
}

#[test]
fn critical_path_in_the_1_22ns_regime() {
    use psn_thermometer::netlist::sta::{analyze, StaConfig};
    use psn_thermometer::sensor::control::{build_control_netlist, CtrlNetlistConfig};
    let netlist = build_control_netlist(&CtrlNetlistConfig::default());
    let report = analyze(&netlist, &StaConfig::default()).unwrap();
    let ns = report.critical_delay().nanoseconds();
    assert!(
        (1.0..1.45).contains(&ns),
        "critical path {ns} ns vs paper 1.22 ns"
    );
    // "It can work with most of the typical CUTs system clock": meets 2 ns.
    assert!(report.meets_timing());
}

#[test]
fn overvoltage_measurable_with_code_010() {
    // Paper: "also overvoltages can be measured then if interesting".
    let mut sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    sensor.set_delay_codes(DelayCode::new(2).unwrap(), DelayCode::new(3).unwrap());
    let m = sensor
        .measure_at(
            &Waveform::constant(1.15),
            &Waveform::constant(0.0),
            Time::from_ns(10.0),
        )
        .unwrap();
    assert!(!m.hs_word.overflow && !m.hs_word.underflow);
    assert!(m.hs_interval.contains(Voltage::from_v(1.15)));
}

#[test]
fn ground_rail_measured_independently_of_supply() {
    // The HS/LS separation claim of §III-B.
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();
    let quiet = sensor
        .measure_at(
            &Waveform::constant(1.0),
            &Waveform::constant(0.0),
            Time::from_ns(10.0),
        )
        .unwrap();
    let bounce = sensor
        .measure_at(
            &Waveform::constant(1.0),
            &Waveform::constant(0.07),
            Time::from_ns(10.0),
        )
        .unwrap();
    assert_eq!(
        quiet.hs_code, bounce.hs_code,
        "HS must not react to GND bounce"
    );
    assert!(bounce.ls_word.level < quiet.ls_word.level, "LS must react");
}
