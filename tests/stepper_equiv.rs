//! Stepper-equivalence contract: the batch entry points are thin
//! drivers over the cycle-stepped co-simulation core, and the refactor
//! is only allowed to exist because it is *indistinguishable* from the
//! fused loops it replaced:
//!
//! (a) a neutral [`CycleStepper`] reproduces the batch
//!     [`ActivityTrace`] cycle-for-cycle and is worker-count
//!     independent, for any traffic pattern and seed;
//! (b) `NocWorkload::run` (now a stepper driver) returns bit-identical
//!     campaigns — sites, codes, rails, noise profile — with
//!     record-for-record identical telemetry (wall times masked) at
//!     jobs ∈ {1, 4};
//! (c) the open-loop `run_mitigated(None)` profile equals the batch
//!     profile bit-for-bit;
//! (d) a `SitePanic` degrading one mid-loop control frame never
//!     desyncs the closed loop: same frame stream, same profile, same
//!     actuation trace as the healthy run.

use proptest::prelude::*;
use psn_thermometer::control::{Actuation, ControlFrame, Mitigator};
use psn_thermometer::fault::Fault;
use psn_thermometer::prelude::*;
use psn_thermometer::workload::{ActivityTrace, CycleStepper};

/// The worker counts the equivalence contract is pinned at.
const JOBS: [usize; 2] = [1, 4];

/// Masks wall-clock span times and worker tracks so two telemetry
/// streams of the same work compare record-for-record. Unlike the
/// same-jobs comparisons in `ctx_equiv.rs`, this suite compares runs
/// at *different* worker counts, so the `engine.workers` gauge — the
/// one record field that legitimately names the worker count — is
/// masked too.
fn normalized(lines: Vec<String>) -> Vec<String> {
    lines
        .into_iter()
        .map(|l| {
            psn_thermometer::obs::mask_wall_times(&l)
                .replace("\"engine.workers\":1.0", "\"engine.workers\":\"<jobs>\"")
                .replace("\"engine.workers\":4.0", "\"engine.workers\":\"<jobs>\"")
        })
        .collect()
}

/// A small chip with the traffic pattern swapped in by each test.
fn chip(pattern: TrafficPattern, cycles: usize) -> NocWorkload {
    let mut cfg = NocWorkloadConfig::small_2x2();
    cfg.pattern = pattern;
    cfg.cycles = cycles;
    cfg.measure_every = cycles / 3;
    NocWorkload::new(cfg).unwrap()
}

fn pattern_from_draw(kind: u8, rate: f64) -> TrafficPattern {
    match kind % 3 {
        0 => TrafficPattern::Uniform {
            injection_rate: rate,
        },
        1 => TrafficPattern::Bursty {
            injection_rate: rate,
            on_cycles: 5,
            off_cycles: 7,
        },
        _ => TrafficPattern::GaussianLinks {
            mean_rate: rate,
            sigma: 0.1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) Neutral stepper ≡ batch activity trace, at jobs ∈ {1, 4}:
    /// identical per-cycle switching counts, flit totals, and event
    /// totals, for any pattern and seed.
    #[test]
    fn neutral_stepper_matches_batch_activity(
        seed in any::<u64>(),
        kind in any::<u8>(),
        rate in 0.1f64..0.9,
        cycles in 12usize..36,
    ) {
        let pattern = pattern_from_draw(kind, rate);
        let w = chip(pattern.clone(), cycles);
        let mut traces = Vec::new();
        for jobs in JOBS {
            let mut ctx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
            let trace =
                ActivityTrace::generate(&mut ctx, w.mesh(), &pattern, cycles).unwrap();
            let mut sctx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
            let mut stepper = CycleStepper::new(&w, &mut sctx).unwrap();
            let mut events = 0u64;
            for c in 0..cycles {
                stepper.step().unwrap();
                prop_assert_eq!(
                    stepper.raw_counts(),
                    trace.cycle_counts(c),
                    "stepper diverged from the trace at cycle {} (jobs {})",
                    c,
                    jobs
                );
                events += stepper.raw_counts().iter().map(|&x| u64::from(x)).sum::<u64>();
            }
            prop_assert_eq!(stepper.planned_flits(), trace.flits());
            prop_assert_eq!(stepper.spawned_flits(), trace.flits());
            prop_assert_eq!(events, trace.total_events());
            traces.push(trace);
        }
        prop_assert_eq!(&traces[0], &traces[1], "trace depends on worker count");
    }

    /// (b) + (c) The stepper-driven batch path: bit-identical campaign
    /// results and record-identical telemetry at jobs ∈ {1, 4}, and an
    /// open-loop mitigated run whose noise profile equals the batch
    /// profile bit-for-bit.
    #[test]
    fn batch_driver_results_and_telemetry_are_job_independent(
        seed in any::<u64>(),
        kind in any::<u8>(),
        rate in 0.1f64..0.8,
    ) {
        let w = chip(pattern_from_draw(kind, rate), 30);
        let mut runs = Vec::new();
        for jobs in JOBS {
            let mut obs = Observer::ring(8192);
            let mut ctx = RunCtx::new(Engine::new(jobs))
                .with_seed(seed)
                .with_observer(&mut obs);
            let out = w.run(&mut ctx, RetryPolicy::none()).unwrap();
            drop(ctx);
            obs.finish();
            runs.push((out, normalized(obs.ring_lines().unwrap())));
        }
        let (ref a, ref a_tel) = runs[0];
        let (ref b, ref b_tel) = runs[1];
        prop_assert_eq!(a, b, "campaign diverged across jobs");
        prop_assert_eq!(a_tel, b_tel, "telemetry diverged across jobs");

        let open = w
            .run_mitigated(&mut RunCtx::new(Engine::new(4)).with_seed(seed), None, 0)
            .unwrap();
        prop_assert_eq!(&open.profile, &a.profile, "open loop diverged from batch");
        prop_assert_eq!(open.engaged_cycles, 0);
    }
}

/// Observes every delayed frame, actuates nothing: the probe the
/// desync case uses to watch the loop's frame stream.
struct Probe {
    frames: usize,
    degraded: usize,
}

impl Mitigator for Probe {
    fn name(&self) -> &'static str {
        "probe"
    }

    fn observe(&mut self, frame: &ControlFrame, _act: &mut Actuation) {
        self.frames += 1;
        if frame.readings.iter().any(|r| r.level.is_none()) {
            self.degraded += 1;
        }
    }
}

/// (d) `SitePanic` knocks one site's reading out of exactly one
/// mid-loop control frame; the loop keeps its 1:1 cycle↔frame mapping
/// and the run stays bit-identical to the healthy one.
#[test]
fn site_panic_mid_loop_never_desyncs_the_stepper() {
    let mut cfg = NocWorkloadConfig::small_2x2();
    cfg.v_pad = Voltage::from_v(1.0);
    cfg.cycles = 48;
    cfg.measure_every = 16;
    let w = NocWorkload::new(cfg).unwrap();

    for jobs in JOBS {
        let mut healthy_probe = Probe {
            frames: 0,
            degraded: 0,
        };
        let healthy = w
            .run_mitigated(
                &mut RunCtx::new(Engine::new(jobs)).with_seed(41),
                Some(&mut healthy_probe),
                3,
            )
            .unwrap();

        let mut faulted_probe = Probe {
            frames: 0,
            degraded: 0,
        };
        let mut ctx = RunCtx::new(Engine::new(jobs))
            .with_seed(41)
            .with_fault_plan(FaultPlan::new().with(Fault::SitePanic { site: 2 }));
        let faulted = w
            .run_mitigated(&mut ctx, Some(&mut faulted_probe), 3)
            .unwrap();

        assert_eq!(faulted.degraded_readings, 1, "jobs {jobs}");
        assert_eq!(healthy.degraded_readings, 0, "jobs {jobs}");
        assert_eq!(faulted_probe.frames, 48 - 3, "jobs {jobs}");
        assert_eq!(faulted_probe.frames, healthy_probe.frames, "jobs {jobs}");
        assert_eq!(faulted_probe.degraded, 1, "jobs {jobs}");
        assert_eq!(faulted.profile, healthy.profile, "desync at jobs {jobs}");
        assert_eq!(faulted.droop_trace, healthy.droop_trace, "jobs {jobs}");
        assert_eq!(
            faulted.actuation_trace, healthy.actuation_trace,
            "jobs {jobs}"
        );
    }
}
