//! Context-equivalence contract: every deprecated pre-`RunCtx` entry
//! point is a pure shim — its results are bit-identical to the ctx
//! path, and an attached observer sees a record-for-record identical
//! telemetry stream, at jobs ∈ {1, 4}.
//!
//! These tests are the only non-shim code allowed to call the
//! deprecated variants (the CI grep gate whitelists `tests/`).

#![allow(deprecated)]

use proptest::prelude::*;
use psn_thermometer::cells::units::Temperature;
use psn_thermometer::pdn::grid::PowerGrid;
use psn_thermometer::pdn::rlc::LumpedPdn;
use psn_thermometer::pdn::sources::supply_step;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::calibration::{
    array_characteristic, array_characteristic_on, trim_for_corner, trim_for_corner_on,
};
use psn_thermometer::sensor::control::{Controller, CtrlInputs};
use psn_thermometer::sensor::element::RailMode;
use psn_thermometer::sensor::gate_level::{GateLevelArray, GateLevelPulseGen, GateLevelSystem};
use psn_thermometer::sensor::mismatch::{monte_carlo_yield, monte_carlo_yield_on, MismatchModel};

/// The worker counts the equivalence contract is pinned at.
const JOBS: [usize; 2] = [1, 4];

/// Masks the only nondeterministic content a telemetry stream carries —
/// wall-clock span times, the histograms they fold into, and the
/// executing worker's track — so two runs of the same work compare
/// record-for-record, with the span records' deterministic structure
/// (ids, parents, names, sim-time intervals, attributes) compared
/// exactly rather than discarded.
fn normalized(lines: Vec<String>) -> Vec<String> {
    lines
        .into_iter()
        .map(|l| psn_thermometer::obs::mask_wall_times(&l))
        .collect()
}

fn small_campaign() -> Campaign {
    let grid = PowerGrid::corner_fed(
        2,
        Voltage::from_v(1.05),
        Resistance::from_milliohms(60.0),
        Resistance::from_milliohms(20.0),
    )
    .unwrap();
    let fp = Floorplan::new(grid, Placement::EveryTile).unwrap();
    Campaign::new(fp, SensorConfig::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `Campaign::run_on` / `run_dual_observed_on` return bit-identical
    /// results to `run` / `run_dual` on an equivalent context.
    #[test]
    fn campaign_legacy_paths_match_ctx(
        jobs_ix in 0usize..2,
        idle in 0.01f64..0.1,
        samples in 2usize..4,
    ) {
        let jobs = JOBS[jobs_ix];
        let campaign = small_campaign();
        let loads = vec![Waveform::constant(idle); 4];
        let (start, dt) = (Time::from_ns(10.0), Time::from_ns(20.0));

        let legacy = campaign
            .run_on(&Engine::new(jobs), &loads, start, dt, samples)
            .unwrap();
        let ctx = campaign
            .run(&mut RunCtx::new(Engine::new(jobs)), &loads, start, dt, samples)
            .unwrap();
        prop_assert_eq!(&legacy, &ctx, "run_on diverged at jobs={}", jobs);

        let legacy_dual = campaign
            .run_dual_observed_on(&Engine::new(jobs), &loads, None, start, dt, samples, None)
            .unwrap();
        let ctx_dual = campaign
            .run_dual(
                &mut RunCtx::new(Engine::new(jobs)),
                &loads,
                None,
                start,
                dt,
                samples,
            )
            .unwrap();
        prop_assert_eq!(&legacy_dual, &ctx_dual, "run_dual diverged at jobs={}", jobs);
    }

    /// `monte_carlo_yield_on(engine, …, seed)` equals
    /// `monte_carlo_yield` on a seeded context, for any seed and jobs.
    #[test]
    fn yield_legacy_matches_ctx(
        seed in any::<u64>(),
        n in 1usize..30,
        jobs_ix in 0usize..2,
    ) {
        let jobs = JOBS[jobs_ix];
        let array = ThermometerArray::paper(RailMode::Supply);
        let model = MismatchModel::local_90nm();
        let pvt = Pvt::typical();
        let skew = Time::from_ps(149.0);

        let legacy =
            monte_carlo_yield_on(&Engine::new(jobs), &array, skew, &pvt, &model, n, seed)
                .unwrap();
        let ctx = monte_carlo_yield(
            &mut RunCtx::new(Engine::new(jobs)).with_seed(seed),
            &array,
            skew,
            &pvt,
            &model,
            n,
        )
        .unwrap();
        prop_assert_eq!(&legacy, &ctx, "yield diverged at jobs={}", jobs);
    }

    /// `array_characteristic_on` and `trim_for_corner_on` equal their
    /// ctx counterparts for every delay code and jobs count.
    #[test]
    fn characteristic_and_trim_legacy_match_ctx(
        code_bits in 0u8..=7,
        jobs_ix in 0usize..2,
    ) {
        let jobs = JOBS[jobs_ix];
        let array = ThermometerArray::paper(RailMode::Supply);
        let pg = PulseGenerator::paper_table();
        let code = DelayCode::new(code_bits).unwrap();
        let pvt = Pvt::typical();
        let corner = Pvt::new(
            ProcessCorner::ALL[0],
            Voltage::from_v(1.0),
            Temperature::from_celsius(25.0),
        );

        let legacy = array_characteristic_on(&Engine::new(jobs), &array, &pg, code, &pvt).unwrap();
        let ctx =
            array_characteristic(&mut RunCtx::new(Engine::new(jobs)), &array, &pg, code, &pvt)
                .unwrap();
        prop_assert_eq!(&legacy, &ctx, "characteristic diverged at jobs={}", jobs);

        let legacy_trim =
            trim_for_corner_on(&Engine::new(jobs), &array, &pg, code, &pvt, &corner).unwrap();
        let ctx_trim = trim_for_corner(
            &mut RunCtx::new(Engine::new(jobs)),
            &array,
            &pg,
            code,
            &pvt,
            &corner,
        )
        .unwrap();
        prop_assert_eq!(&legacy_trim, &ctx_trim, "trim diverged at jobs={}", jobs);
    }

    /// The observed system run streams record-for-record identical
    /// telemetry through the legacy `run_observed` and the ctx path,
    /// for any sensor step stimulus.
    #[test]
    fn system_telemetry_stream_is_record_identical(
        v0_mv in 960.0f64..1040.0,
        v1_mv in 860.0f64..1000.0,
    ) {
        let vdd = supply_step(
            Voltage::from_mv(v0_mv),
            Voltage::from_mv(v1_mv),
            Time::from_ns(15.0),
            Time::from_us(1.0),
        )
        .unwrap();
        let gnd = Waveform::constant(0.0);

        let mut legacy_obs = Observer::ring(512);
        let mut legacy_sys = SensorSystem::new(SensorConfig::default()).unwrap();
        let legacy = legacy_sys
            .run_observed(&vdd, &gnd, Time::ZERO, 2, Some(&mut legacy_obs))
            .unwrap();
        legacy_obs.finish();

        let mut ctx_obs = Observer::ring(512);
        let mut ctx_sys = SensorSystem::new(SensorConfig::default()).unwrap();
        let ctx = ctx_sys
            .run(
                &mut RunCtx::serial().with_observer(&mut ctx_obs),
                &vdd,
                &gnd,
                Time::ZERO,
                2,
            )
            .unwrap();
        ctx_obs.finish();

        prop_assert_eq!(&legacy, &ctx);
        prop_assert_eq!(
            normalized(legacy_obs.ring_lines().unwrap()),
            normalized(ctx_obs.ring_lines().unwrap())
        );
    }
}

/// The observed campaign streams record-for-record identical telemetry
/// through the legacy shims and the ctx path at jobs ∈ {1, 4}.
#[test]
fn campaign_telemetry_stream_is_record_identical() {
    let campaign = small_campaign();
    let loads = vec![Waveform::constant(0.05); 4];
    let (start, dt) = (Time::from_ns(10.0), Time::from_ns(20.0));

    for jobs in JOBS {
        let mut legacy_obs = Observer::ring(512);
        let legacy = campaign
            .run_dual_observed_on(
                &Engine::new(jobs),
                &loads,
                None,
                start,
                dt,
                3,
                Some(&mut legacy_obs),
            )
            .unwrap();
        legacy_obs.finish();

        let mut ctx_obs = Observer::ring(512);
        let ctx = campaign
            .run_dual(
                &mut RunCtx::new(Engine::new(jobs)).with_observer(&mut ctx_obs),
                &loads,
                None,
                start,
                dt,
                3,
            )
            .unwrap();
        ctx_obs.finish();

        assert_eq!(legacy, ctx, "campaign results diverged at jobs={jobs}");
        assert_eq!(
            normalized(legacy_obs.ring_lines().unwrap()),
            normalized(ctx_obs.ring_lines().unwrap()),
            "telemetry streams diverged at jobs={jobs}"
        );
    }
}

/// Exercises every deprecated shim exactly once against its ctx
/// replacement, so a shim that drifts from a one-line delegation fails
/// here before anything else.
#[test]
fn every_deprecated_shim_delegates() {
    let code = DelayCode::new(3).unwrap();

    // Campaign::run_observed (serial, no observer).
    let campaign = small_campaign();
    let loads = vec![Waveform::constant(0.05); 4];
    let (start, dt) = (Time::from_ns(10.0), Time::from_ns(20.0));
    let legacy = campaign.run_observed(&loads, start, dt, 2, None).unwrap();
    let ctx = campaign
        .run(&mut RunCtx::serial(), &loads, start, dt, 2)
        .unwrap();
    assert_eq!(legacy, ctx);

    // Campaign::run_dual_observed (serial path of the dual-rail run).
    let legacy = campaign
        .run_dual_observed(&loads, None, start, dt, 2, None)
        .unwrap();
    let ctx = campaign
        .run_dual(&mut RunCtx::serial(), &loads, None, start, dt, 2)
        .unwrap();
    assert_eq!(legacy, ctx);

    // SensorSystem::trim_observed.
    let corner = Pvt::new(
        ProcessCorner::ALL[0],
        Voltage::from_v(1.0),
        Temperature::from_celsius(25.0),
    );
    let mut legacy_sys = SensorSystem::new(SensorConfig::default()).unwrap();
    let legacy = legacy_sys.trim_observed(&corner, None).unwrap();
    let mut ctx_sys = SensorSystem::new(SensorConfig::default()).unwrap();
    let ctx = ctx_sys.trim(&mut RunCtx::serial(), &corner).unwrap();
    assert_eq!(legacy, ctx);

    // Controller::step_observed.
    let inputs = CtrlInputs {
        enable: true,
        start: true,
    };
    let mut legacy_fsm = Controller::new(None);
    let legacy = legacy_fsm.step_observed(inputs, Time::ZERO, None);
    let mut ctx_fsm = Controller::new(None);
    let ctx = ctx_fsm.step_ctx(&mut RunCtx::serial(), inputs, Time::ZERO);
    assert_eq!(legacy, ctx);
    assert_eq!(legacy_fsm.state(), ctx_fsm.state());

    // LumpedPdn::transient_observed.
    let pdn = LumpedPdn::typical_90nm_package();
    let load = Waveform::constant(0.5);
    let (step, until) = (Time::from_ps(500.0), Time::from_ns(40.0));
    let legacy = pdn.transient_observed(&load, step, until, None).unwrap();
    let ctx = pdn
        .transient(&mut RunCtx::serial(), &load, step, until)
        .unwrap();
    assert_eq!(legacy, ctx);

    // GateLevelArray::{measure_with, measure_detailed_with} on a
    // caller-held simulator.
    let gate = GateLevelArray::paper().unwrap();
    let mut sim = gate.make_sim().unwrap();
    let rail = Voltage::from_v(0.95);
    let skew = Time::from_ps(149.0);
    let legacy = gate.measure_with(&mut sim, rail, skew).unwrap();
    let ctx = gate.measure(&mut RunCtx::serial(), rail, skew).unwrap();
    assert_eq!(legacy, ctx);
    let legacy = gate.measure_detailed_with(&mut sim, rail, skew).unwrap();
    let ctx = gate
        .measure_detailed(&mut RunCtx::serial(), rail, skew)
        .unwrap();
    assert_eq!(legacy, ctx);

    // GateLevelPulseGen::measured_skew_with.
    let pg = GateLevelPulseGen::paper().unwrap();
    let mut sim = pg.make_sim().unwrap();
    let legacy = pg.measured_skew_with(&mut sim, code).unwrap();
    let ctx = pg.measured_skew(&mut RunCtx::serial(), code).unwrap();
    assert_eq!(legacy, ctx);

    // GateLevelSystem::run_measures_with.
    let sys = GateLevelSystem::paper().unwrap();
    let mut sim = sys.make_sim().unwrap();
    let rails = [Voltage::from_v(1.0), Voltage::from_v(0.9)];
    let legacy = sys.run_measures_with(&mut sim, code, &rails).unwrap();
    let ctx = sys
        .run_measures(&mut RunCtx::serial(), code, &rails)
        .unwrap();
    assert_eq!(legacy, ctx);

    // SensorSystem::run_observed (covered against ctx in the proptest
    // above; here just the None-observer arm).
    let vdd = Waveform::constant(0.94);
    let gnd = Waveform::constant(0.0);
    let mut legacy_sys = SensorSystem::new(SensorConfig::default()).unwrap();
    let legacy = legacy_sys
        .run_observed(&vdd, &gnd, Time::ZERO, 2, None)
        .unwrap();
    let mut ctx_sys = SensorSystem::new(SensorConfig::default()).unwrap();
    let ctx = ctx_sys
        .run(&mut RunCtx::serial(), &vdd, &gnd, Time::ZERO, 2)
        .unwrap();
    assert_eq!(legacy, ctx);

    // The engine-handle shims (run_on, monte_carlo_yield_on,
    // array_characteristic_on, trim_for_corner_on,
    // run_dual_observed_on) are pinned by the proptests above.
}
