//! Gate-level integration: the CNTR netlist under event-driven
//! simulation, STA across supply corners, and waveform export.

use psn_thermometer::cells::logic::Logic;
use psn_thermometer::netlist::sim::Simulator;
use psn_thermometer::netlist::sta::{analyze, StaConfig};
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::control::{
    build_control_netlist, Controller, CtrlInputs, CtrlNetlistConfig, CtrlState,
};

#[test]
fn cntr_netlist_runs_many_measure_sequences() {
    let netlist = build_control_netlist(&CtrlNetlistConfig::default());
    let mut sim = Simulator::new(&netlist, Voltage::from_v(1.0)).unwrap();
    let clk = netlist.net_by_name("clk").unwrap();
    let enable = netlist.net_by_name("enable").unwrap();
    let start = netlist.net_by_name("start").unwrap();
    sim.drive(enable, Logic::One, Time::ZERO).unwrap();
    sim.drive(start, Logic::One, Time::ZERO).unwrap();
    let period = Time::from_ns(4.0);
    sim.drive_clock(clk, Time::from_ns(2.0), period, 40)
        .unwrap();
    sim.run_until(Time::from_ns(170.0));

    // The capture output must pulse once per 5-cycle measure sequence.
    let capture = netlist.net_by_name("dec_sense.out").unwrap();
    let pulses = sim.trace().rising_edges(sim.signal(capture));
    assert!(
        (6..=9).contains(&pulses),
        "expected ~7 capture pulses in 40 cycles, got {pulses}"
    );
    // No setup violations inside the control logic itself at 4 ns.
    assert_eq!(sim.stats().ff_violations, 0);
}

#[test]
fn cntr_gate_level_agrees_with_behavioural_over_long_run() {
    let netlist = build_control_netlist(&CtrlNetlistConfig::default());
    let mut sim = Simulator::new(&netlist, Voltage::from_v(1.0)).unwrap();
    let clk = netlist.net_by_name("clk").unwrap();
    let enable = netlist.net_by_name("enable").unwrap();
    let start = netlist.net_by_name("start").unwrap();
    sim.drive(enable, Logic::One, Time::ZERO).unwrap();
    sim.drive(start, Logic::One, Time::ZERO).unwrap();
    let period = Time::from_ns(4.0);
    let cycles = 30;
    sim.drive_clock(clk, Time::from_ns(2.0), period, cycles)
        .unwrap();

    let mut behavioural = Controller::new(None);
    let (s0, s1, s2) = (
        netlist.dffs()[0].q(),
        netlist.dffs()[1].q(),
        netlist.dffs()[2].q(),
    );
    for cycle in 0..cycles {
        sim.run_until(Time::from_ns(2.0) + period * (cycle as f64 + 0.9));
        behavioural.step(CtrlInputs {
            enable: true,
            start: true,
        });
        let enc = [sim.value(s2), sim.value(s1), sim.value(s0)]
            .iter()
            .fold(0u8, |acc, b| (acc << 1) | u8::from(*b == Logic::One));
        assert_eq!(
            CtrlState::from_encoding(enc),
            Some(behavioural.state()),
            "cycle {cycle}"
        );
    }
    assert_eq!(behavioural.measures_done(), 5);
}

#[test]
fn sta_tracks_supply_across_corners() {
    let netlist = build_control_netlist(&CtrlNetlistConfig::default());
    let nominal = analyze(&netlist, &StaConfig::default()).unwrap();
    let droop = analyze(
        &netlist,
        &StaConfig {
            supply: Voltage::from_v(0.9),
            ..StaConfig::default()
        },
    )
    .unwrap();
    let over = analyze(
        &netlist,
        &StaConfig {
            supply: Voltage::from_v(1.1),
            ..StaConfig::default()
        },
    )
    .unwrap();
    assert!(droop.critical_delay() > nominal.critical_delay());
    assert!(over.critical_delay() < nominal.critical_delay());
    // The paper's headline: nominal meets a typical system clock.
    assert!(nominal.meets_timing());
}

#[test]
fn counter_width_scales_the_critical_path() {
    let short = build_control_netlist(&CtrlNetlistConfig {
        counter_bits: 8,
        ..CtrlNetlistConfig::default()
    });
    let long = build_control_netlist(&CtrlNetlistConfig::default());
    let t_short = analyze(&short, &StaConfig::default())
        .unwrap()
        .critical_delay();
    let t_long = analyze(&long, &StaConfig::default())
        .unwrap()
        .critical_delay();
    assert!(t_long > t_short * 1.5, "{t_short} vs {t_long}");
}

#[test]
fn vcd_export_of_a_control_run() {
    let netlist = build_control_netlist(&CtrlNetlistConfig {
        counter_bits: 4,
        ..CtrlNetlistConfig::default()
    });
    let mut sim = Simulator::new(&netlist, Voltage::from_v(1.0)).unwrap();
    let clk = netlist.net_by_name("clk").unwrap();
    let enable = netlist.net_by_name("enable").unwrap();
    let start = netlist.net_by_name("start").unwrap();
    sim.drive(enable, Logic::One, Time::ZERO).unwrap();
    sim.drive(start, Logic::One, Time::ZERO).unwrap();
    sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(4.0), 8)
        .unwrap();
    sim.run_until(Time::from_ns(40.0));
    let vcd = sim.trace().to_vcd("cntr");
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.contains("clk"));
    assert!(vcd.lines().filter(|l| l.starts_with('#')).count() > 10);
}
