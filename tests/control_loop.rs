//! Closed-loop stability contract of the droop-mitigation layer.
//!
//! The experiment's claim is only meaningful if the loop is *stable*:
//! a controller that limit-cycles (engage → reading recovers → release
//! → droop returns → engage, every few cycles) would trade worst-case
//! droop for a self-inflicted oscillation. These tests pin, at every
//! code-distribution latency in 0..=8:
//!
//! * bounded actuation toggling — neutral↔engaged transitions stay
//!   bounded by the traffic's burst edges, never one per few cycles;
//! * stretch never deepens the droop — scaling activity down can only
//!   lower per-cycle switching counts, so the mitigated droop trace is
//!   cycle-for-cycle no deeper than the open loop's;
//! * determinism — two closed-loop runs with the same seed and latency
//!   produce bit-identical droop and actuation traces at any worker
//!   count.

use proptest::prelude::*;
use psn_thermometer::control::{PiBoost, SupplyBoost, ThresholdStretch, ThresholdThrottle};
use psn_thermometer::prelude::*;

/// A bursty chip inside the sensor's dynamic range: 2×2 mesh, 1.0 V
/// rails, heavy per-flit current so the thermometer levels track the
/// bursts.
fn bursty_chip() -> NocWorkload {
    let mut cfg = NocWorkloadConfig::small_2x2();
    cfg.v_pad = Voltage::from_v(1.0);
    cfg.flit_current = Current::from_ma(40.0);
    cfg.pattern = TrafficPattern::Bursty {
        injection_rate: 0.9,
        on_cycles: 12,
        off_cycles: 18,
    };
    cfg.cycles = 150;
    cfg.measure_every = 30;
    NocWorkload::new(cfg).unwrap()
}

/// Worst-case count of burst edges over the run: each of the 4 tiles
/// turns on and off once per 30-cycle period over 150 cycles. A
/// well-damped controller toggles global neutral↔engaged at most once
/// per edge; a limit-cycling one toggles every few cycles (~75).
const BURST_EDGE_BOUND: usize = 4 * (150 / 30) * 2;

#[test]
fn every_policy_is_stable_at_every_latency() {
    let w = bursty_chip();
    let base = w
        .run_mitigated(&mut RunCtx::serial().with_seed(2009), None, 0)
        .unwrap();
    assert!(base.worst_droop > 0.0, "chip must actually droop");

    for latency in 0..=8usize {
        let arms: Vec<Box<dyn psn_thermometer::control::Mitigator>> = vec![
            Box::new(ThresholdStretch::new(4, 4, 5, 0.25).unwrap().with_hold(16)),
            Box::new(ThresholdThrottle::new(4, 4, 5).unwrap().with_hold(16)),
            Box::new(
                SupplyBoost::new(4, 4, 5, Voltage::from_v(0.06))
                    .unwrap()
                    .with_hold(16),
            ),
            Box::new(PiBoost::new(4, 5.0, 0.02, 0.01).unwrap()),
        ];
        for mut arm in arms {
            let out = w
                .run_mitigated(
                    &mut RunCtx::serial().with_seed(2009),
                    Some(arm.as_mut()),
                    latency,
                )
                .unwrap();
            assert!(
                out.actuation_toggles() <= BURST_EDGE_BOUND,
                "{} limit-cycled at latency {}: {} toggles (bound {})",
                out.policy,
                latency,
                out.actuation_toggles(),
                BURST_EDGE_BOUND
            );
            assert_eq!(out.latency, latency);
            assert_eq!(out.droop_trace.len(), 150);
        }
    }
}

#[test]
fn stretch_never_deepens_any_cycle() {
    // Stretching scales effective switching counts down
    // (⌊count·scale⌋ ≤ count) without touching flight progress, so the
    // mitigated chip can never droop deeper than the open loop at any
    // cycle — at any latency.
    let w = bursty_chip();
    let base = w
        .run_mitigated(&mut RunCtx::serial().with_seed(2009), None, 0)
        .unwrap();
    for latency in 0..=8usize {
        let mut arm = ThresholdStretch::new(4, 4, 5, 0.25).unwrap().with_hold(16);
        let out = w
            .run_mitigated(
                &mut RunCtx::serial().with_seed(2009),
                Some(&mut arm),
                latency,
            )
            .unwrap();
        for (c, (m, b)) in out.droop_trace.iter().zip(&base.droop_trace).enumerate() {
            assert!(
                m <= &(b + 1e-12),
                "stretch deepened cycle {c} at latency {latency}: {m} > {b}"
            );
        }
        assert!(out.worst_droop <= base.worst_droop + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Closed-loop determinism: same seed + latency → bit-identical
    /// droop and actuation traces, at jobs ∈ {1, 4} and for any
    /// latency in the swept range.
    #[test]
    fn closed_loop_runs_are_deterministic(
        seed in any::<u64>(),
        latency in 0usize..=8,
    ) {
        let w = bursty_chip();
        let mut runs = Vec::new();
        for jobs in [1usize, 4] {
            let mut arm = SupplyBoost::new(4, 4, 5, Voltage::from_v(0.06))
                .unwrap()
                .with_hold(16);
            let out = w
                .run_mitigated(
                    &mut RunCtx::new(Engine::new(jobs)).with_seed(seed),
                    Some(&mut arm),
                    latency,
                )
                .unwrap();
            runs.push(out);
        }
        let bits = |t: &[f64]| t.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(
            bits(&runs[0].droop_trace),
            bits(&runs[1].droop_trace),
            "droop trace diverged across worker counts"
        );
        prop_assert_eq!(&runs[0].actuation_trace, &runs[1].actuation_trace);
        prop_assert_eq!(&runs[0], &runs[1]);
    }
}
