//! The engine's determinism contract, checked end to end: every
//! parallelized sweep is bit-identical at any worker count (jobs ∈
//! {1, 2, 7} here, including a worker count above the job count), and
//! attaching an observer to a parallel run never changes results.

use proptest::prelude::*;
use psn_thermometer::pdn::grid::PowerGrid;
use psn_thermometer::prelude::*;
use psn_thermometer::sensor::calibration::array_characteristic;
use psn_thermometer::sensor::mismatch::{monte_carlo_yield, MismatchModel};

/// The worker counts every property is checked over. 1 is the inline
/// serial path, 2 the smallest real pool, 7 deliberately odd and (for
/// the small sweeps here) larger than the job count.
const JOBS: [usize; 3] = [1, 2, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A scan campaign over a corner-fed grid returns bit-identical
    /// site series and frames at any worker count, for any tile
    /// activity pattern.
    #[test]
    fn campaign_run_is_worker_count_invariant(
        active_tile in 0usize..9,
        idle in 0.01f64..0.1,
        burst in 0.2f64..0.9,
        samples in 2usize..5,
    ) {
        let grid = PowerGrid::corner_fed(
            3,
            Voltage::from_v(1.05),
            Resistance::from_milliohms(60.0),
            Resistance::from_milliohms(20.0),
        )
        .unwrap();
        let fp = Floorplan::new(grid, Placement::EveryTile).unwrap();
        let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
        let mut loads = vec![Waveform::constant(idle); 9];
        loads[active_tile] = Waveform::from_points(vec![
            (Time::ZERO, idle),
            (Time::from_ns(20.0), burst),
            (Time::from_ns(60.0), idle),
        ])
        .unwrap();

        let serial = campaign
            .run(&mut RunCtx::serial(), &loads, Time::from_ns(10.0), Time::from_ns(25.0), samples)
            .unwrap();
        for jobs in JOBS {
            let parallel = campaign
                .run(
                    &mut RunCtx::new(Engine::new(jobs)),
                    &loads,
                    Time::from_ns(10.0),
                    Time::from_ns(25.0),
                    samples,
                )
                .unwrap();
            prop_assert_eq!(&serial, &parallel, "campaign diverged at jobs={}", jobs);
        }
    }

    /// Monte-Carlo yield uses one seed-split RNG stream per trial, so
    /// the report is bit-identical at any worker count for any seed,
    /// trial count and mismatch magnitude.
    #[test]
    fn monte_carlo_yield_is_worker_count_invariant(
        seed in any::<u64>(),
        n in 1usize..40,
        sigma_scale in 0.25f64..2.0,
    ) {
        let array = ThermometerArray::paper(RailMode::Supply);
        let model = MismatchModel::local_90nm().scaled(sigma_scale);
        let pvt = Pvt::typical();
        let skew = Time::from_ps(149.0);

        let serial = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(seed),
            &array,
            skew,
            &pvt,
            &model,
            n,
        )
        .unwrap();
        for jobs in JOBS {
            let parallel = monte_carlo_yield(
                &mut RunCtx::new(Engine::new(jobs)).with_seed(seed),
                &array,
                skew,
                &pvt,
                &model,
                n,
            )
            .unwrap();
            prop_assert_eq!(&serial, &parallel, "yield diverged at jobs={}", jobs);
        }
    }

    /// The per-element threshold sweep behind calibration is
    /// bit-identical at any worker count for every delay code.
    #[test]
    fn array_characteristic_is_worker_count_invariant(code_bits in 0u8..=7) {
        let array = ThermometerArray::paper(RailMode::Supply);
        let pg = PulseGenerator::paper_table();
        let code = DelayCode::new(code_bits).unwrap();
        let pvt = Pvt::typical();

        let serial =
            array_characteristic(&mut RunCtx::serial(), &array, &pg, code, &pvt).unwrap();
        for jobs in JOBS {
            let parallel = array_characteristic(
                &mut RunCtx::new(Engine::new(jobs)),
                &array,
                &pg,
                code,
                &pvt,
            )
            .unwrap();
            prop_assert_eq!(&serial, &parallel, "characteristic diverged at jobs={}", jobs);
        }
    }

    /// Attaching an observer to a parallel campaign is purely passive:
    /// results equal the unobserved serial run, and the merged metrics
    /// count each site exactly once regardless of worker count.
    #[test]
    fn parallel_observer_is_passive_and_merged_once(
        jobs_ix in 0usize..3,
        idle in 0.01f64..0.1,
    ) {
        let jobs = JOBS[jobs_ix];
        let grid = PowerGrid::corner_fed(
            2,
            Voltage::from_v(1.05),
            Resistance::from_milliohms(60.0),
            Resistance::from_milliohms(20.0),
        )
        .unwrap();
        let fp = Floorplan::new(grid, Placement::EveryTile).unwrap();
        let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
        let loads = vec![Waveform::constant(idle); 4];

        let plain = campaign
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
            )
            .unwrap();
        let mut obs = Observer::ring(256);
        let observed = campaign
            .run_dual(
                &mut RunCtx::new(Engine::new(jobs)).with_observer(&mut obs),
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
            )
            .unwrap();

        prop_assert_eq!(&plain, &observed);
        prop_assert_eq!(obs.metrics.counter_value("campaign.sites_done"), 4);
        prop_assert_eq!(obs.metrics.counter_value("engine.jobs_done"), 4);
    }
}
