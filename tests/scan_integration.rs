//! Scan-chain integration: grid → campaign → serial frames → analysis.

use psn_thermometer::analysis::stats::summarize;
use psn_thermometer::pdn::grid::PowerGrid;
use psn_thermometer::prelude::*;
use psn_thermometer::scan::sampler::EquivalentTimeSampler;

fn grid(side: usize) -> PowerGrid {
    PowerGrid::corner_fed(
        side,
        Voltage::from_v(1.05),
        Resistance::from_milliohms(60.0),
        Resistance::from_milliohms(15.0),
    )
    .unwrap()
}

#[test]
fn campaign_localises_a_hotspot() {
    let fp = Floorplan::new(grid(5), Placement::EveryTile).unwrap();
    let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
    let mut loads = vec![Waveform::constant(0.03); 25];
    loads[12] = Waveform::constant(1.0); // centre tile burns
    let result = campaign
        .run(
            &mut RunCtx::serial(),
            &loads,
            Time::from_ns(10.0),
            Time::from_ns(20.0),
            6,
        )
        .unwrap();
    let hotspot = result.hotspot().unwrap();
    // The ~30 mV/LSB quantisation can tie the centre with its immediate
    // neighbours (their IR difference is a few tens of mV), but the
    // hotspot must sit in that neighbourhood and the centre must share
    // the global worst level.
    assert!(
        [7usize, 11, 12, 13, 17].contains(&hotspot.tile),
        "hotspot at tile {}",
        hotspot.tile
    );
    let map = result.noise_map();
    let centre_level = map.iter().find(|(t, ..)| *t == 12).unwrap().1;
    assert_eq!(centre_level, hotspot.worst_level());
    // The map is symmetric: the four corners agree.
    let corner_levels: Vec<usize> = [0usize, 4, 20, 24]
        .iter()
        .map(|t| map.iter().find(|(tile, ..)| tile == t).unwrap().1)
        .collect();
    assert!(
        corner_levels.windows(2).all(|w| w[0] == w[1]),
        "{corner_levels:?}"
    );
    // And the hotspot is strictly worse than the corners.
    assert!(hotspot.worst_level() < corner_levels[0]);
}

#[test]
fn sparse_placement_still_sees_the_hotspot_neighbourhood() {
    let fp = Floorplan::new(grid(5), Placement::CornersAndCentre).unwrap();
    let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
    let mut loads = vec![Waveform::constant(0.03); 25];
    loads[12] = Waveform::constant(1.0);
    let result = campaign
        .run(
            &mut RunCtx::serial(),
            &loads,
            Time::from_ns(10.0),
            Time::from_ns(20.0),
            4,
        )
        .unwrap();
    assert_eq!(result.sites.len(), 5);
    assert_eq!(result.hotspot().unwrap().tile, 12);
    // Five sites × 7 bits per frame.
    assert!(result.frames.iter().all(|f| f.len() == 35));
}

#[test]
fn frames_decode_back_to_measurements() {
    let fp = Floorplan::new(grid(3), Placement::EveryTile).unwrap();
    let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
    let loads = vec![Waveform::constant(0.2); 9];
    let result = campaign
        .run(
            &mut RunCtx::serial(),
            &loads,
            Time::from_ns(10.0),
            Time::from_ns(25.0),
            5,
        )
        .unwrap();
    for (k, frame) in result.frames.iter().enumerate() {
        let codes = campaign.chain().deserialize(frame).unwrap();
        assert_eq!(codes.len(), 9);
        for (site, code) in result.sites.iter().zip(&codes) {
            assert_eq!(&site.measurements[k].hs_code, code);
        }
    }
}

#[test]
fn equivalent_time_beats_nyquist_limited_sampling() {
    // A 50 MHz resonance sampled at one measure per 100 ns (10 MHz —
    // far below Nyquist) is still reconstructed by the phase sweep.
    let f = Frequency::from_mhz(50.0);
    let period = Time::period_of(f);
    let vdd = SupplyNoiseBuilder::new(Voltage::from_v(0.94))
        .span(Time::ZERO, Time::from_us(45.0))
        .resolution(Time::from_ps(500.0))
        .resonance(f, Voltage::from_mv(35.0), 0.0)
        .build()
        .unwrap();
    let gnd = Waveform::constant(0.0);
    let sensor = SensorSystem::new(SensorConfig::default()).unwrap();

    // Stride of 5 periods + period/16: an equivalent-time sweep at an
    // average rate of one sample per ~100 ns.
    let sampler = EquivalentTimeSampler::new(period, 16).unwrap();
    let mut samples = Vec::new();
    for k in 0..400u64 {
        let at = Time::from_ns(100.0) + (period * 5.0 + period / 16.0) * k as f64;
        let m = sensor.measure_at(&vdd, &gnd, at).unwrap();
        if let Some(v) = m.hs_interval.midpoint() {
            samples.push((at, v));
        }
    }
    let recon = sampler.fold(&samples);
    assert!(recon.coverage() > 0.9, "coverage {}", recon.coverage());
    let p2p = recon.peak_to_peak().unwrap().millivolts();
    assert!((p2p - 70.0).abs() < 35.0, "p2p {p2p} mV vs true 70 mV");
}

#[test]
fn site_series_statistics_are_consistent() {
    let fp = Floorplan::new(grid(3), Placement::EveryTile).unwrap();
    let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
    let loads = vec![Waveform::constant(0.3); 9];
    let result = campaign
        .run(
            &mut RunCtx::serial(),
            &loads,
            Time::from_ns(10.0),
            Time::from_ns(20.0),
            10,
        )
        .unwrap();
    for site in &result.sites {
        let levels: Vec<f64> = site
            .measurements
            .iter()
            .map(|m| m.hs_word.level as f64)
            .collect();
        let summary = summarize(&levels).unwrap();
        assert!(summary.min >= site.worst_level() as f64 - 1e-9);
        assert!((summary.mean - site.mean_level()).abs() < 1e-9);
    }
}
