//! Randomized chaos soak: seeded combinations of every harness-level
//! fault — `SinkError`, `WorkerPanic`, `CancelAt`, `DeadlineTrip` —
//! thrown at the supervised streamed workload, proving three things on
//! every draw:
//!
//! * **no hangs** — every run returns (the suite also asserts a soft
//!   wall-clock bound; `scripts/ci.sh` adds a hard `timeout` on top);
//! * **no lost partials** — whatever reached the sink before a trip is
//!   an exact prefix of the uninterrupted stream, closed by a terminal
//!   labelled [`StreamRecord::Aborted`];
//! * **clean resume** — when a checkpoint was written, resuming it on
//!   a fresh context reproduces the uninterrupted run record for
//!   record.
//!
//! The draw sequence is fixed by a seeded generator, so the soak is
//! deterministic run to run. `PSNT_JOBS` pins the worker count (the CI
//! soak runs it at 4); otherwise each draw picks 1 or 4.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use psn_thermometer::prelude::*;
use psn_thermometer::scan::campaign::StreamRecord;
use psn_thermometer::scan::ScanError;
use psn_thermometer::workload::checkpoint::CheckpointPolicy;
use psn_thermometer::workload::{NocWorkload, WorkloadCheckpoint, WorkloadError};

const ITERATIONS: usize = 12;

fn soak_path(iter: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("psnt-chaos-{}-{iter}.ckpt", std::process::id()))
}

#[test]
fn randomized_chaos_soak_never_hangs_or_loses_partials() {
    let started = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(0x50cc_2009);
    let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
    let jobs_env: Option<usize> = std::env::var("PSNT_JOBS").ok().and_then(|s| s.parse().ok());
    let retry = RetryPolicy::attempts(2);

    for iter in 0..ITERATIONS {
        let seed = rng.next_u64();
        let jobs = jobs_env.unwrap_or(if rng.gen_bool(0.5) { 4 } else { 1 });

        // The uninterrupted baseline this draw's run must be a prefix
        // (or the whole) of.
        let mut bctx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
        let mut baseline = Vec::new();
        let base_out = w
            .run_streamed(&mut bctx, retry, |r| {
                baseline.push(r);
                Ok(())
            })
            .unwrap();

        // A random chaos plan: any combination of the four harness
        // faults, including none.
        let mut plan = FaultPlan::new();
        if rng.gen_bool(0.5) {
            plan = plan.with(Fault::CancelAt {
                cycle: rng.gen_range(1u64..60),
            });
        }
        if rng.gen_bool(0.35) {
            plan = plan.with(Fault::DeadlineTrip);
        }
        if rng.gen_bool(0.4) {
            plan = plan.with(Fault::SinkError {
                after_records: rng.gen_range(1u64..10),
            });
        }
        if rng.gen_bool(0.5) {
            // Panics on attempt 0 only: the second attempt granted by
            // `RetryPolicy::attempts(2)` recovers the site, so the
            // stream stays bit-identical to the baseline.
            plan = plan.with(Fault::WorkerPanic {
                job: rng.gen_range(0..4),
                attempt: 0,
            });
        }
        let sink_after = plan.sink_error_after();

        let path = soak_path(iter);
        let _ = std::fs::remove_file(&path);
        let policy = CheckpointPolicy {
            path: Some(path.clone()),
            every: Some(rng.gen_range(5u64..25)),
        };
        let mut ictx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
        ictx.set_fault_plan(Some(plan));
        let mut records: Vec<StreamRecord> = Vec::new();
        let mut fed = 0u64;
        let out = w.run_streamed_checkpointed(&mut ictx, retry, &policy, None, |r| {
            // The terminal abort marker is always accepted — a sink
            // that rejected it would just lose the label.
            if matches!(r, StreamRecord::Aborted { .. }) {
                records.push(r);
                return Ok(());
            }
            fed += 1;
            if sink_after.is_some_and(|n| fed > n) {
                // The failing record is rejected, not consumed — it
                // must not count as a delivered partial.
                return Err(ScanError::InvalidConfig {
                    name: "sink",
                    reason: "chaos sink failure".into(),
                });
            }
            records.push(r);
            Ok(())
        });

        match out {
            // No fault fired (or the worker panic was retried away):
            // the stream must be untouched.
            Ok(out) => {
                assert_eq!(records, baseline, "iter {iter}: clean run diverged");
                assert_eq!(out, base_out, "iter {iter}: clean summary diverged");
            }
            // A cooperative trip: labelled prefix, then a clean resume
            // from the checkpoint the interrupt wrote.
            Err(WorkloadError::Interrupted(reason)) => {
                let body: &[StreamRecord] = match records.split_last() {
                    Some((
                        StreamRecord::Aborted {
                            sites_completed, ..
                        },
                        body,
                    )) => {
                        let sites = body
                            .iter()
                            .filter(|r| matches!(r, StreamRecord::Site { .. }))
                            .count();
                        assert_eq!(
                            *sites_completed, sites,
                            "iter {iter}: abort label miscounts delivered sites"
                        );
                        body
                    }
                    // A solve-phase trip streams nothing at all.
                    _ => &records,
                };
                assert_eq!(
                    body,
                    &baseline[..body.len()],
                    "iter {iter}: partials are not a prefix ({reason})"
                );
                assert!(
                    path.exists(),
                    "iter {iter}: interrupt ({reason}) left no checkpoint"
                );
                let ckpt = WorkloadCheckpoint::load(&path).unwrap();
                let mut rctx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
                let mut resumed = Vec::new();
                let rout = w
                    .run_streamed_checkpointed(
                        &mut rctx,
                        retry,
                        &CheckpointPolicy::none(),
                        Some(&ckpt),
                        |r| {
                            resumed.push(r);
                            Ok(())
                        },
                    )
                    .unwrap();
                assert_eq!(resumed, baseline, "iter {iter}: resume diverged ({reason})");
                assert_eq!(rout, base_out, "iter {iter}: resumed summary diverged");
            }
            // The sink itself failed: the stream is still a labelled
            // prefix — nothing silently lost.
            Err(_) => {
                let (last, body) = records.split_last().expect("terminal record");
                match last {
                    StreamRecord::Aborted {
                        sites_completed, ..
                    } => {
                        let sites = body
                            .iter()
                            .filter(|r| matches!(r, StreamRecord::Site { .. }))
                            .count();
                        assert_eq!(*sites_completed, sites, "iter {iter}: abort label");
                    }
                    other => panic!("iter {iter}: terminal record not Aborted: {other:?}"),
                }
                assert_eq!(
                    body,
                    &baseline[..body.len()],
                    "iter {iter}: sink-failure partials are not a prefix"
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    // Soft no-hang witness; scripts/ci.sh enforces a hard timeout on
    // top of this.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(300),
        "chaos soak exceeded its soft wall-clock bound"
    );
}
