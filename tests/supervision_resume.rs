//! Supervision contract, property-tested: cooperative interrupts are
//! structured and lossless, and checkpoint/resume is bit-identical.
//!
//! (a) A `CancelAt` harness fault at *any* cycle interrupts the solve
//!     phase with a checkpoint; resuming on a fresh context renders a
//!     stream and summary bit-identical, record for record, to a run
//!     that was never interrupted — at jobs ∈ {1, 4}.
//! (b) Cancelling the supervisor token from inside the sink at *any*
//!     record index stops the sweep with a labelled terminal
//!     [`StreamRecord::Aborted`]; everything delivered before it is an
//!     exact prefix of the uninterrupted stream.
//! (c) The closed loop: a mitigated run interrupted at any cycle
//!     resumes (controller state restored from the snapshot) into a
//!     result bit-identical to the uninterrupted one, at any code
//!     latency.

use proptest::prelude::*;
use psn_thermometer::control::ThresholdThrottle;
use psn_thermometer::prelude::*;
use psn_thermometer::scan::campaign::StreamRecord;
use psn_thermometer::sup::Interrupt;
use psn_thermometer::workload::checkpoint::CheckpointPolicy;
use psn_thermometer::workload::{
    MitigatedCheckpoint, NocWorkload, StreamedNocResult, WorkloadCheckpoint, WorkloadError,
};

/// The worker counts the supervision contract is pinned at.
const JOBS: [usize; 2] = [1, 4];

fn ckpt_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("psnt-sup-resume-{}-{tag}.ckpt", std::process::id()))
}

/// Runs the streamed checkpointed path collecting every record.
fn run_collect(
    w: &NocWorkload,
    ctx: &mut RunCtx<'_>,
    policy: &CheckpointPolicy,
    resume: Option<&WorkloadCheckpoint>,
) -> (Vec<StreamRecord>, Result<StreamedNocResult, WorkloadError>) {
    let mut records = Vec::new();
    let out = w.run_streamed_checkpointed(ctx, RetryPolicy::none(), policy, resume, |r| {
        records.push(r);
        Ok(())
    });
    (records, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// (a) Interrupt at a random solve cycle, resume, compare — the
    /// resumed run is record-for-record identical at jobs ∈ {1, 4}.
    #[test]
    fn cancel_then_resume_is_bit_identical(seed in any::<u64>(), cancel in 1u64..59) {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        for jobs in JOBS {
            let mut ctx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
            let (clean_records, clean) =
                run_collect(&w, &mut ctx, &CheckpointPolicy::none(), None);
            let clean = clean.unwrap();

            let path = ckpt_path(&format!("cancel-{jobs}"));
            let _ = std::fs::remove_file(&path);
            let mut ictx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
            ictx.set_fault_plan(Some(
                FaultPlan::new().with(Fault::CancelAt { cycle: cancel }),
            ));
            let policy = CheckpointPolicy {
                path: Some(path.clone()),
                every: None,
            };
            let (pre_records, err) = run_collect(&w, &mut ictx, &policy, None);
            prop_assert!(
                matches!(err, Err(WorkloadError::Interrupted(Interrupt::Cancelled))),
                "expected a cancellation interrupt, got {err:?}"
            );
            // Solve-phase interrupt: nothing had reached the sink yet.
            prop_assert!(pre_records.is_empty());
            let ckpt = WorkloadCheckpoint::load(&path).unwrap();
            prop_assert_eq!(ckpt.cycle() as u64, cancel);

            // Resume on a fresh, un-faulted context.
            let mut rctx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
            let (records, out) =
                run_collect(&w, &mut rctx, &CheckpointPolicy::none(), Some(&ckpt));
            prop_assert_eq!(&records, &clean_records, "record stream diverged after resume");
            prop_assert_eq!(&out.unwrap(), &clean, "summary diverged after resume");
            let _ = std::fs::remove_file(&path);
        }
    }

    /// (b) Cancel from inside the sink at a random record index: the
    /// delivered records are an exact prefix of the uninterrupted
    /// stream, closed by a terminal `Aborted` whose `sites_completed`
    /// matches the site records actually delivered.
    #[test]
    fn mid_sweep_cancellation_delivers_a_labelled_prefix(
        seed in any::<u64>(),
        after in 1usize..8,
    ) {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        for jobs in JOBS {
            let mut ctx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
            let (clean_records, _) =
                run_collect(&w, &mut ctx, &CheckpointPolicy::none(), None);

            let mut ictx = RunCtx::new(Engine::new(jobs)).with_seed(seed);
            let token = ictx.supervisor().token().clone();
            let mut records: Vec<StreamRecord> = Vec::new();
            let out = w.run_streamed(&mut ictx, RetryPolicy::none(), |r| {
                records.push(r);
                if records.len() == after {
                    token.cancel();
                }
                Ok(())
            });
            match out {
                // The token tripped after the stream had already
                // finished — the run completed untouched.
                Ok(_) => prop_assert_eq!(&records, &clean_records),
                Err(WorkloadError::Interrupted(reason)) => {
                    prop_assert_eq!(&reason, &Interrupt::Cancelled);
                    let (last, body) = records.split_last().expect("terminal record");
                    match last {
                        StreamRecord::Aborted { sites_completed, .. } => {
                            let sites = body
                                .iter()
                                .filter(|r| matches!(r, StreamRecord::Site { .. }))
                                .count();
                            prop_assert_eq!(*sites_completed, sites);
                        }
                        other => prop_assert!(false, "terminal record not Aborted: {other:?}"),
                    }
                    prop_assert_eq!(
                        body,
                        &clean_records[..body.len()],
                        "partials are not a prefix of the clean stream"
                    );
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
    }

    /// (c) The closed loop resumes bit-identically from a random
    /// interrupt cycle at any small code latency, with the
    /// controller's own state restored from the snapshot.
    #[test]
    fn mitigated_cancel_then_resume_is_bit_identical(
        seed in any::<u64>(),
        cancel in 1u64..59,
        latency in 0usize..3,
    ) {
        let w = NocWorkload::new(NocWorkloadConfig::small_2x2()).unwrap();
        let tiles = 4;

        let mut cctx = RunCtx::serial().with_seed(seed);
        let mut m0 = ThresholdThrottle::new(tiles, 6, 7).unwrap();
        let clean = w.run_mitigated(&mut cctx, Some(&mut m0), latency).unwrap();

        let path = ckpt_path("mitigated");
        let _ = std::fs::remove_file(&path);
        let mut ictx = RunCtx::serial().with_seed(seed);
        ictx.set_fault_plan(Some(
            FaultPlan::new().with(Fault::CancelAt { cycle: cancel }),
        ));
        let policy = CheckpointPolicy {
            path: Some(path.clone()),
            every: None,
        };
        let mut m1 = ThresholdThrottle::new(tiles, 6, 7).unwrap();
        let err = w.run_mitigated_checkpointed(&mut ictx, Some(&mut m1), latency, &policy, None);
        prop_assert!(
            matches!(err, Err(WorkloadError::Interrupted(Interrupt::Cancelled))),
            "expected a cancellation interrupt, got {err:?}"
        );
        let ckpt = MitigatedCheckpoint::load(&path).unwrap();
        prop_assert_eq!(ckpt.cycle() as u64, cancel);
        prop_assert!(ckpt.mitigator_state.is_some(), "controller state not captured");

        // A cold controller instance: its state comes from the snapshot.
        let mut rctx = RunCtx::serial().with_seed(seed);
        let mut m2 = ThresholdThrottle::new(tiles, 6, 7).unwrap();
        let out = w
            .run_mitigated_checkpointed(
                &mut rctx,
                Some(&mut m2),
                latency,
                &CheckpointPolicy::none(),
                Some(&ckpt),
            )
            .unwrap();
        prop_assert_eq!(out, clean, "mitigated run diverged after resume");
        let _ = std::fs::remove_file(&path);
    }
}
