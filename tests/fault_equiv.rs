//! Fault-injection equivalence contract.
//!
//! The fault layer must be invisible when unused and deterministic when
//! used. These properties pin that contract:
//!
//! (a) a simulator with an **empty** fault plan installed (or a real
//!     plan installed and then cleared) is bit-identical to one whose
//!     fault API was never touched — every net value, event statistic,
//!     switching-energy bit pattern and trace edge;
//! (b) a campaign degraded by injected site panics produces identical
//!     `ResilientCampaignResult`s (partial map, outcomes, summary) at
//!     jobs ∈ {1, 4};
//! (c) bounded retries are deterministic: the per-attempt reseeding
//!     sequence replays exactly, so a flaky job converges to the same
//!     outcome on every run at any worker count.

use proptest::prelude::*;
use psn_thermometer::cells::gates::StdCell;
use psn_thermometer::cells::logic::Logic;
use psn_thermometer::engine::{JobSpec, RetryPolicy};
use psn_thermometer::fault::{Fault, FaultPlan};
use psn_thermometer::netlist::graph::{NetId, Netlist};
use psn_thermometer::netlist::sim::Simulator;
use psn_thermometer::pdn::grid::PowerGrid;
use psn_thermometer::prelude::*;
use psn_thermometer::scan::ResilientCampaignResult;

/// The worker counts the equivalence contract is pinned at.
const JOBS: [usize; 2] = [1, 4];

/// A random combinational DAG with a flip-flop on every fourth gate
/// output (same construction as the kernel-equivalence suite).
fn random_netlist(
    gate_picks: &[(u8, u8, u8, u8)],
    n_inputs: usize,
) -> (Netlist, Vec<NetId>, NetId, Vec<NetId>) {
    let mut n = Netlist::new("fault-equiv");
    let clk = n.add_input("clk");
    let inputs: Vec<NetId> = (0..n_inputs)
        .map(|i| n.add_input(format!("in{i}")))
        .collect();
    let mut nets = inputs.clone();
    let mut interesting = Vec::new();
    let ff = psn_thermometer::cells::dff::Dff::standard_90nm();
    for (gi, &(kind, a, b, c)) in gate_picks.iter().enumerate() {
        let cell = match kind % 6 {
            0 => StdCell::inverter(1.0),
            1 => StdCell::nand2(1.0),
            2 => StdCell::nor2(1.0),
            3 => StdCell::xor2(1.0),
            4 => StdCell::mux2(1.0),
            _ => StdCell::and3(1.0),
        };
        let pick = |x: u8| nets[x as usize % nets.len()];
        let ins: Vec<NetId> = match cell.num_inputs() {
            1 => vec![pick(a)],
            2 => vec![pick(a), pick(b)],
            _ => vec![pick(a), pick(b), pick(c)],
        };
        let out = n.add_gate(format!("g{gi}"), cell, &ins).unwrap();
        interesting.push(out);
        if gi % 4 == 3 {
            let q = n.add_dff(format!("ff{gi}"), ff, out, clk, Logic::Zero);
            interesting.push(q);
            nets.push(q);
        }
        nets.push(out);
    }
    let last = *interesting.last().unwrap();
    n.mark_output("keep", last);
    (n, inputs, clk, interesting)
}

fn apply_stimulus(sim: &mut Simulator<'_>, inputs: &[NetId], clk: NetId, bits: &[bool]) {
    for (i, (&net, &b)) in inputs.iter().zip(bits).enumerate() {
        sim.drive(net, Logic::from(b), Time::from_ps(10.0 * i as f64))
            .unwrap();
    }
    sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(3.0), 4)
        .unwrap();
    sim.run_to_quiescence(1_000_000);
}

/// Everything observable about a finished run, for exact comparison.
fn snapshot(sim: &Simulator<'_>, nets: &[NetId]) -> (Vec<Logic>, u64, u64, u64, u64, u64) {
    let values = nets.iter().map(|&net| sim.value(net)).collect();
    let s = sim.stats();
    (
        values,
        s.events,
        s.cancelled,
        s.ff_captures,
        s.ff_violations,
        sim.switching_energy_joules().to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) Empty-plan identity: installing an empty `FaultPlan`, or
    /// installing a real one and clearing it again, leaves a random
    /// netlist's simulation bit-identical to a simulator whose fault
    /// API was never called.
    #[test]
    fn empty_plan_is_bit_identical_to_no_plan(
        gate_picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        bits in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let (n, inputs, clk, interesting) = random_netlist(&gate_picks, 3);

        let mut pristine = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
        apply_stimulus(&mut pristine, &inputs, clk, &bits);

        let mut empty_plan = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
        empty_plan.set_fault_plan(&FaultPlan::new()).unwrap();
        apply_stimulus(&mut empty_plan, &inputs, clk, &bits);

        // Install a real fault, then clear it before any stimulus: the
        // pooled-simulator recovery path must restore pristine state.
        let victim = n.net(interesting[0]).name().to_string();
        let mut cleared = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
        cleared
            .set_fault_plan(&FaultPlan::new().with(Fault::stuck_at(victim, Logic::One)))
            .unwrap();
        cleared.clear_fault_plan();
        apply_stimulus(&mut cleared, &inputs, clk, &bits);

        let golden = snapshot(&pristine, &interesting);
        prop_assert_eq!(&snapshot(&empty_plan, &interesting), &golden);
        prop_assert_eq!(&snapshot(&cleared, &interesting), &golden);
        for &net in &interesting {
            prop_assert_eq!(
                pristine.trace().edges(pristine.signal(net)),
                empty_plan.trace().edges(empty_plan.signal(net)),
                "empty-plan trace diverged on {}", n.net(net).name()
            );
            prop_assert_eq!(
                pristine.trace().edges(pristine.signal(net)),
                cleared.trace().edges(cleared.signal(net)),
                "cleared-plan trace diverged on {}", n.net(net).name()
            );
        }
    }

    /// (b) Degraded campaigns are worker-count independent: with random
    /// injected site panics, the whole `ResilientCampaignResult` —
    /// partial noise map, per-site outcomes and degradation summary —
    /// is identical at jobs ∈ {1, 4}.
    #[test]
    fn degraded_campaign_is_identical_at_any_worker_count(
        panic_picks in proptest::collection::vec(0usize..9, 0..4),
    ) {
        let fp = Floorplan::new(
            PowerGrid::corner_fed(
                3,
                Voltage::from_v(1.05),
                Resistance::from_milliohms(60.0),
                Resistance::from_milliohms(15.0),
            )
            .unwrap(),
            Placement::EveryTile,
        )
        .unwrap();
        let campaign = Campaign::new(fp, SensorConfig::default()).unwrap();
        let mut loads = vec![Waveform::constant(0.03); 9];
        loads[4] = Waveform::constant(0.8);
        let mut plan = FaultPlan::new();
        for &site in &panic_picks {
            plan = plan.with(Fault::SitePanic { site });
        }

        let run = |jobs: usize| -> ResilientCampaignResult {
            let mut ctx = RunCtx::new(Engine::new(jobs)).with_fault_plan(plan.clone());
            campaign
                .run_resilient(
                    &mut ctx,
                    &loads,
                    None,
                    Time::from_ns(10.0),
                    Time::from_ns(20.0),
                    3,
                    RetryPolicy::none(),
                )
                .unwrap()
        };
        let serial = run(JOBS[0]);
        let distinct: std::collections::HashSet<_> = panic_picks.iter().collect();
        prop_assert_eq!(serial.summary.sites_degraded, distinct.len());
        prop_assert_eq!(&run(JOBS[1]), &serial);

        // A retrying policy recovers every injected site: panics fire on
        // the first attempt only, so one retry heals the whole map.
        let mut ctx = RunCtx::new(Engine::new(JOBS[1])).with_fault_plan(plan.clone());
        let healed = campaign
            .run_resilient(
                &mut ctx,
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
                RetryPolicy::attempts(2),
            )
            .unwrap();
        prop_assert_eq!(healed.summary.sites_degraded, 0);
        let mut clean_ctx = RunCtx::new(Engine::new(JOBS[0]));
        let clean = campaign
            .run_resilient(
                &mut clean_ctx,
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
                RetryPolicy::none(),
            )
            .unwrap();
        prop_assert_eq!(&healed.result, &clean.result);
    }

    /// (c) Bounded-retry determinism: a job that fails on specific
    /// derived seeds converges to the same per-job outcome vector on
    /// every run and at every worker count.
    #[test]
    fn bounded_retries_are_deterministic(
        base_seed in any::<u64>(),
        n_jobs in 4usize..12,
    ) {
        let spec = JobSpec::new(n_jobs).seed(base_seed);
        let run = |jobs: usize| {
            Engine::new(jobs)
                .run_batch_isolated(&spec, RetryPolicy::reseeding(3), |job| {
                    if job.seed() % 3 == 0 {
                        panic!("unlucky seed");
                    }
                    job.seed()
                })
                .results
        };
        let serial = run(JOBS[0]);
        prop_assert_eq!(&run(JOBS[1]), &serial);
        prop_assert_eq!(&run(JOBS[0]), &serial);
    }
}
